// stir — command-line front end for the library. The workflow a
// downstream user runs without writing C++:
//
//   stir generate --preset korean --scale 0.1 --users u.tsv --tweets t.tsv
//   stir study    --users u.tsv --tweets t.tsv --report-dir out/
//   stir study    --users u.tsv --tweets t.tsv --metrics-out metrics.json
//   stir infer    --corpus corpus.stir
//   stir audit    < locations.txt
//
// generate: synthesize a corpus (Korean crawl or Lady Gaga Search-API
//           preset) and persist it as TSV.
// study:    run the paper's full pipeline on a TSV corpus, print the
//           funnel + group table, optionally export plotting CSVs, a
//           versioned JSON report, pipeline metrics, and a stage trace.
// infer:    predict home districts from tweet evidence alone and score
//           the predictions against the corpus's ground-truth sidecar.
// audit:    classify free-text profile locations from stdin.
//
// Flags are declared in per-command tables (see StudyFlags etc.) that
// bind directly onto stir::StudyConfig; --help output is generated from
// the same tables, and unknown flags are rejected with exit code 2.

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/study.h"
#include "core/study_config.h"
#include "geo/admin_db.h"
#include "infer/eval.h"
#include "infer/home_inferrer.h"
#include "infer/inference_index.h"
#include "io/corpus.h"
#include "io/corpus_reader.h"
#include "io/fault_fs.h"
#include "io/truth_sidecar.h"
#include "obs/metrics.h"
#include "stream/engine.h"
#include "text/location_parser.h"
#include "twitter/api.h"
#include "twitter/generator.h"

namespace {

using stir::geo::AdminDb;

// ---------------------------------------------------------------------------
// Declarative flag table

/// One command-line flag: its name, an optional value placeholder (null
/// for booleans), the --help line, and a binder that parses the value
/// into whatever the command's config object is. The binder returns
/// false (after printing its own diagnostic) on a bad value.
struct Flag {
  const char* name;        ///< Without the leading "--".
  const char* value_name;  ///< e.g. "N"; nullptr marks a boolean flag.
  const char* help;
  std::function<bool(const std::string& value)> bind;
};

void PrintHelp(const char* command, const char* summary,
               const std::vector<Flag>& flags) {
  std::fprintf(stderr, "usage: stir_cli %s [flags]\n%s\n\nflags:\n", command,
               summary);
  size_t width = 0;
  for (const Flag& flag : flags) {
    size_t w = std::strlen(flag.name) +
               (flag.value_name != nullptr
                    ? std::strlen(flag.value_name) + 1
                    : 0);
    width = std::max(width, w);
  }
  for (const Flag& flag : flags) {
    std::string left = flag.name;
    if (flag.value_name != nullptr) {
      left += ' ';
      left += flag.value_name;
    }
    std::fprintf(stderr, "  --%-*s  %s\n", static_cast<int>(width),
                 left.c_str(), flag.help);
  }
  std::fprintf(stderr, "  --%-*s  %s\n", static_cast<int>(width), "help",
               "show this message and exit");
}

/// Parses argv[first..) against the flag table. Accepts "--name value"
/// and "--name=value". Returns 0 on success, 2 on any error (unknown
/// flag, missing value, bad value — diagnostics go to stderr), and sets
/// `*want_help` when --help/-h was seen (caller prints help, exits 0).
int ParseArgs(int argc, char** argv, int first,
              const std::vector<Flag>& flags, const char* command,
              bool* want_help) {
  *want_help = false;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      *want_help = true;
      return 0;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr,
                   "stir_cli %s: unexpected argument '%s' (flags only; try "
                   "--help)\n",
                   command, arg.c_str());
      return 2;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_inline_value = false;
    size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline_value = true;
    }
    const Flag* match = nullptr;
    for (const Flag& flag : flags) {
      if (name == flag.name) {
        match = &flag;
        break;
      }
    }
    if (match == nullptr) {
      std::fprintf(stderr, "stir_cli %s: unknown flag --%s (try --help)\n",
                   command, name.c_str());
      return 2;
    }
    if (match->value_name == nullptr) {
      if (has_inline_value) {
        std::fprintf(stderr, "stir_cli %s: --%s takes no value\n", command,
                     name.c_str());
        return 2;
      }
    } else if (!has_inline_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "stir_cli %s: --%s requires a value (%s)\n",
                     command, name.c_str(), match->value_name);
        return 2;
      }
      value = argv[++i];
    }
    if (!match->bind(value)) return 2;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Value parsers (strict: the whole token must consume, unlike atoi)

bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseUInt64(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

bool BadValue(const char* command, const char* flag, const char* expect) {
  std::fprintf(stderr, "stir_cli %s: --%s must be %s\n", command, flag,
               expect);
  return false;
}

const AdminDb* GazetteerByName(const std::string& name) {
  if (name == "world") return &AdminDb::WorldCities();
  if (name == "korean") return &AdminDb::KoreanDistricts();
  return nullptr;
}

stir::Status WriteTextFile(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  if (!out) return stir::Status::IOError("cannot open for write: " + path);
  out << body;
  if (!body.empty() && body.back() != '\n') out << '\n';
  if (!out) return stir::Status::IOError("write failed: " + path);
  return stir::Status::OK();
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  stir_cli generate [flags]   synthesize a TSV corpus\n"
               "  stir_cli study    [flags]   run the correlation study\n"
               "  stir_cli infer    [flags]   infer home districts, score "
               "vs ground truth\n"
               "  stir_cli audit    [flags]   classify stdin locations\n"
               "run 'stir_cli <command> --help' for the command's flags\n");
  return 2;
}

// ---------------------------------------------------------------------------
// generate

int RunGenerate(int argc, char** argv) {
  std::string preset = "korean";
  double scale = 0.1;
  bool has_seed = false;
  uint64_t seed = 0;
  std::string users_path;
  std::string tweets_path;
  std::string corpus_path;
  double night_home_bias = 0.0;
  bool no_truth = false;

  const char* cmd = "generate";
  std::vector<Flag> flags = {
      {"preset", "NAME", "corpus preset: korean | ladygaga (default korean)",
       [&](const std::string& v) {
         if (v != "korean" && v != "ladygaga") {
           return BadValue(cmd, "preset", "korean or ladygaga");
         }
         preset = v;
         return true;
       }},
      {"scale", "S", "corpus scale factor, > 0 (default 0.1)",
       [&](const std::string& v) {
         if (!ParseDouble(v, &scale) || scale <= 0.0) {
           return BadValue(cmd, "scale", "a number > 0");
         }
         return true;
       }},
      {"seed", "N", "generator seed (default: preset's)",
       [&](const std::string& v) {
         if (!ParseUInt64(v, &seed)) {
           return BadValue(cmd, "seed", "a non-negative integer");
         }
         has_seed = true;
         return true;
       }},
      {"users", "FILE", "output TSV for users",
       [&](const std::string& v) { users_path = v; return true; }},
      {"tweets", "FILE", "output TSV for tweets",
       [&](const std::string& v) { tweets_path = v; return true; }},
      {"corpus", "FILE",
       "output a self-contained v3 arena corpus instead of TSV (streamed: "
       "generator memory stays O(users))",
       [&](const std::string& v) { corpus_path = v; return true; }},
      {"night-home-bias", "P",
       "probability a night-window tweet is redirected to the user's home "
       "district, [0, 1] (default 0 = historical byte-identical corpora)",
       [&](const std::string& v) {
         if (!ParseDouble(v, &night_home_bias) || night_home_bias < 0.0 ||
             night_home_bias > 1.0) {
           return BadValue(cmd, "night-home-bias", "in [0, 1]");
         }
         return true;
       }},
      {"no-truth", nullptr,
       "skip the <corpus>.truth ground-truth sidecar (written by default "
       "with --corpus so `stir_cli infer` can score without regenerating)",
       [&](const std::string&) {
         no_truth = true;
         return true;
       }},
  };

  bool want_help = false;
  int rc = ParseArgs(argc, argv, 2, flags, cmd, &want_help);
  if (rc != 0) return rc;
  if (want_help) {
    PrintHelp(cmd,
              "synthesize a study corpus and persist it as TSV or a v3 "
              "arena corpus",
              flags);
    return 0;
  }
  const bool tsv_out = !users_path.empty() || !tweets_path.empty();
  if (corpus_path.empty() == !tsv_out) {
    std::fprintf(stderr,
                 "stir_cli %s: exactly one output form is required: "
                 "--corpus FILE, or --users FILE with --tweets FILE\n",
                 cmd);
    return 2;
  }
  if (tsv_out && (users_path.empty() || tweets_path.empty())) {
    std::fprintf(stderr,
                 "stir_cli %s: --users and --tweets go together\n", cmd);
    return 2;
  }

  const AdminDb& db = preset == "ladygaga" ? AdminDb::WorldCities()
                                           : AdminDb::KoreanDistricts();
  stir::twitter::DatasetGeneratorOptions options =
      preset == "ladygaga"
          ? stir::twitter::DatasetGenerator::LadyGagaConfig(scale)
          : stir::twitter::DatasetGenerator::KoreanConfig(scale);
  if (has_seed) options.seed = seed;
  options.mobility.night_home_bias = night_home_bias;
  stir::twitter::DatasetGenerator generator(&db, options);
  if (!corpus_path.empty()) {
    // Out-of-core path: users and tweets stream straight into the arena
    // writer, which spills tweet columns to disk as it goes. Ground truth
    // streams into the sidecar the same way (one record per user).
    stir::io::CorpusWriter writer(corpus_path);
    std::optional<stir::io::TruthSidecarWriter> truth;
    if (!no_truth) {
      truth.emplace(stir::io::TruthSidecarPath(corpus_path));
    }
    auto info = generator.GenerateToCorpus(&writer,
                                           truth ? &*truth : nullptr);
    stir::StatusOr<stir::io::CorpusWriteStats> stats =
        info.ok() ? writer.Finish()
                  : stir::StatusOr<stir::io::CorpusWriteStats>(info.status());
    if (!stats.ok()) {
      std::fprintf(stderr, "corpus write failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    if (truth) {
      stir::Status truth_status = truth->Finish();
      if (!truth_status.ok()) {
        std::fprintf(stderr, "truth sidecar write failed: %s\n",
                     truth_status.ToString().c_str());
        return 1;
      }
    }
    std::printf("wrote %lld users (%lld tweets, %lld materialized, %lld GPS) "
                "to %s (%lld bytes%s)\n",
                static_cast<long long>(stats->users),
                static_cast<long long>(stats->total_tweets),
                static_cast<long long>(stats->tweets),
                static_cast<long long>(stats->gps_tweets),
                corpus_path.c_str(),
                static_cast<long long>(stats->file_bytes),
                stats->grouped ? ", grouped" : "");
    if (truth) {
      std::printf("wrote %lld truth records to %s\n",
                  static_cast<long long>(truth->record_count()),
                  stir::io::TruthSidecarPath(corpus_path).c_str());
    }
    return 0;
  }
  stir::twitter::GeneratedData data = generator.Generate();
  stir::Status status = data.dataset.SaveTsv(users_path, tweets_path);
  if (!status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu users (%lld tweets, %lld materialized, %lld GPS) "
              "to %s / %s\n",
              data.dataset.users().size(),
              static_cast<long long>(data.dataset.total_tweet_count()),
              static_cast<long long>(data.dataset.tweets().size()),
              static_cast<long long>(data.dataset.gps_tweet_count()),
              users_path.c_str(), tweets_path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// study

int RunStudy(int argc, char** argv) {
  stir::StudyConfig config;
  std::string users_path;
  std::string tweets_path;
  std::string corpus_path;
  std::string gazetteer = "korean";
  std::string report_dir;
  int report_schema = stir::core::kReportSchemaVersion;
  std::string metrics_out;
  std::string trace_out;

  const char* cmd = "study";
  bool lenient_load = false;
  bool stream_mode = false;
  int64_t epoch_size = 0;
  stir::io::FaultFsOptions io_fault_options;
  std::vector<Flag> flags = {
      {"users", "FILE", "input users TSV",
       [&](const std::string& v) { users_path = v; return true; }},
      {"tweets", "FILE", "input tweets TSV or column snapshot",
       [&](const std::string& v) { tweets_path = v; return true; }},
      {"corpus", "FILE",
       "input self-contained v3 arena corpus (alternative to "
       "--users/--tweets; format is sniffed from magic bytes)",
       [&](const std::string& v) { corpus_path = v; return true; }},
      {"gazetteer", "NAME", "gazetteer: korean | world (default korean)",
       [&](const std::string& v) {
         if (GazetteerByName(v) == nullptr) {
           return BadValue(cmd, "gazetteer", "korean or world");
         }
         gazetteer = v;
         return true;
       }},
      {"report-dir", "DIR",
       "write funnel/groups/users CSVs + report.json into DIR",
       [&](const std::string& v) { report_dir = v; return true; }},
      {"report-schema", "N", "report.json schema version: 1 | 2 (default 2)",
       [&](const std::string& v) {
         int64_t n = 0;
         if (!ParseInt64(v, &n) || n < 1 ||
             n > stir::core::kReportSchemaVersion) {
           return BadValue(cmd, "report-schema", "1 or 2");
         }
         report_schema = static_cast<int>(n);
         return true;
       }},
      {"xml-pipeline", nullptr,
       "route geocoding through the faithful XML serialize/parse path",
       [&](const std::string&) {
         config.refinement.faithful_xml_pipeline = true;
         return true;
       }},
      {"no-text-fallback", nullptr,
       "disable degraded-mode text salvage of faulted geocodes",
       [&](const std::string&) {
         config.refinement.degraded_text_fallback = false;
         return true;
       }},
      {"threads", "N", "worker threads, >= 1 (default 1 = serial)",
       [&](const std::string& v) {
         int64_t n = 0;
         if (!ParseInt64(v, &n) || n < 1) {
           return BadValue(cmd, "threads", ">= 1");
         }
         config.threads = static_cast<int>(n);
         return true;
       }},
      {"tie-break", "RULE",
       "grouping tie rule: lexicographic | reverse (ablation knob)",
       [&](const std::string& v) {
         if (v == "lexicographic") {
           config.tie_break = stir::core::TieBreak::kLexicographic;
         } else if (v == "reverse") {
           config.tie_break = stir::core::TieBreak::kReverseLexicographic;
         } else {
           return BadValue(cmd, "tie-break", "lexicographic or reverse");
         }
         return true;
       }},
      {"geocode-quota", "N",
       "geocoder lookup quota; -1 = unlimited (default)",
       [&](const std::string& v) {
         if (!ParseInt64(v, &config.geocoder.quota) ||
             config.geocoder.quota < -1) {
           return BadValue(cmd, "geocode-quota", ">= -1");
         }
         return true;
       }},
      {"fault-rate", "P", "injected geocoder fault probability, [0, 1]",
       [&](const std::string& v) {
         if (!ParseDouble(v, &config.fault.error_rate) ||
             config.fault.error_rate < 0.0 || config.fault.error_rate > 1.0) {
           return BadValue(cmd, "fault-rate", "in [0, 1]");
         }
         return true;
       }},
      {"fault-seed", "N", "fault schedule seed",
       [&](const std::string& v) {
         if (!ParseUInt64(v, &config.fault.seed)) {
           return BadValue(cmd, "fault-seed", "a non-negative integer");
         }
         return true;
       }},
      {"retry-max", "N", "max geocode attempts per lookup, >= 1",
       [&](const std::string& v) {
         int64_t n = 0;
         if (!ParseInt64(v, &n) || n < 1) {
           return BadValue(cmd, "retry-max", ">= 1");
         }
         config.retry.max_attempts = static_cast<int>(n);
         return true;
       }},
      {"retry-base-ms", "MS", "base simulated backoff per retry, >= 0",
       [&](const std::string& v) {
         if (!ParseInt64(v, &config.retry.base_backoff_ms) ||
             config.retry.base_backoff_ms < 0) {
           return BadValue(cmd, "retry-base-ms", ">= 0");
         }
         return true;
       }},
      {"metrics-out", "FILE",
       "collect pipeline metrics, write JSON snapshot to FILE",
       [&](const std::string& v) {
         metrics_out = v;
         config.obs.enable_metrics = true;
         return true;
       }},
      {"trace-out", "FILE",
       "record stage spans, write Chrome trace_event JSON to FILE",
       [&](const std::string& v) {
         trace_out = v;
         config.obs.enable_trace = true;
         return true;
       }},
      {"trace-real-time", nullptr,
       "time spans with a real clock instead of the deterministic one",
       [&](const std::string&) {
         config.obs.real_time_trace = true;
         return true;
       }},
      {"no-geocode-spans", nullptr,
       "omit per-lookup geocode spans (keep stage spans only)",
       [&](const std::string&) {
         config.obs.trace_geocode_calls = false;
         return true;
       }},
      {"checkpoint-dir", "DIR",
       "durable geocode journal + study checkpoints in DIR",
       [&](const std::string& v) {
         config.durability.checkpoint_dir = v;
         return true;
       }},
      {"resume", nullptr,
       "resume from the checkpoint in --checkpoint-dir (fresh run if none)",
       [&](const std::string&) {
         config.durability.resume = true;
         return true;
       }},
      {"checkpoint-every", "N",
       "snapshot refinement progress every N users per shard (default 64)",
       [&](const std::string& v) {
         if (!ParseInt64(v, &config.durability.checkpoint_every_users) ||
             config.durability.checkpoint_every_users < 1) {
           return BadValue(cmd, "checkpoint-every", ">= 1");
         }
         return true;
       }},
      {"crash-after", "N",
       "hard-exit (status 42) when the Nth geocode lookup starts (testing)",
       [&](const std::string& v) {
         if (!ParseInt64(v, &config.fault.crash_after) ||
             config.fault.crash_after < 1) {
           return BadValue(cmd, "crash-after", ">= 1");
         }
         return true;
       }},
      {"lenient-load", nullptr,
       "quarantine malformed TSV rows instead of failing the load",
       [&](const std::string&) {
         lenient_load = true;
         return true;
       }},
      {"stream", nullptr,
       "run the study through the incremental stream engine instead of "
       "the batch pipeline (byte-identical output; DESIGN.md §12)",
       [&](const std::string&) {
         stream_mode = true;
         return true;
       }},
      {"epoch-size", "N",
       "streaming auto-seal threshold in tweets; 0 seals once at the end "
       "(default 0; requires --stream)",
       [&](const std::string& v) {
         if (!ParseInt64(v, &epoch_size) || epoch_size < 0) {
           return BadValue(cmd, "epoch-size", ">= 0");
         }
         return true;
       }},
      {"io-fault-seed", "N", "storage fault schedule seed",
       [&](const std::string& v) {
         if (!ParseUInt64(v, &io_fault_options.seed)) {
           return BadValue(cmd, "io-fault-seed", "a non-negative integer");
         }
         return true;
       }},
      {"io-fault-write-error-rate", "P",
       "injected per-write EIO probability, [0, 1]",
       [&](const std::string& v) {
         if (!ParseDouble(v, &io_fault_options.write_error_rate) ||
             io_fault_options.write_error_rate < 0.0 ||
             io_fault_options.write_error_rate > 1.0) {
           return BadValue(cmd, "io-fault-write-error-rate", "in [0, 1]");
         }
         return true;
       }},
      {"io-fault-short-write-rate", "P",
       "injected per-write short-count probability, [0, 1] (always "
       "recovered by the write-all loops; byte-identical output)",
       [&](const std::string& v) {
         if (!ParseDouble(v, &io_fault_options.short_write_rate) ||
             io_fault_options.short_write_rate < 0.0 ||
             io_fault_options.short_write_rate > 1.0) {
           return BadValue(cmd, "io-fault-short-write-rate", "in [0, 1]");
         }
         return true;
       }},
      {"io-fault-fsync-error-rate", "P",
       "injected per-fsync failure probability, [0, 1]",
       [&](const std::string& v) {
         if (!ParseDouble(v, &io_fault_options.fsync_error_rate) ||
             io_fault_options.fsync_error_rate < 0.0 ||
             io_fault_options.fsync_error_rate > 1.0) {
           return BadValue(cmd, "io-fault-fsync-error-rate", "in [0, 1]");
         }
         return true;
       }},
      {"io-fault-eintr-rate", "P",
       "injected per-syscall EINTR probability, [0, 1] (always recovered "
       "by the retry loops; byte-identical output)",
       [&](const std::string& v) {
         if (!ParseDouble(v, &io_fault_options.eintr_rate) ||
             io_fault_options.eintr_rate < 0.0 ||
             io_fault_options.eintr_rate > 1.0) {
           return BadValue(cmd, "io-fault-eintr-rate", "in [0, 1]");
         }
         return true;
       }},
      {"io-fault-enospc-after", "BYTES",
       "simulated disk capacity: writes past BYTES fail ENOSPC (-1 = off)",
       [&](const std::string& v) {
         if (!ParseInt64(v, &io_fault_options.enospc_after_bytes)) {
           return BadValue(cmd, "io-fault-enospc-after", "an integer");
         }
         return true;
       }},
      {"io-fault-page-flip-rate", "P",
       "injected per-window corpus corruption probability, [0, 1] "
       "(affected users drop into funnel.drop.corrupt_window)",
       [&](const std::string& v) {
         if (!ParseDouble(v, &io_fault_options.page_flip_rate) ||
             io_fault_options.page_flip_rate < 0.0 ||
             io_fault_options.page_flip_rate > 1.0) {
           return BadValue(cmd, "io-fault-page-flip-rate", "in [0, 1]");
         }
         return true;
       }},
  };

  bool want_help = false;
  int rc = ParseArgs(argc, argv, 2, flags, cmd, &want_help);
  if (rc != 0) return rc;
  if (want_help) {
    PrintHelp(cmd, "run the paper's full pipeline on a corpus", flags);
    return 0;
  }
  const bool tsv_in = !users_path.empty() || !tweets_path.empty();
  if (corpus_path.empty() == !tsv_in) {
    std::fprintf(stderr,
                 "stir_cli %s: exactly one input form is required: "
                 "--corpus FILE, or --users FILE with --tweets FILE\n",
                 cmd);
    return 2;
  }
  if (tsv_in && (users_path.empty() || tweets_path.empty())) {
    std::fprintf(stderr, "stir_cli %s: --users and --tweets go together\n",
                 cmd);
    return 2;
  }
  if (config.durability.resume && config.durability.checkpoint_dir.empty()) {
    std::fprintf(stderr, "stir_cli %s: --resume requires --checkpoint-dir\n",
                 cmd);
    return 2;
  }
  if (epoch_size != 0 && !stream_mode) {
    std::fprintf(stderr, "stir_cli %s: --epoch-size requires --stream\n",
                 cmd);
    return 2;
  }

  // With --metrics-out the CLI owns the registry (instead of letting Run
  // create a per-run one) so loader-side counters like
  // io.dataset.quarantined land in the exported snapshot too.
  stir::obs::MetricsRegistry cli_metrics;
  if (config.obs.enable_metrics) config.obs.metrics = &cli_metrics;

  // Arm the storage fault layer before the first byte is read or
  // written, so the load and every journal/report write run under the
  // schedule.
  if (io_fault_options.enabled()) {
    stir::io::FaultFs::Instance().Configure(io_fault_options);
  }

  const AdminDb& db = *GazetteerByName(gazetteer);
  stir::io::CorpusSpec spec;
  spec.corpus_path = corpus_path;
  spec.users_path = users_path;
  spec.tweets_path = tweets_path;
  spec.tsv.strict = !lenient_load;
  auto reader = stir::io::CorpusReader::Open(spec);
  if (!reader.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }
  const stir::twitter::Dataset::TsvLoadStats& load_stats =
      reader->tsv_stats();
  if (load_stats.quarantined() > 0) {
    std::fprintf(stderr,
                 "lenient load quarantined %lld malformed rows "
                 "(%lld user, %lld tweet)\n",
                 static_cast<long long>(load_stats.quarantined()),
                 static_cast<long long>(load_stats.quarantined_user_rows),
                 static_cast<long long>(load_stats.quarantined_tweet_rows));
  }
  if (config.obs.metrics != nullptr) {
    config.obs.metrics->GetCounter("io.dataset.quarantined")
        ->Increment(load_stats.quarantined());
  }
  // The stream engine ingests row-oriented tweets; everything else can
  // run zero-copy off a v3 view.
  const stir::twitter::Dataset* dataset = nullptr;
  if (stream_mode || !reader->has_view()) {
    auto materialized = reader->Materialize();
    if (!materialized.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   materialized.status().ToString().c_str());
      return 1;
    }
    dataset = *materialized;
  }

  stir::core::StudyResult result;
  if (stream_mode) {
    // Incremental path: ingest the corpus through the stream engine (users
    // in dataset order, tweets in time order with dataset-index fault
    // keys), then snapshot through the same grouping/aggregation stages
    // the batch pipeline runs — byte-identical stdout and reports.
    stir::obs::Tracer cli_tracer;
    if (config.obs.enable_trace && config.obs.tracer == nullptr) {
      config.obs.tracer = &cli_tracer;
    }
    stir::stream::StreamOptions stream_options;
    stream_options.epoch_size = epoch_size;
    stream_options.durable_dir = config.durability.checkpoint_dir;
    stream_options.resume = config.durability.resume;
    stream_options.fsync = config.durability.fsync;
    stir::stream::StreamEngine engine(&db, config, stream_options);
    stir::Status status = engine.Open();
    if (!status.ok()) {
      std::fprintf(stderr, "stream engine open failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    const int64_t skip_tweets = engine.ingested_tweets();
    for (const stir::twitter::User& user : dataset->users()) {
      if (engine.HasUser(user.id)) continue;
      status = engine.AddUser(user);
      if (!status.ok()) break;
    }
    if (status.ok()) {
      stir::twitter::StreamingApi api(dataset);
      int64_t delivered = 0;
      api.Replay(
          [&](size_t dataset_index, const stir::twitter::Tweet& tweet) {
            if (!status.ok() || delivered++ < skip_tweets) return;
            status =
                engine.AddTweet(tweet, static_cast<int64_t>(dataset_index));
          });
    }
    if (!status.ok()) {
      std::fprintf(stderr, "stream ingest failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    engine.SealEpoch();
    std::fprintf(stderr,
                 "streamed %lld users, %lld tweets in %lld epochs "
                 "(generation %lld)\n",
                 static_cast<long long>(engine.ingested_users()),
                 static_cast<long long>(engine.ingested_tweets()),
                 static_cast<long long>(engine.epochs_sealed()),
                 static_cast<long long>(engine.generation()));
    result = engine.SnapshotResult();
    if (config.obs.metrics != nullptr) {
      result.metrics = config.obs.metrics->Snapshot();
    }
    if (config.obs.tracer != nullptr) {
      result.trace = config.obs.tracer->Snapshot();
    }
  } else {
    stir::core::CorrelationStudy study(&db, config);
    result = reader->has_view() ? study.Run(reader->view())
                                : study.Run(*dataset);
  }
  std::printf("%s\n%s\n%s", result.FunnelString().c_str(),
              result.GroupTableString().c_str(),
              stir::core::RenderGpsTweetHistogram(result).c_str());

  if (!report_dir.empty()) {
    stir::Status status = stir::core::WriteStudyReportCsv(result, report_dir);
    if (status.ok()) {
      status =
          stir::core::WriteStudyReportJson(result, report_dir, report_schema);
    }
    if (!status.ok()) {
      std::fprintf(stderr, "report export failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("\nreport CSVs written to %s\n", report_dir.c_str());
  }
  // Observability exports announce on stderr so stdout stays byte-
  // identical to a run without them.
  if (!metrics_out.empty()) {
    stir::Status status = WriteTextFile(metrics_out, result.metrics.ToJson());
    if (!status.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    stir::Status status =
        WriteTextFile(trace_out, result.trace.ToChromeTrace());
    if (!status.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace written to %s\n", trace_out.c_str());
  }
  if (stir::io::FaultFs::Instance().enabled()) {
    // Accounting line on stderr (stdout stays byte-identical): the chaos
    // harness and operators read the invariant
    // injected == recovered + surfaced + quarantined off this.
    const stir::io::FaultFsStats fs = stir::io::FaultFs::Instance().stats();
    std::fprintf(stderr,
                 "io faults: injected=%lld recovered=%lld surfaced=%lld "
                 "quarantined=%lld\n",
                 static_cast<long long>(fs.injected),
                 static_cast<long long>(fs.recovered),
                 static_cast<long long>(fs.surfaced),
                 static_cast<long long>(fs.quarantined));
  }
  return 0;
}

// ---------------------------------------------------------------------------
// infer

int RunInfer(int argc, char** argv) {
  std::string users_path;
  std::string tweets_path;
  std::string corpus_path;
  std::string truth_path;
  std::string gazetteer = "korean";
  std::string strategy_name;  // Empty evaluates every strategy.
  std::string metrics_out;
  stir::infer::InferParams params;
  int64_t min_gps = 5;
  bool lenient_load = false;

  const char* cmd = "infer";
  std::vector<Flag> flags = {
      {"users", "FILE", "input users TSV",
       [&](const std::string& v) { users_path = v; return true; }},
      {"tweets", "FILE", "input tweets TSV or column snapshot",
       [&](const std::string& v) { tweets_path = v; return true; }},
      {"corpus", "FILE",
       "input self-contained v3 arena corpus (alternative to "
       "--users/--tweets; format is sniffed from magic bytes)",
       [&](const std::string& v) { corpus_path = v; return true; }},
      {"truth", "FILE",
       "ground-truth sidecar to score against (default: the .truth file "
       "next to the corpus)",
       [&](const std::string& v) { truth_path = v; return true; }},
      {"gazetteer", "NAME", "gazetteer: korean | world (default korean)",
       [&](const std::string& v) {
         if (GazetteerByName(v) == nullptr) {
           return BadValue(cmd, "gazetteer", "korean or world");
         }
         gazetteer = v;
         return true;
       }},
      {"strategy", "NAME",
       "evaluate one strategy: spatial | diurnal | text (default: all)",
       [&](const std::string& v) {
         stir::infer::Strategy unused;
         if (!stir::infer::StrategyFromString(v, &unused)) {
           return BadValue(cmd, "strategy", "spatial, diurnal or text");
         }
         strategy_name = v;
         return true;
       }},
      {"abstain", "P",
       "confidence threshold below which strategies abstain, [0, 1] "
       "(default 0.4)",
       [&](const std::string& v) {
         if (!ParseDouble(v, &params.abstain_threshold) ||
             params.abstain_threshold < 0.0 ||
             params.abstain_threshold > 1.0) {
           return BadValue(cmd, "abstain", "in [0, 1]");
         }
         return true;
       }},
      {"night-weight", "N",
       "diurnal strategy weight multiplier for night-window tweets, >= 1 "
       "(default 3)",
       [&](const std::string& v) {
         if (!ParseInt64(v, &params.night_weight) ||
             params.night_weight < 1) {
           return BadValue(cmd, "night-weight", ">= 1");
         }
         return true;
       }},
      {"min-gps", "N",
       "located GPS tweets for the \"GPS-rich\" accuracy slice, >= 0 "
       "(default 5)",
       [&](const std::string& v) {
         if (!ParseInt64(v, &min_gps) || min_gps < 0) {
           return BadValue(cmd, "min-gps", ">= 0");
         }
         return true;
       }},
      {"metrics-out", "FILE",
       "write the evaluation counters as a JSON metrics snapshot to FILE",
       [&](const std::string& v) { metrics_out = v; return true; }},
      {"lenient-load", nullptr,
       "quarantine malformed TSV rows instead of failing the load",
       [&](const std::string&) {
         lenient_load = true;
         return true;
       }},
  };

  bool want_help = false;
  int rc = ParseArgs(argc, argv, 2, flags, cmd, &want_help);
  if (rc != 0) return rc;
  if (want_help) {
    PrintHelp(cmd,
              "infer each user's home district from tweet evidence alone "
              "and score the predictions against generator ground truth",
              flags);
    return 0;
  }
  const bool tsv_in = !users_path.empty() || !tweets_path.empty();
  if (corpus_path.empty() == !tsv_in) {
    std::fprintf(stderr,
                 "stir_cli %s: exactly one input form is required: "
                 "--corpus FILE, or --users FILE with --tweets FILE\n",
                 cmd);
    return 2;
  }
  if (tsv_in && (users_path.empty() || tweets_path.empty())) {
    std::fprintf(stderr, "stir_cli %s: --users and --tweets go together\n",
                 cmd);
    return 2;
  }

  const AdminDb& db = *GazetteerByName(gazetteer);
  stir::io::CorpusSpec spec;
  spec.corpus_path = corpus_path;
  spec.users_path = users_path;
  spec.tweets_path = tweets_path;
  spec.tsv.strict = !lenient_load;
  auto reader = stir::io::CorpusReader::Open(spec);
  if (!reader.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }

  // Resolve the truth sidecar: an explicit --truth wins; otherwise the
  // one the reader detected next to the corpus.
  if (truth_path.empty() && reader->has_truth()) {
    truth_path = reader->truth_path();
  }
  if (truth_path.empty()) {
    std::fprintf(stderr,
                 "stir_cli %s: no ground-truth sidecar found next to the "
                 "corpus; pass --truth FILE (sidecars are written by "
                 "`stir_cli generate --corpus`)\n",
                 cmd);
    return 2;
  }
  auto truth = stir::io::ReadTruthSidecar(truth_path);
  if (!truth.ok()) {
    std::fprintf(stderr, "truth sidecar load failed: %s\n",
                 truth.status().ToString().c_str());
    return 1;
  }

  // Build the evidence index from tweets only — over the zero-copy view
  // when the corpus is v3, else over the materialized dataset. Profile
  // strings and the truth records never reach this layer.
  stir::infer::InferenceIndex index;
  if (reader->has_view()) {
    index = stir::infer::InferenceIndex::Build(reader->view(), db);
  } else {
    auto materialized = reader->Materialize();
    if (!materialized.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   materialized.status().ToString().c_str());
      return 1;
    }
    index = stir::infer::InferenceIndex::Build(**materialized, db);
  }

  std::vector<stir::infer::StrategyEval> evals;
  if (strategy_name.empty()) {
    for (int s = 0; s < stir::infer::kNumStrategies; ++s) {
      evals.push_back(stir::infer::EvaluateStrategy(
          index, *truth, static_cast<stir::infer::Strategy>(s), params,
          min_gps));
    }
  } else {
    stir::infer::Strategy strategy = params.default_strategy;
    stir::infer::StrategyFromString(strategy_name, &strategy);
    evals.push_back(
        stir::infer::EvaluateStrategy(index, *truth, strategy, params,
                                      min_gps));
  }
  std::printf("%s", stir::infer::RenderEvalReport(evals).c_str());

  if (!metrics_out.empty()) {
    stir::obs::MetricsRegistry metrics;
    for (const stir::infer::StrategyEval& eval : evals) {
      const std::string prefix =
          std::string("infer.eval.") +
          stir::infer::StrategyToString(eval.strategy);
      metrics.GetCounter(prefix + ".users")->Increment(eval.users);
      metrics.GetCounter(prefix + ".decided")->Increment(eval.decided);
      metrics.GetCounter(prefix + ".abstained")->Increment(eval.abstained);
      metrics.GetCounter(prefix + ".correct_district")
          ->Increment(eval.correct_district);
      metrics.GetCounter(prefix + ".correct_province")
          ->Increment(eval.correct_province);
      metrics.GetCounter(prefix + ".gps_rich_users")
          ->Increment(eval.gps_rich_users);
      metrics.GetCounter(prefix + ".gps_rich_correct_district")
          ->Increment(eval.gps_rich_correct_district);
    }
    stir::Status status =
        WriteTextFile(metrics_out, metrics.Snapshot().ToJson());
    if (!status.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics written to %s\n", metrics_out.c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// audit

int RunAudit(int argc, char** argv) {
  std::string gazetteer = "korean";

  const char* cmd = "audit";
  std::vector<Flag> flags = {
      {"gazetteer", "NAME", "gazetteer: korean | world (default korean)",
       [&](const std::string& v) {
         if (GazetteerByName(v) == nullptr) {
           return BadValue(cmd, "gazetteer", "korean or world");
         }
         gazetteer = v;
         return true;
       }},
  };

  bool want_help = false;
  int rc = ParseArgs(argc, argv, 2, flags, cmd, &want_help);
  if (rc != 0) return rc;
  if (want_help) {
    PrintHelp(cmd, "classify free-text profile locations from stdin", flags);
    return 0;
  }

  const AdminDb& db = *GazetteerByName(gazetteer);
  stir::text::LocationParser parser(&db);
  std::string line;
  while (std::getline(std::cin, line)) {
    stir::text::ParsedLocation parsed = parser.Parse(line);
    std::printf("%s\t%s", line.c_str(),
                stir::text::LocationQualityToString(parsed.quality));
    if (parsed.quality == stir::text::LocationQuality::kWellDefined) {
      std::printf("\t%s", db.region(parsed.region).FullName().c_str());
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0) {
    Usage();
    return 0;
  }
  if (std::strcmp(argv[1], "generate") == 0) return RunGenerate(argc, argv);
  if (std::strcmp(argv[1], "study") == 0) return RunStudy(argc, argv);
  if (std::strcmp(argv[1], "infer") == 0) return RunInfer(argc, argv);
  if (std::strcmp(argv[1], "audit") == 0) return RunAudit(argc, argv);
  std::fprintf(stderr, "stir_cli: unknown command '%s'\n", argv[1]);
  return Usage();
}
