# Chaos battery (DESIGN.md §15): randomized kill/restart of the streaming
# study and of the serving front end, under injected storage faults,
# asserting journal-replay convergence to the byte-identical fault-free
# output. Every kill is a deterministic --crash-after point (exit 42, a
# std::_Exit with no cleanup — the moral equivalent of kill -9), every
# disk fault comes from the seeded io::FaultFs schedule, and every
# "randomized" choice is a seed in the loop below, so a failure replays
# exactly.
#
# Opt-in lane: the battery runs only when STIR_CHAOS_TESTS=1 is set in
# the environment (mirrors the scale lane's STIR_SCALE_TESTS), and is
# labeled `chaos` so `ctest -L chaos` selects it.

set(chaos_enabled "$ENV{STIR_CHAOS_TESTS}")
if(NOT chaos_enabled)
  message(STATUS "chaos battery skipped (set STIR_CHAOS_TESTS=1 to run)")
  return()
endif()

set(CRASH_EXIT 42)

function(run_cli out_rc out_stdout out_stderr)
  execute_process(
    COMMAND ${CLI} ${ARGN}
    RESULT_VARIABLE rc OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
  set(${out_rc} "${rc}" PARENT_SCOPE)
  set(${out_stdout} "${stdout}" PARENT_SCOPE)
  set(${out_stderr} "${stderr}" PARENT_SCOPE)
endfunction()

function(run_serve out_rc out_stdout out_stderr input)
  execute_process(
    COMMAND ${SERVE} ${ARGN}
    INPUT_FILE ${input}
    RESULT_VARIABLE rc OUTPUT_VARIABLE stdout ERROR_VARIABLE stderr)
  set(${out_rc} "${rc}" PARENT_SCOPE)
  set(${out_stdout} "${stdout}" PARENT_SCOPE)
  set(${out_stderr} "${stderr}" PARENT_SCOPE)
endfunction()

function(expect_same_report label path_a path_b)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${path_a} ${path_b}
    RESULT_VARIABLE diff_rc)
  if(NOT diff_rc EQUAL 0)
    file(READ ${path_a} a)
    file(READ ${path_b} b)
    message(FATAL_ERROR "${label}: report.json differs\n"
            "=== ${path_a} ===\n${a}\n=== ${path_b} ===\n${b}")
  endif()
endfunction()

function(prepare_dirs name)
  file(REMOVE_RECURSE ${WORK_DIR}/${name}_ckpt ${WORK_DIR}/${name}_report)
  file(MAKE_DIRECTORY ${WORK_DIR}/${name}_ckpt ${WORK_DIR}/${name}_report)
endfunction()

# Only the always-recovered fault classes are enabled: short writes and
# EINTR retry-loop the caller back to a byte-identical file, so a run
# under this schedule must still converge to the fault-free output.
# (EIO/ENOSPC/fsync faults surface typed errors by design — they are the
# subject of the gtest fault suites, not of a convergence battery.)
set(IO_FAULTS --io-fault-short-write-rate 0.05 --io-fault-eintr-rate 0.05)

# ======================================================================
# Leg 1: stir_cli streaming study — kill at randomized lookup counts
# under disk faults, resume, byte-compare the report against a clean
# fault-free batch run.
# ======================================================================

set(USERS ${WORK_DIR}/chaos_users.tsv)
set(TWEETS ${WORK_DIR}/chaos_tweets.tsv)
run_cli(rc out err generate --preset korean --scale 0.05
        --users ${USERS} --tweets ${TWEETS})
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate failed (${rc}): ${out} ${err}")
endif()

set(STUDY study --users ${USERS} --tweets ${TWEETS})

file(REMOVE_RECURSE ${WORK_DIR}/chaos_clean_report)
file(MAKE_DIRECTORY ${WORK_DIR}/chaos_clean_report)
run_cli(rc out err ${STUDY} --report-dir ${WORK_DIR}/chaos_clean_report)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "clean baseline failed (${rc}): ${err}")
endif()
set(CLEAN_REPORT ${WORK_DIR}/chaos_clean_report/report.json)

# Each (seed, crash point) pair is one independent chaos trial: the seed
# drives the io::FaultFs schedule (different trials fault different
# journal writes), the crash point kills the streaming ingest at a
# different depth. The resumed run keeps the same fault schedule — the
# replay path itself is exercised under faults — and must still land on
# the clean report byte for byte.
foreach(seed 3 11)
  foreach(crash_at 40 300 700)
    set(name chaos_cli_s${seed}_c${crash_at})
    prepare_dirs(${name})
    run_cli(rc out err ${STUDY} --stream --epoch-size 13
            --checkpoint-dir ${WORK_DIR}/${name}_ckpt
            --crash-after ${crash_at}
            --io-fault-seed ${seed} ${IO_FAULTS})
    if(NOT rc EQUAL ${CRASH_EXIT})
      message(FATAL_ERROR "chaos cli seed ${seed} crash ${crash_at} exited "
              "${rc}, expected ${CRASH_EXIT}: ${out} ${err}")
    endif()
    if(NOT EXISTS ${WORK_DIR}/${name}_ckpt/stream.journal)
      message(FATAL_ERROR "chaos cli seed ${seed} crash ${crash_at} left no "
              "stream journal")
    endif()
    run_cli(rc out err ${STUDY} --stream --epoch-size 13
            --checkpoint-dir ${WORK_DIR}/${name}_ckpt --resume
            --report-dir ${WORK_DIR}/${name}_report
            --io-fault-seed ${seed} ${IO_FAULTS})
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "chaos cli seed ${seed} crash ${crash_at} resume "
              "failed (${rc}): ${err}")
    endif()
    if(NOT err MATCHES "io faults: injected=")
      message(FATAL_ERROR "resume is missing the io-fault accounting line: "
              "${err}")
    endif()
    expect_same_report("chaos cli seed ${seed} crash ${crash_at}"
                       ${CLEAN_REPORT}
                       ${WORK_DIR}/${name}_report/report.json)
  endforeach()
endforeach()

# ======================================================================
# Leg 2: stir_serve — kill the server under live append_tweets load with
# disk faults enabled, restart from its journals, and prove the surviving
# state answers queries byte-identically to a never-killed server.
#
# The corpus is handcrafted so the geocode-lookup clock is exact: every
# tweet is a GPS tweet on a well-defined user, so tweet N is lookup N.
# That makes "kill mid-ingest" (lookup 2 of 4) and "kill mid-append"
# (lookup 7 = third live append, after replay's 4 + appends 1-2)
# deterministic crash points rather than races.
#
# Reference path:  R1 ingest + 8 appends, drain.  R2 resume, queries.
# Chaos path:      C1 killed during base ingest.  C2 resume under faults,
#                  killed during append 3 (journaled, never acked).
#                  C3 resume, re-drive the unacknowledged tail (appends
#                  4-8; append 3 is in the journal — at-least-once
#                  clients would re-send it, this harness knows the
#                  deterministic kill point spared it).  C4 resume,
#                  queries.
# Convergence:     C4 stdout == R2 stdout, byte for byte. The query set
#                  deliberately excludes index_info and server_stats:
#                  generation counts and admission history legitimately
#                  differ across a kill/restart; the data plane must not.
# ======================================================================

set(SUSERS ${WORK_DIR}/chaos_serve_users.tsv)
set(STWEETS ${WORK_DIR}/chaos_serve_tweets.tsv)
file(WRITE ${SUSERS}
"id\thandle\tprofile_location\ttotal_tweets
900\tu900\tSeoul Mapo-gu\t2
901\tu901\tSeoul Gangnam-gu\t2
")
file(WRITE ${STWEETS}
"id\tuser\ttime\tlat\tlng\ttext
9001\t900\t1\t37.556000\t126.945000\tbase one
9002\t901\t2\t37.497000\t127.027000\tbase two
9003\t900\t3\t37.556000\t126.945000\tbase three
9004\t901\t4\t37.497000\t127.027000\tbase four
")

set(APPENDS ${WORK_DIR}/chaos_appends.jsonl)
file(WRITE ${APPENDS} [[{"v":1,"id":11,"method":"append_tweets","params":{"tweets":[{"id":9101,"user":900,"time":101,"lat":37.556,"lng":126.945,"text":"chaos a1"}]}}
{"v":1,"id":12,"method":"append_tweets","params":{"tweets":[{"id":9102,"user":901,"time":102,"lat":37.497,"lng":127.027,"text":"chaos a2"}]}}
{"v":1,"id":13,"method":"append_tweets","params":{"tweets":[{"id":9103,"user":900,"time":103,"lat":37.556,"lng":126.945,"text":"chaos a3"}]}}
{"v":1,"id":14,"method":"append_tweets","params":{"tweets":[{"id":9104,"user":901,"time":104,"lat":37.497,"lng":127.027,"text":"chaos a4"}]}}
{"v":1,"id":15,"method":"append_tweets","params":{"tweets":[{"id":9105,"user":900,"time":105,"lat":37.556,"lng":126.945,"text":"chaos a5"}]}}
{"v":1,"id":16,"method":"append_tweets","params":{"tweets":[{"id":9106,"user":901,"time":106,"lat":37.497,"lng":127.027,"text":"chaos a6"}]}}
{"v":1,"id":17,"method":"append_tweets","params":{"tweets":[{"id":9107,"user":900,"time":107,"lat":37.556,"lng":126.945,"text":"chaos a7"}]}}
{"v":1,"id":18,"method":"append_tweets","params":{"tweets":[{"id":9108,"user":901,"time":108,"lat":37.497,"lng":127.027,"text":"chaos a8"}]}}
]])

set(APPENDS_TAIL ${WORK_DIR}/chaos_appends_tail.jsonl)
file(WRITE ${APPENDS_TAIL} [[{"v":1,"id":14,"method":"append_tweets","params":{"tweets":[{"id":9104,"user":901,"time":104,"lat":37.497,"lng":127.027,"text":"chaos a4"}]}}
{"v":1,"id":15,"method":"append_tweets","params":{"tweets":[{"id":9105,"user":900,"time":105,"lat":37.556,"lng":126.945,"text":"chaos a5"}]}}
{"v":1,"id":16,"method":"append_tweets","params":{"tweets":[{"id":9106,"user":901,"time":106,"lat":37.497,"lng":127.027,"text":"chaos a6"}]}}
{"v":1,"id":17,"method":"append_tweets","params":{"tweets":[{"id":9107,"user":900,"time":107,"lat":37.556,"lng":126.945,"text":"chaos a7"}]}}
{"v":1,"id":18,"method":"append_tweets","params":{"tweets":[{"id":9108,"user":901,"time":108,"lat":37.497,"lng":127.027,"text":"chaos a8"}]}}
]])

set(QUERIES ${WORK_DIR}/chaos_queries.jsonl)
file(WRITE ${QUERIES} [[{"v":1,"id":1,"method":"lookup_user","params":{"user":900}}
{"v":1,"id":2,"method":"lookup_user","params":{"user":901}}
{"v":1,"id":3,"method":"lookup_district","params":{"state":"Seoul","county":"Mapo-gu"}}
{"v":1,"id":4,"method":"lookup_district","params":{"state":"Seoul","county":"Gangnam-gu"}}
{"v":1,"id":5,"method":"topk_summary"}
]])

set(EMPTY_INPUT ${WORK_DIR}/chaos_empty_input.txt)
file(WRITE ${EMPTY_INPUT} "")

# --workers 1 keeps append execution order equal to admission order, so
# the lookup clock above is exact.
set(SERVE_BASE --users ${SUSERS} --tweets ${STWEETS} --stdio --stream
    --workers 1)
set(SERVE_FAULTS --io-fault-seed 5 ${IO_FAULTS})

# Reference: never killed, never faulted.
file(REMOVE_RECURSE ${WORK_DIR}/chaos_ref_ckpt)
file(MAKE_DIRECTORY ${WORK_DIR}/chaos_ref_ckpt)
run_serve(rc out err ${APPENDS} ${SERVE_BASE}
          --checkpoint-dir ${WORK_DIR}/chaos_ref_ckpt)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference ingest+appends failed (${rc}): ${err}")
endif()
if(NOT err MATCHES "served 8 requests")
  message(FATAL_ERROR "reference run did not answer all appends: ${err}")
endif()
run_serve(rc ref_out err ${QUERIES} ${SERVE_BASE}
          --checkpoint-dir ${WORK_DIR}/chaos_ref_ckpt --resume)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference query serve failed (${rc}): ${err}")
endif()
string(REGEX MATCHALL "[^\n]+" ref_lines "${ref_out}")
list(LENGTH ref_lines ref_count)
if(NOT ref_count EQUAL 5)
  message(FATAL_ERROR "reference answered ${ref_count}/5 queries:\n${ref_out}")
endif()

# Chaos: kill during base ingest (lookup 2 of 4).
file(REMOVE_RECURSE ${WORK_DIR}/chaos_srv_ckpt)
file(MAKE_DIRECTORY ${WORK_DIR}/chaos_srv_ckpt)
run_serve(rc out err ${EMPTY_INPUT} ${SERVE_BASE} ${SERVE_FAULTS}
          --checkpoint-dir ${WORK_DIR}/chaos_srv_ckpt --crash-after 2)
if(NOT rc EQUAL ${CRASH_EXIT})
  message(FATAL_ERROR "ingest kill exited ${rc}, expected ${CRASH_EXIT}: "
          "${out} ${err}")
endif()
if(NOT EXISTS ${WORK_DIR}/chaos_srv_ckpt/stream.journal)
  message(FATAL_ERROR "ingest kill left no stream journal")
endif()

# Kill again under live append load: replay re-folds tweets 1-2
# (lookups 1-2), ingest finishes the base corpus (3-4), appends 1-2 land
# (5-6), and lookup 7 — append 3, already journaled — dies mid-fold.
run_serve(rc out err ${APPENDS} ${SERVE_BASE} ${SERVE_FAULTS}
          --checkpoint-dir ${WORK_DIR}/chaos_srv_ckpt --resume
          --crash-after 7)
if(NOT rc EQUAL ${CRASH_EXIT})
  message(FATAL_ERROR "append-load kill exited ${rc}, expected "
          "${CRASH_EXIT}: ${out} ${err}")
endif()

# Restart, re-drive the unacknowledged appends, drain cleanly.
run_serve(rc out err ${APPENDS_TAIL} ${SERVE_BASE} ${SERVE_FAULTS}
          --checkpoint-dir ${WORK_DIR}/chaos_srv_ckpt --resume)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "post-kill append re-drive failed (${rc}): ${err}")
endif()
if(NOT err MATCHES "served 5 requests")
  message(FATAL_ERROR "re-drive did not answer all 5 appends: ${err}")
endif()

# Converged state must answer the query set byte-identically to the
# never-killed reference.
run_serve(rc chaos_out err ${QUERIES} ${SERVE_BASE} ${SERVE_FAULTS}
          --checkpoint-dir ${WORK_DIR}/chaos_srv_ckpt --resume)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "post-chaos query serve failed (${rc}): ${err}")
endif()
if(NOT chaos_out STREQUAL ref_out)
  message(FATAL_ERROR "post-chaos responses diverged from the reference:\n"
          "=== reference ===\n${ref_out}\n=== chaos ===\n${chaos_out}")
endif()

message(STATUS "chaos battery passed")
