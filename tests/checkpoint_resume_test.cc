// Crash-safe checkpoint/resume tests (DESIGN.md §9): checkpoint
// serialization, fingerprint validation, halt-at-N simulated crashes
// resumed to results identical to an uninterrupted run, journal-warmed
// zero-quota resumes, and degrade-to-fresh on corrupt durable state.

#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/report.h"
#include "core/study.h"
#include "geo/geocode_journal.h"
#include "io/atomic_file.h"
#include "twitter/generator.h"

namespace stir::core {
namespace {

class CheckpointResumeTest : public ::testing::Test {
 protected:
  CheckpointResumeTest() : db_(geo::AdminDb::KoreanDistricts()) {}

  twitter::GeneratedData Generate(double scale) {
    twitter::DatasetGenerator generator(
        &db_, twitter::DatasetGenerator::KoreanConfig(scale));
    return generator.Generate();
  }

  /// Fresh checkpoint directory under the test temp dir.
  std::string MakeCheckpointDir(const std::string& name) {
    std::string dir = testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    EXPECT_TRUE(io::EnsureDirectory(dir).ok());
    return dir;
  }

  StudyResult Run(const twitter::Dataset& dataset, const StudyConfig& config) {
    CorrelationStudy study(&db_, config);
    return study.Run(dataset);
  }

  /// Byte-level result equality via the versioned JSON report (covers the
  /// funnel, every group row, and the per-user tables).
  static void ExpectSameResult(const StudyResult& a, const StudyResult& b) {
    EXPECT_EQ(StudyReportJsonString(a), StudyReportJsonString(b));
  }

  const geo::AdminDb& db_;
};

RefinedUser MakeRefined(twitter::UserId user, geo::RegionId profile,
                        std::vector<geo::RegionId> regions) {
  RefinedUser r;
  r.user = user;
  r.profile_region = profile;
  r.tweet_regions = std::move(regions);
  r.total_tweets = static_cast<int64_t>(r.tweet_regions.size()) * 3;
  return r;
}

TEST(StudyCheckpointTest, SerializeRoundTripInProgress) {
  StudyCheckpoint ckpt;
  ckpt.stage = StudyCheckpoint::kRefinementInProgress;
  ckpt.dataset_fingerprint = 0x1122334455667788ull;
  ckpt.config_fingerprint = 0x99AABBCCDDEEFF00ull;
  ckpt.fault_next_index = 17;
  ShardProgress shard0;
  shard0.next_user = 12;
  shard0.done = false;
  shard0.stats.crawled_users = 12;
  shard0.stats.well_defined_users = 7;
  shard0.stats.gps_tweets = 40;
  shard0.stats.geocode_retried = 3;
  shard0.stats.backoff_ms = 250;
  shard0.refined.push_back(MakeRefined(5, 2, {1, 2, 2}));
  ShardProgress shard1;
  shard1.next_user = 30;
  shard1.done = true;
  shard1.refined.push_back(MakeRefined(9, 0, {}));
  ckpt.shards = {shard0, shard1};

  auto restored = StudyCheckpoint::Deserialize(ckpt.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->stage, StudyCheckpoint::kRefinementInProgress);
  EXPECT_EQ(restored->dataset_fingerprint, ckpt.dataset_fingerprint);
  EXPECT_EQ(restored->config_fingerprint, ckpt.config_fingerprint);
  EXPECT_EQ(restored->fault_next_index, 17);
  ASSERT_EQ(restored->shards.size(), 2u);
  EXPECT_EQ(restored->shards[0].next_user, 12);
  EXPECT_FALSE(restored->shards[0].done);
  EXPECT_EQ(restored->shards[0].stats.crawled_users, 12);
  EXPECT_EQ(restored->shards[0].stats.geocode_retried, 3);
  EXPECT_EQ(restored->shards[0].stats.backoff_ms, 250);
  ASSERT_EQ(restored->shards[0].refined.size(), 1u);
  EXPECT_EQ(restored->shards[0].refined[0].user, 5);
  EXPECT_EQ(restored->shards[0].refined[0].tweet_regions,
            (std::vector<geo::RegionId>{1, 2, 2}));
  EXPECT_TRUE(restored->shards[1].done);
  EXPECT_TRUE(restored->shards[1].refined[0].tweet_regions.empty());
}

TEST(StudyCheckpointTest, SerializeRoundTripDone) {
  StudyCheckpoint ckpt;
  ckpt.stage = StudyCheckpoint::kRefinementDone;
  ckpt.funnel.crawled_users = 100;
  ckpt.funnel.final_users = 9;
  ckpt.funnel.fault_injection_enabled = true;
  ckpt.funnel.geocode_faulted = 4;
  ckpt.refined.push_back(MakeRefined(1, 3, {3, 3}));

  auto restored = StudyCheckpoint::Deserialize(ckpt.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->stage, StudyCheckpoint::kRefinementDone);
  EXPECT_EQ(restored->funnel.crawled_users, 100);
  EXPECT_EQ(restored->funnel.final_users, 9);
  EXPECT_TRUE(restored->funnel.fault_injection_enabled);
  EXPECT_EQ(restored->funnel.geocode_faulted, 4);
  ASSERT_EQ(restored->refined.size(), 1u);
  EXPECT_EQ(restored->refined[0].profile_region, 3);
}

TEST(StudyCheckpointTest, DeserializeRejectsCorruptPayload) {
  StudyCheckpoint ckpt;
  ckpt.refined.push_back(MakeRefined(1, 3, {3, 3}));
  std::string bytes = ckpt.Serialize();
  EXPECT_FALSE(StudyCheckpoint::Deserialize("garbage").ok());
  EXPECT_FALSE(StudyCheckpoint::Deserialize(
                   std::string_view(bytes).substr(0, bytes.size() / 2))
                   .ok());
  EXPECT_FALSE(StudyCheckpoint::Deserialize(bytes + "trailing").ok());
}

TEST_F(CheckpointResumeTest, FingerprintsDetectChangedInputs) {
  twitter::GeneratedData data = Generate(0.02);
  twitter::GeneratedData other = Generate(0.03);
  EXPECT_EQ(DatasetFingerprint(data.dataset),
            DatasetFingerprint(data.dataset));
  EXPECT_NE(DatasetFingerprint(data.dataset),
            DatasetFingerprint(other.dataset));

  StudyConfig config;
  uint64_t base = ConfigFingerprint(config);
  EXPECT_EQ(base, ConfigFingerprint(config));

  StudyConfig faulted = config;
  faulted.fault.error_rate = 0.25;
  EXPECT_NE(base, ConfigFingerprint(faulted));

  StudyConfig threaded = config;
  threaded.threads = 4;
  EXPECT_NE(base, ConfigFingerprint(threaded));

  // Crash point, durability, and observability knobs must NOT shift the
  // fingerprint: the crashed run and its resume differ in exactly those.
  StudyConfig crashy = config;
  crashy.fault.crash_after = 40;
  crashy.durability.checkpoint_dir = "/some/dir";
  crashy.durability.resume = true;
  crashy.obs.enable_metrics = true;
  EXPECT_EQ(base, ConfigFingerprint(crashy));
}

TEST_F(CheckpointResumeTest, CheckpointManagerSaveLoad) {
  std::string dir = MakeCheckpointDir("ckpt_mgr");
  CheckpointManager manager(dir, /*fsync=*/false);
  StudyCheckpoint ckpt;
  ckpt.stage = StudyCheckpoint::kRefinementDone;
  ckpt.funnel.final_users = 5;
  ASSERT_TRUE(manager.Save(ckpt).ok());
  EXPECT_EQ(manager.writes(), 1);

  auto loaded = manager.Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->funnel.final_users, 5);

  // Missing checkpoint is IOError; corrupt is InvalidArgument.
  CheckpointManager empty(MakeCheckpointDir("ckpt_mgr_empty"), false);
  EXPECT_EQ(empty.Load().status().code(), StatusCode::kIOError);
  {
    std::ofstream out(manager.checkpoint_path(),
                      std::ios::binary | std::ios::trunc);
    out << "SHORT";
  }
  EXPECT_EQ(manager.Load().status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CheckpointResumeTest, HaltAndResumeMatchesUninterruptedSerial) {
  twitter::GeneratedData data = Generate(0.03);
  StudyConfig config;

  StudyResult clean = Run(data.dataset, config);
  ASSERT_GT(clean.final_users, 0);

  std::string dir = MakeCheckpointDir("resume_serial");
  StudyConfig halted = config;
  halted.durability.checkpoint_dir = dir;
  halted.durability.fsync = false;
  halted.durability.checkpoint_every_users = 8;
  halted.durability.halt_after_users = 25;
  StudyResult partial = Run(data.dataset, halted);
  EXPECT_TRUE(partial.incomplete);

  StudyConfig resumed = config;
  resumed.durability.checkpoint_dir = dir;
  resumed.durability.fsync = false;
  resumed.durability.resume = true;
  StudyResult final_result = Run(data.dataset, resumed);
  EXPECT_FALSE(final_result.incomplete);
  ExpectSameResult(clean, final_result);
}

TEST_F(CheckpointResumeTest, HaltAndResumeMatchesUninterruptedThreaded) {
  twitter::GeneratedData data = Generate(0.03);
  StudyConfig config;
  config.threads = 4;

  StudyResult clean = Run(data.dataset, config);

  std::string dir = MakeCheckpointDir("resume_threaded");
  StudyConfig halted = config;
  halted.durability.checkpoint_dir = dir;
  halted.durability.fsync = false;
  halted.durability.checkpoint_every_users = 4;
  halted.durability.halt_after_users = 40;
  StudyResult partial = Run(data.dataset, halted);
  EXPECT_TRUE(partial.incomplete);

  StudyConfig resumed = config;
  resumed.durability.checkpoint_dir = dir;
  resumed.durability.fsync = false;
  resumed.durability.resume = true;
  StudyResult final_result = Run(data.dataset, resumed);
  ExpectSameResult(clean, final_result);
}

TEST_F(CheckpointResumeTest, HaltAndResumeWithFaultInjection) {
  twitter::GeneratedData data = Generate(0.03);
  StudyConfig config;
  config.fault.error_rate = 0.2;
  config.fault.seed = 7;
  config.retry.max_attempts = 2;

  StudyResult clean = Run(data.dataset, config);

  std::string dir = MakeCheckpointDir("resume_faulty");
  StudyConfig halted = config;
  halted.durability.checkpoint_dir = dir;
  halted.durability.fsync = false;
  halted.durability.checkpoint_every_users = 8;
  halted.durability.halt_after_users = 30;
  StudyResult partial = Run(data.dataset, halted);
  EXPECT_TRUE(partial.incomplete);

  StudyConfig resumed = config;
  resumed.durability.checkpoint_dir = dir;
  resumed.durability.fsync = false;
  resumed.durability.resume = true;
  StudyResult final_result = Run(data.dataset, resumed);
  // The fault schedule continues from the checkpointed sequence position,
  // so the faulty resume still reproduces the uninterrupted faulty run.
  ExpectSameResult(clean, final_result);
  EXPECT_EQ(final_result.funnel.geocode_faulted, clean.funnel.geocode_faulted);
}

TEST_F(CheckpointResumeTest, ResumeAfterCompleteSkipsPipeline) {
  twitter::GeneratedData data = Generate(0.02);
  StudyConfig config;

  std::string dir = MakeCheckpointDir("resume_done");
  StudyConfig first = config;
  first.durability.checkpoint_dir = dir;
  first.durability.fsync = false;
  StudyResult clean = Run(data.dataset, first);

  // Re-running with --resume after completion must not re-geocode: the
  // kRefinementDone checkpoint short-circuits the pipeline, so even a
  // zero-quota geocoder reproduces the report.
  StudyConfig resumed = config;
  resumed.durability.checkpoint_dir = dir;
  resumed.durability.fsync = false;
  resumed.durability.resume = true;
  resumed.geocoder.quota = 0;
  StudyResult final_result = Run(data.dataset, resumed);
  ExpectSameResult(clean, final_result);
}

TEST_F(CheckpointResumeTest, JournalWarmResumeSpendsNoQuota) {
  twitter::GeneratedData data = Generate(0.02);
  StudyConfig config;

  std::string dir = MakeCheckpointDir("resume_journal_only");
  StudyConfig first = config;
  first.durability.checkpoint_dir = dir;
  first.durability.fsync = false;
  StudyResult clean = Run(data.dataset, first);
  ASSERT_GT(clean.final_users, 0);

  // Drop the checkpoint but keep the geocode journal: the resumed run
  // re-refines every user, but every previously-resolved lookup is a
  // journal-warmed cache hit — zero quota spent.
  ASSERT_EQ(std::remove((dir + "/study.ckpt").c_str()), 0);
  auto replay = geo::GeocodeJournal::Replay(dir + "/geocode.journal");
  ASSERT_TRUE(replay.usable) << replay.error;
  ASSERT_GT(replay.entries.size(), 0u);

  StudyConfig resumed = config;
  resumed.durability.checkpoint_dir = dir;
  resumed.durability.fsync = false;
  resumed.durability.resume = true;
  resumed.geocoder.quota = 0;
  StudyResult final_result = Run(data.dataset, resumed);
  ExpectSameResult(clean, final_result);
}

TEST_F(CheckpointResumeTest, CorruptDurableStateDegradesToFresh) {
  twitter::GeneratedData data = Generate(0.02);
  StudyConfig config;
  StudyResult clean = Run(data.dataset, config);

  std::string dir = MakeCheckpointDir("resume_corrupt");
  {
    std::ofstream journal(dir + "/geocode.journal", std::ios::binary);
    journal << "garbage that is not a journal at all.............";
    std::ofstream ckpt(dir + "/study.ckpt", std::ios::binary);
    ckpt << "SHORT";
  }
  StudyConfig resumed = config;
  resumed.durability.checkpoint_dir = dir;
  resumed.durability.fsync = false;
  resumed.durability.resume = true;
  StudyResult final_result = Run(data.dataset, resumed);
  EXPECT_FALSE(final_result.incomplete);
  ExpectSameResult(clean, final_result);
}

TEST_F(CheckpointResumeTest, MismatchedFingerprintRestartsFresh) {
  twitter::GeneratedData data = Generate(0.02);
  twitter::GeneratedData other = Generate(0.03);
  StudyConfig config;

  std::string dir = MakeCheckpointDir("resume_mismatch");
  StudyConfig halted = config;
  halted.durability.checkpoint_dir = dir;
  halted.durability.fsync = false;
  halted.durability.halt_after_users = 10;
  StudyResult partial = Run(data.dataset, halted);
  EXPECT_TRUE(partial.incomplete);

  // Resuming against a different dataset must not splice mismatched
  // progress: the checkpoint is rejected and the run completes fresh.
  StudyResult other_clean = Run(other.dataset, config);
  StudyConfig resumed = config;
  resumed.durability.checkpoint_dir = dir;
  resumed.durability.fsync = false;
  resumed.durability.resume = true;
  StudyResult final_result = Run(other.dataset, resumed);
  EXPECT_FALSE(final_result.incomplete);
  EXPECT_EQ(final_result.final_users, other_clean.final_users);
  EXPECT_EQ(final_result.funnel.crawled_users,
            other_clean.funnel.crawled_users);
}

TEST_F(CheckpointResumeTest, CheckpointingOffLeavesResultIdentical) {
  twitter::GeneratedData data = Generate(0.02);
  StudyConfig config;
  StudyResult off = Run(data.dataset, config);

  StudyConfig on = config;
  on.durability.checkpoint_dir = MakeCheckpointDir("identity_on");
  on.durability.fsync = false;
  StudyResult with_ckpt = Run(data.dataset, on);
  ExpectSameResult(off, with_ckpt);
}

}  // namespace
}  // namespace stir::core
