// net::EpollServer battery (DESIGN.md §13): the per-connection
// determinism contract across worker counts and pipeline windows, the
// adversarial socket corpus (slow-loris, half-open, mid-request
// disconnect, oversized lines split across reads, pipelined garbage),
// tiered overload shedding with exact metric reconciliation, and the
// graceful-drain state machine. Labelled `net`; runs in the TSan lane.

#include "net/epoll_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/study.h"
#include "geo/admin_db.h"
#include "gtest/gtest.h"
#include "infer/inference_index.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/study_index.h"
#include "twitter/generator.h"

namespace stir::net {
namespace {

using geo::AdminDb;
using obs::JsonParse;
using obs::JsonValue;
using serve::Server;
using serve::ServeOptions;
using serve::StudyIndex;

class NetServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ::signal(SIGPIPE, SIG_IGN);  // The battery writes into dead sockets.
    const AdminDb& db = AdminDb::KoreanDistricts();
    twitter::DatasetGenerator generator(
        &db, twitter::DatasetGenerator::KoreanConfig(0.05));
    twitter::GeneratedData data = generator.Generate();
    core::CorrelationStudy study(&db);
    core::StudyResult result = study.Run(data.dataset);
    index_ = new StudyIndex(StudyIndex::Build(result, db));
    ASSERT_FALSE(index_->empty());
    infer_index_ = new infer::InferenceIndex(
        infer::InferenceIndex::Build(data.dataset, db));
    ASSERT_FALSE(infer_index_->empty());
  }
  static void TearDownTestSuite() {
    delete infer_index_;
    infer_index_ = nullptr;
    delete index_;
    index_ = nullptr;
  }

  /// A deterministic request stream cycling through every method except
  /// the explicitly history-dependent server_stats: lookups (hit and
  /// miss), topk, index_info, infer_user, append (a typed error off
  /// streaming mode), malformed lines, and CRLF / blank-line framing
  /// variation.
  static std::vector<std::string> MixedStream(int64_t count,
                                              int64_t id_base) {
    std::vector<std::string> lines;
    lines.reserve(count);
    for (int64_t i = 0; i < count; ++i) {
      int64_t id = id_base + i;
      std::string line;
      switch (i % 9) {
        case 0:
          line = "{\"v\":1,\"id\":" + std::to_string(id) +
                 ",\"method\":\"topk_summary\"}";
          break;
        case 1:
          line = "{\"v\":1,\"id\":" + std::to_string(id) +
                 ",\"method\":\"lookup_user\",\"params\":{\"user\":" +
                 std::to_string(
                     index_->users()[i % index_->user_count()].user) +
                 "}}";
          break;
        case 2:
          line = "{\"v\":1,\"id\":" + std::to_string(id) +
                 ",\"method\":\"lookup_user\",\"params\":{\"user\":999999}}";
          break;
        case 3:
          line = "{\"v\":1,\"id\":" + std::to_string(id) +
                 ",\"method\":\"index_info\"}";
          break;
        case 4:
          line = "{\"v\":1,\"id\":" + std::to_string(id) +
                 ",\"method\":\"lookup_district\",\"params\":"
                 "{\"state\":\"Seoul\",\"county\":\"Gangnam-gu\"}}\r";
          break;
        case 5:
          line = "this line is not json (" + std::to_string(id) + ")";
          break;
        case 6:
          line = "{\"v\":1,\"id\":" + std::to_string(id) +
                 ",\"method\":\"append_tweets\",\"params\":{\"tweets\":[]}}";
          break;
        case 7:
          line = "{\"v\":1,\"id\":" + std::to_string(id) +
                 ",\"method\":\"infer_user\",\"params\":{\"user\":" +
                 std::to_string(
                     infer_index_->users()[i % infer_index_->user_count()]
                         .user) +
                 ",\"strategy\":\"diurnal\"}}";
          break;
        case 8:
          line = "";  // Keep-alive blank line: no response owed.
          break;
      }
      lines.push_back(std::move(line));
    }
    return lines;
  }

  /// The exact bytes a connection sends: one line per entry, each
  /// newline-terminated (entries may carry their own trailing \r).
  static std::string PayloadFrom(const std::vector<std::string>& lines) {
    std::string payload;
    for (const std::string& line : lines) {
      payload += line;
      payload += '\n';
    }
    return payload;
  }

  /// The solo-run baseline: the same payload served alone over the stdio
  /// path by a fresh single-worker server. The determinism contract says
  /// any connection's TCP byte stream must equal this.
  static std::string SoloResponses(const std::string& payload,
                                   ServeOptions options = {}) {
    options.workers = 1;
    options.infer_index = infer_index_;
    Server server(index_, options);
    std::istringstream in(payload);
    std::ostringstream out;
    server.ServeStream(in, out);
    server.Drain();
    return out.str();
  }

  static StudyIndex* index_;
  static infer::InferenceIndex* infer_index_;
};

StudyIndex* NetServerTest::index_ = nullptr;
infer::InferenceIndex* NetServerTest::infer_index_ = nullptr;

int64_t ResponseId(const std::string& response) {
  JsonValue root;
  if (!JsonParse(response, &root)) return -2;
  const JsonValue* id = root.Find("id");
  if (id == nullptr) return -2;
  if (id->kind == JsonValue::Kind::kNull) return -1;
  return id->integer;
}

std::string ResponseErrorCode(const std::string& response) {
  JsonValue root;
  if (!JsonParse(response, &root)) return "<unparseable>";
  const JsonValue* error = root.Find("error");
  if (error == nullptr) return "";
  return error->Find("code")->string;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t pos = text.find('\n', start);
    if (pos == std::string::npos) pos = text.size();
    lines.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return lines;
}

/// Blocking loopback client with line-oriented reads and the adversarial
/// controls the battery needs (partial writes, RST, receive timeouts).
class Client {
 public:
  ~Client() { Close(); }

  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    timeval tv{};
    tv.tv_sec = 30;  // A stuck server fails the test, not the suite.
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      Close();
      return false;
    }
    return true;
  }

  bool Send(std::string_view data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  /// Reads until the server closes the connection.
  std::string ReadAll() {
    std::string received = std::move(buffer_);
    buffer_.clear();
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      received.append(buf, static_cast<size_t>(n));
    }
    return received;
  }

  /// One response line (without the newline); empty on timeout/EOF.
  std::string ReadLine() {
    for (;;) {
      size_t pos = buffer_.find('\n');
      if (pos != std::string::npos) {
        std::string line = buffer_.substr(0, pos);
        buffer_.erase(0, pos + 1);
        return line;
      }
      char buf[4096];
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return std::string();
      buffer_.append(buf, static_cast<size_t>(n));
    }
  }

  /// Abortive close: RST instead of FIN (mid-request disconnect).
  void CloseHard() {
    if (fd_ < 0) return;
    linger lg{};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    Close();
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Polls `predicate` for up to five seconds — for the few assertions
/// that observe the loop thread's bookkeeping from outside.
bool WaitFor(const std::function<bool()>& predicate) {
  for (int i = 0; i < 500; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

// ---------------------------------------------------------------------------
// Determinism battery: for any interleaving of N connections, any worker
// count, and any pipeline window, each connection's response stream is
// byte-identical to its requests served alone over stdio.

TEST_F(NetServerTest, PerConnectionDeterminismBattery) {
  constexpr int kConns = 6;
  constexpr int64_t kPerConn = 48;
  std::vector<std::string> payloads;
  std::vector<std::string> expected;
  for (int c = 0; c < kConns; ++c) {
    payloads.push_back(PayloadFrom(MixedStream(kPerConn, c * 100'000)));
    expected.push_back(SoloResponses(payloads.back()));
  }

  for (int workers : {1, 2, 8}) {
    for (int window : {1, 16, 64}) {
      ServeOptions options;
      options.workers = workers;
      options.queue_capacity = 4096;  // Wide: determinism excludes shed.
      options.infer_index = infer_index_;
      Server server(index_, options);
      NetOptions net_options;
      net_options.max_pipeline = window;
      EpollServer net(&server, net_options);
      ASSERT_TRUE(net.Listen(0).ok());
      ASSERT_TRUE(net.Start().ok());

      std::vector<std::string> received(kConns);
      std::vector<std::thread> clients;
      for (int c = 0; c < kConns; ++c) {
        clients.emplace_back([&, c] {
          Client client;
          if (!client.Connect(net.port())) return;
          if (!client.Send(payloads[c])) return;
          client.ShutdownWrite();
          received[c] = client.ReadAll();
        });
      }
      for (std::thread& t : clients) t.join();
      net.Stop();

      for (int c = 0; c < kConns; ++c) {
        EXPECT_EQ(received[c], expected[c])
            << "workers=" << workers << " window=" << window
            << " conn=" << c;
      }
      NetStats stats = net.stats();
      EXPECT_EQ(stats.accepted, kConns);
      EXPECT_EQ(stats.closed, kConns);
      EXPECT_EQ(stats.live, 0);
    }
  }
}

TEST_F(NetServerTest, ManyPipelinedConnectionsAllMatchSolo) {
  constexpr int kConns = 128;
  const std::string payload = PayloadFrom(MixedStream(24, 7'000'000));
  const std::string expected = SoloResponses(payload);

  ServeOptions options;
  options.workers = 4;
  options.queue_capacity = 8192;
  options.infer_index = infer_index_;
  Server server(index_, options);
  NetOptions net_options;
  net_options.max_pipeline = 16;
  EpollServer net(&server, net_options);
  ASSERT_TRUE(net.Listen(0).ok());
  ASSERT_TRUE(net.Start().ok());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kConns; ++c) {
    clients.emplace_back([&] {
      Client client;
      if (!client.Connect(net.port()) || !client.Send(payload)) {
        mismatches.fetch_add(100);
        return;
      }
      client.ShutdownWrite();
      if (client.ReadAll() != expected) mismatches.fetch_add(1);
    });
  }
  for (std::thread& t : clients) t.join();
  net.Stop();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(net.stats().accepted, kConns);
  EXPECT_EQ(net.stats().live, 0);
}

// ---------------------------------------------------------------------------
// Mode symmetry: stdio is just an adopted connection of the same loop.

TEST_F(NetServerTest, AdoptedPipesMatchServeStream) {
  const std::string payload = PayloadFrom(MixedStream(32, 42));
  const std::string expected = SoloResponses(payload);

  int in_pipe[2];
  int out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);

  ServeOptions options;
  options.workers = 2;
  options.infer_index = infer_index_;
  Server server(index_, options);
  EpollServer net(&server, NetOptions{});
  ASSERT_TRUE(net.AdoptStdio(in_pipe[0], out_pipe[1]).ok());

  std::thread feeder([&] {
    size_t sent = 0;
    while (sent < payload.size()) {
      ssize_t n = ::write(in_pipe[1], payload.data() + sent,
                          payload.size() - sent);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    ::close(in_pipe[1]);  // EOF ends the stdio session.
  });
  std::string received;
  std::thread reader([&] {
    char buf[4096];
    for (;;) {
      ssize_t n = ::read(out_pipe[0], buf, sizeof(buf));
      if (n <= 0) break;
      received.append(buf, static_cast<size_t>(n));
    }
  });

  net.Run();  // Stdio mode: returns at EOF once the last response flushed.
  ::close(out_pipe[1]);
  feeder.join();
  reader.join();
  ::close(in_pipe[0]);
  ::close(out_pipe[0]);

  EXPECT_EQ(received, expected);
  EXPECT_EQ(net.stats().accepted, 1);
  EXPECT_EQ(net.stats().live, 0);
}

TEST_F(NetServerTest, DrainAfterLinesAnswersBufferedLinesTyped) {
  // All five requests sit in the pipe before the loop starts, so the
  // drain point is fully deterministic: lines 1-2 are admitted and
  // answered, lines 3-5 are already buffered when the drain begins and
  // get typed shutting_down envelopes with their ids echoed, in order.
  std::vector<std::string> lines;
  for (int i = 1; i <= 5; ++i) {
    lines.push_back("{\"v\":1,\"id\":" + std::to_string(i) +
                    ",\"method\":\"topk_summary\"}");
  }
  const std::string payload = PayloadFrom(lines);

  int in_pipe[2];
  int out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);
  ASSERT_TRUE(::write(in_pipe[1], payload.data(), payload.size()) ==
              static_cast<ssize_t>(payload.size()));
  ::close(in_pipe[1]);

  ServeOptions options;
  options.workers = 2;
  Server server(index_, options);
  NetOptions net_options;
  net_options.drain_after_lines = 2;
  EpollServer net(&server, net_options);
  ASSERT_TRUE(net.AdoptStdio(in_pipe[0], out_pipe[1]).ok());

  std::string received;
  std::thread reader([&] {
    char buf[4096];
    for (;;) {
      ssize_t n = ::read(out_pipe[0], buf, sizeof(buf));
      if (n <= 0) break;
      received.append(buf, static_cast<size_t>(n));
    }
  });
  net.Run();
  ::close(out_pipe[1]);
  reader.join();
  ::close(in_pipe[0]);
  ::close(out_pipe[0]);

  std::vector<std::string> responses = SplitLines(received);
  ASSERT_EQ(responses.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ResponseId(responses[i]), i + 1) << responses[i];
    EXPECT_EQ(ResponseErrorCode(responses[i]),
              i < 2 ? "" : "shutting_down")
        << responses[i];
  }
  EXPECT_GE(net.stats().drain_micros, 0);
}

// ---------------------------------------------------------------------------
// Adversarial socket battery.

TEST_F(NetServerTest, SlowLorisNeverBlocksOtherConnections) {
  ServeOptions options;
  options.workers = 2;
  Server server(index_, options);
  EpollServer net(&server, NetOptions{});
  ASSERT_TRUE(net.Listen(0).ok());
  ASSERT_TRUE(net.Start().ok());

  Client loris;
  ASSERT_TRUE(loris.Connect(net.port()));
  // A request that never finishes: bytes trickle in, no newline.
  ASSERT_TRUE(loris.Send("{\"v\":1,\"id\":77,"));

  Client busy;
  ASSERT_TRUE(busy.Connect(net.port()));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(busy.Send("{\"v\":1,\"id\":" + std::to_string(i) +
                          ",\"method\":\"topk_summary\"}\n"));
    std::string response = busy.ReadLine();
    EXPECT_EQ(ResponseId(response), i) << "stalled behind a slow-loris";
  }
  busy.Close();

  // The stalled connection is intact: completing its line still works.
  ASSERT_TRUE(loris.Send("\"method\":\"topk_summary\"}\n"));
  EXPECT_EQ(ResponseId(loris.ReadLine()), 77);
  loris.Close();
  net.Stop();
  EXPECT_EQ(net.stats().live, 0);
}

TEST_F(NetServerTest, MidRequestDisconnectLeavesOthersIntact) {
  ServeOptions options;
  options.workers = 2;
  Server server(index_, options);
  EpollServer net(&server, NetOptions{});
  ASSERT_TRUE(net.Listen(0).ok());
  ASSERT_TRUE(net.Start().ok());

  Client survivor;
  ASSERT_TRUE(survivor.Connect(net.port()));

  {
    Client casualty;
    ASSERT_TRUE(casualty.Connect(net.port()));
    ASSERT_TRUE(casualty.Send("{\"v\":1,\"id\":1,\"method\":"));
    ASSERT_TRUE(WaitFor([&] { return net.stats().accepted == 2; }));
    casualty.CloseHard();  // RST mid-request.
  }
  // The RST tears the connection down without leaking its fd or state.
  EXPECT_TRUE(WaitFor([&] { return net.stats().closed == 1; }));

  ASSERT_TRUE(survivor.Send("{\"v\":1,\"id\":9,\"method\":\"topk_summary\"}\n"));
  EXPECT_EQ(ResponseId(survivor.ReadLine()), 9);
  survivor.Close();
  net.Stop();
  NetStats stats = net.stats();
  EXPECT_EQ(stats.accepted, 2);
  EXPECT_EQ(stats.closed, 2);
  EXPECT_EQ(stats.live, 0);
}

TEST_F(NetServerTest, OversizedLineSplitAcrossReadsGetsExactEnvelope) {
  ServeOptions options;
  options.workers = 1;
  Server server(index_, options);
  NetOptions net_options;
  net_options.read_chunk_bytes = 512;  // Force many reads per line.
  EpollServer net(&server, net_options);
  ASSERT_TRUE(net.Listen(0).ok());
  ASSERT_TRUE(net.Start().ok());

  const size_t kLineBytes = 100'000;  // Above the 64 KiB framing cap.
  std::string big(kLineBytes, 'x');
  const std::string tail = "{\"v\":1,\"id\":5,\"method\":\"topk_summary\"}";
  const std::string payload = big + "\n" + tail + "\n";
  // Byte-identity with the stdio path, which reads the whole line via
  // getline and rejects it in ParseRequest with the same envelope.
  const std::string expected = SoloResponses(payload);

  Client client;
  ASSERT_TRUE(client.Connect(net.port()));
  // Trickle the oversized line so it spans dozens of reads, with the
  // newline and the follow-up request split across chunk boundaries too.
  size_t sent = 0;
  while (sent < payload.size()) {
    size_t n = std::min<size_t>(7'000, payload.size() - sent);
    ASSERT_TRUE(client.Send(std::string_view(payload).substr(sent, n)));
    sent += n;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  client.ShutdownWrite();
  std::string received = client.ReadAll();
  EXPECT_EQ(received, expected);

  std::vector<std::string> responses = SplitLines(received);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(ResponseErrorCode(responses[0]), "oversized");
  EXPECT_EQ(responses[0],
            serve::OversizedResponse(kLineBytes, net_options.max_line_bytes));
  EXPECT_EQ(ResponseId(responses[1]), 5);
  net.Stop();
  NetStats stats = net.stats();
  EXPECT_EQ(stats.oversized, 1);
  // The framer never buffered the whole line.
  EXPECT_EQ(stats.bytes_in, static_cast<int64_t>(payload.size()));
}

TEST_F(NetServerTest, PipelinedGarbageAfterValidRequestIsContained) {
  ServeOptions options;
  options.workers = 2;
  Server server(index_, options);
  EpollServer net(&server, NetOptions{});
  ASSERT_TRUE(net.Listen(0).ok());
  ASSERT_TRUE(net.Start().ok());

  std::string payload =
      "{\"v\":1,\"id\":1,\"method\":\"topk_summary\"}\n";
  payload += "\x01\x02\x7f garbage after a valid request \xfe\xff\n";
  payload += "{\"v\":1,\"id\":2,\"method\":\"topk_summary\"}"
             "{\"v\":1,\"id\":3,\"method\":\"topk_summary\"}\n";
  payload += "{\"v\":1,\"id\":4,\"method\":\"topk_summary\"}\n";
  const std::string expected = SoloResponses(payload);

  Client client;
  ASSERT_TRUE(client.Connect(net.port()));
  ASSERT_TRUE(client.Send(payload));  // One write: maximally pipelined.
  client.ShutdownWrite();
  std::string received = client.ReadAll();
  EXPECT_EQ(received, expected);

  std::vector<std::string> responses = SplitLines(received);
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(ResponseErrorCode(responses[0]), "");
  EXPECT_NE(ResponseErrorCode(responses[1]), "");
  EXPECT_NE(ResponseErrorCode(responses[2]), "");  // Two objects, one line.
  EXPECT_EQ(ResponseId(responses[3]), 4);
  net.Stop();
}

TEST_F(NetServerTest, HalfOpenConnectionsAreClosedByGracefulDrain) {
  ServeOptions options;
  options.workers = 2;
  Server server(index_, options);
  EpollServer net(&server, NetOptions{});
  ASSERT_TRUE(net.Listen(0).ok());
  ASSERT_TRUE(net.Start().ok());

  constexpr int kIdle = 3;
  constexpr int kStalled = 2;
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < kIdle + kStalled; ++i) {
    clients.push_back(std::make_unique<Client>());
    ASSERT_TRUE(clients.back()->Connect(net.port()));
    if (i >= kIdle) {
      ASSERT_TRUE(clients.back()->Send("{\"v\":1,\"id\":1,"));  // Partial.
    }
  }
  ASSERT_TRUE(
      WaitFor([&] { return net.stats().accepted == kIdle + kStalled; }));

  net.Stop();  // Graceful drain: idle and stalled conns just close.
  for (auto& client : clients) {
    EXPECT_EQ(client->ReadAll(), "");  // EOF, no bytes owed.
  }
  NetStats stats = net.stats();
  EXPECT_EQ(stats.accepted, kIdle + kStalled);
  EXPECT_EQ(stats.closed, kIdle + kStalled);
  EXPECT_EQ(stats.live, 0);
  EXPECT_GE(stats.drain_micros, 0);
}

TEST_F(NetServerTest, DrainFlushesInFlightAndTypesBufferedLines) {
  // A long linger parks the worker, so the first `window` requests are
  // deterministically in flight (admitted) and the rest sit in the
  // connection's read buffer when the drain begins.
  ServeOptions options;
  options.workers = 1;
  options.max_batch_size = 64;
  options.batch_linger_us = 30'000'000;
  Server server(index_, options);
  NetOptions net_options;
  net_options.max_pipeline = 2;
  EpollServer net(&server, net_options);
  ASSERT_TRUE(net.Listen(0).ok());
  ASSERT_TRUE(net.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect(net.port()));
  std::string payload;
  for (int i = 1; i <= 4; ++i) {
    payload += "{\"v\":1,\"id\":" + std::to_string(i) +
               ",\"method\":\"topk_summary\"}\n";
  }
  ASSERT_TRUE(client.Send(payload));
  ASSERT_TRUE(WaitFor([&] { return server.stats().admitted == 2; }));

  net.Stop();  // Drain: flush the 2 in flight, type the 2 buffered.
  std::string received = client.ReadAll();
  std::vector<std::string> responses = SplitLines(received);
  ASSERT_EQ(responses.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ResponseId(responses[i]), i + 1) << responses[i];
    EXPECT_EQ(ResponseErrorCode(responses[i]),
              i < 2 ? "" : "shutting_down")
        << responses[i];
  }
  serve::SchedulerStats stats = server.stats();
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.rejected_shutdown, 2);
}

// ---------------------------------------------------------------------------
// Tiered admission control: under overload append_tweets sheds before
// the lookups, the lookups shed before infer_user, server_stats is never
// shed, and the shed counts reconcile exactly across net.*, serve.*, and
// SchedulerStats.

TEST_F(NetServerTest, TieredSheddingOrderAndExactReconciliation) {
  obs::MetricsRegistry metrics;
  ServeOptions options;
  options.workers = 1;
  options.queue_capacity = 8;
  options.infer_fill_limit = 0.875;  // infer_user sheds at queue depth 7.
  options.tier1_fill_limit = 0.75;   // Lookups shed at queue depth 6.
  options.tier2_fill_limit = 0.25;   // Appends shed at queue depth 2.
  options.max_batch_size = 64;
  options.batch_linger_us = 30'000'000;  // Park the worker; drain ends it.
  options.metrics = &metrics;
  options.infer_index = infer_index_;
  Server server(index_, options);
  ASSERT_EQ(server.scheduler().TierThreshold(0), 8);
  ASSERT_EQ(server.scheduler().TierThreshold(1), 7);
  ASSERT_EQ(server.scheduler().TierThreshold(2), 6);
  ASSERT_EQ(server.scheduler().TierThreshold(3), 2);

  NetOptions net_options;
  net_options.metrics = &metrics;
  EpollServer net(&server, net_options);
  ASSERT_TRUE(net.Listen(0).ok());
  ASSERT_TRUE(net.Start().ok());

  // Fill the queue to exactly depth 6 with tier-2 lookups (admitted at
  // depths 0..5, all under the tier-2 threshold).
  constexpr int kFillers = 6;
  std::vector<std::unique_ptr<Client>> fillers;
  for (int i = 0; i < kFillers; ++i) {
    fillers.push_back(std::make_unique<Client>());
    ASSERT_TRUE(fillers.back()->Connect(net.port()));
    ASSERT_TRUE(fillers.back()->Send(
        "{\"v\":1,\"id\":" + std::to_string(100 + i) +
        ",\"method\":\"topk_summary\"}\n"));
  }
  Client control;
  ASSERT_TRUE(control.Connect(net.port()));
  ASSERT_TRUE(WaitFor([&] {
    return server.stats().admitted == kFillers;
  }));

  // Depth 6 >= 2: an append_tweets is shed (tier 3) ...
  Client append_client;
  ASSERT_TRUE(append_client.Connect(net.port()));
  ASSERT_TRUE(append_client.Send(
      "{\"v\":1,\"id\":200,\"method\":\"append_tweets\","
      "\"params\":{\"tweets\":[]}}\n"));
  std::string append_response = append_client.ReadLine();
  EXPECT_EQ(ResponseErrorCode(append_response), "overloaded");
  EXPECT_EQ(ResponseId(append_response), 200);

  // ... depth 6 >= 6: a lookup is shed too (tier 2) ...
  Client lookup_client;
  ASSERT_TRUE(lookup_client.Connect(net.port()));
  ASSERT_TRUE(lookup_client.Send(
      "{\"v\":1,\"id\":300,\"method\":\"lookup_user\","
      "\"params\":{\"user\":1}}\n"));
  std::string lookup_response = lookup_client.ReadLine();
  EXPECT_EQ(ResponseErrorCode(lookup_response), "overloaded");
  EXPECT_EQ(ResponseId(lookup_response), 300);

  // ... depth 6 < 7: an infer_user (tier 1) is still ADMITTED while the
  // lookups are shedding — inference sits between server_stats and the
  // lookups in the shed order. It parks in the queue (depth 7) until the
  // drain wakes the worker.
  Client infer_client;
  ASSERT_TRUE(infer_client.Connect(net.port()));
  ASSERT_TRUE(infer_client.Send(
      "{\"v\":1,\"id\":500,\"method\":\"infer_user\",\"params\":{\"user\":" +
      std::to_string(infer_index_->users()[0].user) + "}}\n"));
  ASSERT_TRUE(WaitFor([&] {
    return server.stats().admitted == kFillers + 1;
  }));

  // ... but server_stats (tier 0) is still answered, and its own payload
  // carries the per-tier shed counters.
  ASSERT_TRUE(control.Send(
      "{\"v\":1,\"id\":400,\"method\":\"server_stats\"}\n"));
  std::string stats_response = control.ReadLine();
  EXPECT_EQ(ResponseErrorCode(stats_response), "");
  JsonValue root;
  ASSERT_TRUE(JsonParse(stats_response, &root));
  const JsonValue* shed =
      root.Find("result")->Find("counters")->Find("shed");
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(shed->Find("tier0")->integer, 0);
  EXPECT_EQ(shed->Find("tier1")->integer, 0);
  EXPECT_EQ(shed->Find("tier2")->integer, 1);
  EXPECT_EQ(shed->Find("tier3")->integer, 1);

  for (auto& filler : fillers) filler->ShutdownWrite();
  infer_client.ShutdownWrite();
  append_client.Close();
  lookup_client.Close();
  control.Close();
  net.Stop();  // Wakes the parked worker; the 7 admitted are answered.
  for (int i = 0; i < kFillers; ++i) {
    std::string response = fillers[i]->ReadAll();
    EXPECT_EQ(ResponseErrorCode(SplitLines(response)[0]), "")
        << "admitted filler " << i << " must be served across the drain";
  }
  // The admitted infer_user is executed across the drain, never shed: a
  // real decision or a typed low_confidence abstention, not overloaded.
  std::string infer_response = SplitLines(infer_client.ReadAll())[0];
  EXPECT_EQ(ResponseId(infer_response), 500);
  EXPECT_NE(ResponseErrorCode(infer_response), "overloaded")
      << infer_response;

  // Exact three-way reconciliation: scheduler counters, net counters,
  // and the metrics registry all agree, with nothing lost in between.
  serve::SchedulerStats sched = server.stats();
  NetStats netstats = net.stats();
  EXPECT_EQ(sched.rejected_overload, 2);
  EXPECT_EQ(sched.rejected_by_tier[0], 0);
  EXPECT_EQ(sched.rejected_by_tier[1], 0);
  EXPECT_EQ(sched.rejected_by_tier[2], 1);
  EXPECT_EQ(sched.rejected_by_tier[3], 1);
  for (int t = 0; t < serve::kNumShedTiers; ++t) {
    EXPECT_EQ(netstats.shed_by_tier[t], sched.rejected_by_tier[t])
        << "tier " << t;
  }
  obs::MetricsSnapshot snapshot = metrics.Snapshot();
  for (int t = 0; t < serve::kNumShedTiers; ++t) {
    std::string tier = std::to_string(t);
    EXPECT_EQ(snapshot.counter("net.shed.tier" + tier),
              sched.rejected_by_tier[t]);
    EXPECT_EQ(snapshot.counter("serve.shed.tier" + tier),
              sched.rejected_by_tier[t]);
  }
  EXPECT_EQ(sched.received, sched.admitted + sched.stats_served +
                                sched.parse_errors + sched.rejected_overload +
                                sched.rejected_shutdown);
}

// ---------------------------------------------------------------------------
// The framing corpus, replayed over TCP and adopted pipes: every bad_*
// line is answered with a typed error and never corrupts the stream.

TEST_F(NetServerTest, RequestCorpusOverTcpAndPipesMatchesSolo) {
  std::filesystem::path dir =
      std::filesystem::path(STIR_TEST_DATA_DIR) / "serve_requests";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::string payload;
  int corpus_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++corpus_files;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.is_open()) << entry.path();
    payload.append(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    if (!payload.empty() && payload.back() != '\n') payload += '\n';
  }
  ASSERT_GE(corpus_files, 10) << "corpus went missing";
  const std::string expected = SoloResponses(payload);
  ASSERT_FALSE(expected.empty());

  ServeOptions options;
  options.workers = 2;
  options.infer_index = infer_index_;
  Server server(index_, options);
  EpollServer net(&server, NetOptions{});
  ASSERT_TRUE(net.Listen(0).ok());
  ASSERT_TRUE(net.Start().ok());
  Client client;
  ASSERT_TRUE(client.Connect(net.port()));
  ASSERT_TRUE(client.Send(payload));
  client.ShutdownWrite();
  EXPECT_EQ(client.ReadAll(), expected) << "TCP corpus replay diverged";
  net.Stop();

  // Same corpus through an adopted pipe pair (the --stdio path).
  int in_pipe[2];
  int out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);
  Server pipe_server(index_, options);
  EpollServer pipe_net(&pipe_server, NetOptions{});
  ASSERT_TRUE(pipe_net.AdoptStdio(in_pipe[0], out_pipe[1]).ok());
  std::thread feeder([&] {
    size_t sent = 0;
    while (sent < payload.size()) {
      ssize_t n = ::write(in_pipe[1], payload.data() + sent,
                          payload.size() - sent);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    ::close(in_pipe[1]);
  });
  std::string received;
  std::thread reader([&] {
    char buf[4096];
    for (;;) {
      ssize_t n = ::read(out_pipe[0], buf, sizeof(buf));
      if (n <= 0) break;
      received.append(buf, static_cast<size_t>(n));
    }
  });
  pipe_net.Run();
  ::close(out_pipe[1]);
  feeder.join();
  reader.join();
  ::close(in_pipe[0]);
  ::close(out_pipe[0]);
  EXPECT_EQ(received, expected) << "pipe corpus replay diverged";
}

}  // namespace
}  // namespace stir::net
