#include "event/particle_filter.h"

#include <gtest/gtest.h>

namespace stir::event {
namespace {

geo::BoundingBox KoreaBox() {
  geo::BoundingBox box;
  box.Extend({33.0, 124.5});
  box.Extend({38.6, 131.0});
  return box;
}

TEST(ParticleFilterTest, InitialEstimateNearPriorCenter) {
  Rng rng(1);
  ParticleFilter filter(5000, KoreaBox(), rng);
  EXPECT_EQ(filter.num_particles(), 5000);
  geo::LatLng estimate = filter.Estimate();
  EXPECT_NEAR(estimate.lat, 35.8, 0.2);
  EXPECT_NEAR(estimate.lng, 127.75, 0.2);
  EXPECT_NEAR(filter.EffectiveSampleSize(), 5000.0, 1.0);
}

TEST(ParticleFilterTest, ConvergesToMeasurementCluster) {
  Rng rng(2);
  ParticleFilter filter(3000, KoreaBox(), rng);
  geo::LatLng truth{36.10, 129.40};
  for (int i = 0; i < 30; ++i) {
    geo::LatLng measurement{truth.lat + rng.Normal(0.0, 0.1),
                            truth.lng + rng.Normal(0.0, 0.1)};
    filter.Update(measurement, 15.0, 1.0, rng);
  }
  EXPECT_LT(geo::HaversineKm(filter.Estimate(), truth), 15.0);
  EXPECT_LT(filter.SpreadKm(), 25.0);
}

TEST(ParticleFilterTest, SpreadShrinksWithEvidence) {
  Rng rng(3);
  ParticleFilter filter(3000, KoreaBox(), rng);
  double initial_spread = filter.SpreadKm();
  for (int i = 0; i < 10; ++i) {
    filter.Update({36.0, 128.0}, 25.0, 1.0, rng);
  }
  EXPECT_LT(filter.SpreadKm(), initial_spread / 3.0);
}

TEST(ParticleFilterTest, TemperedUpdatesMoveBeliefLess) {
  Rng rng_a(4), rng_b(4);
  ParticleFilter strong(2000, KoreaBox(), rng_a);
  ParticleFilter weak(2000, KoreaBox(), rng_b);
  geo::LatLng measurement{37.57, 126.98};
  strong.Update(measurement, 30.0, 1.0, rng_a);
  weak.Update(measurement, 30.0, 0.05, rng_b);
  double strong_distance =
      geo::HaversineKm(strong.Estimate(), measurement);
  double weak_distance = geo::HaversineKm(weak.Estimate(), measurement);
  EXPECT_LT(strong_distance, weak_distance);
}

TEST(ParticleFilterTest, SurvivesDegenerateFarMeasurement) {
  Rng rng(5);
  ParticleFilter filter(500, KoreaBox(), rng);
  // Concentrate the belief first.
  for (int i = 0; i < 5; ++i) filter.Update({36.0, 128.0}, 5.0, 1.0, rng);
  // A measurement absurdly far away would zero all weights without the
  // degeneracy guard.
  filter.Update({-80.0, 10.0}, 0.5, 1.0, rng);
  geo::LatLng estimate = filter.Estimate();
  EXPECT_TRUE(estimate.IsValid());
  EXPECT_GT(filter.EffectiveSampleSize(), 1.0);
}

TEST(ParticleFilterTest, ResamplingKeepsEssHealthy) {
  Rng rng(6);
  ParticleFilter filter(1000, KoreaBox(), rng);
  for (int i = 0; i < 40; ++i) {
    filter.Update({35.18, 129.08}, 10.0, 1.0, rng);
    EXPECT_GE(filter.EffectiveSampleSize(), 1.0);
  }
  // After many updates the filter is concentrated but not collapsed.
  EXPECT_GT(filter.EffectiveSampleSize(), 100.0);
}

TEST(ParticleFilterTest, MultimodalEvidenceLandsAtHeavierMode) {
  Rng rng(7);
  ParticleFilter filter(4000, KoreaBox(), rng);
  geo::LatLng seoul{37.57, 126.98};
  geo::LatLng busan{35.18, 129.08};
  // 3:1 evidence for Busan.
  for (int i = 0; i < 12; ++i) {
    filter.Update(busan, 40.0, 1.0, rng);
    if (i % 3 == 0) filter.Update(seoul, 40.0, 1.0, rng);
  }
  EXPECT_LT(geo::HaversineKm(filter.Estimate(), busan),
            geo::HaversineKm(filter.Estimate(), seoul));
}

}  // namespace
}  // namespace stir::event
