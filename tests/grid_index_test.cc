#include "geo/grid_index.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace stir::geo {
namespace {

TEST(GridIndexTest, EmptyIndex) {
  GridIndex index;
  EXPECT_EQ(index.Nearest({0, 0}), -1);
  EXPECT_TRUE(index.WithinRadius({0, 0}, 100.0).empty());
}

TEST(GridIndexTest, SinglePoint) {
  GridIndex index;
  index.Add({37.5, 127.0}, 42);
  EXPECT_EQ(index.Nearest({37.5, 127.0}), 42);
  EXPECT_EQ(index.Nearest({38.9, 128.4}), 42);
  EXPECT_EQ(index.Nearest({37.5, 127.0}, /*max_distance_km=*/1.0), 42);
  // Respect the distance bound.
  EXPECT_EQ(index.Nearest({40.0, 127.0}, /*max_distance_km=*/10.0), -1);
}

TEST(GridIndexTest, NearestMatchesBruteForce) {
  Rng rng(5);
  GridIndex index(0.3);
  std::vector<LatLng> points;
  for (int64_t i = 0; i < 500; ++i) {
    LatLng p{rng.Uniform(33.0, 39.0), rng.Uniform(124.0, 132.0)};
    points.push_back(p);
    index.Add(p, i);
  }
  for (int trial = 0; trial < 300; ++trial) {
    LatLng q{rng.Uniform(33.0, 39.0), rng.Uniform(124.0, 132.0)};
    int64_t got = index.Nearest(q);
    ASSERT_GE(got, 0);
    double best = 1e18;
    int64_t want = -1;
    for (int64_t i = 0; i < static_cast<int64_t>(points.size()); ++i) {
      double d = ApproxDistanceKm(q, points[static_cast<size_t>(i)]);
      if (d < best) {
        best = d;
        want = i;
      }
    }
    // Either the same id, or a tie in distance.
    double got_distance = ApproxDistanceKm(q, points[static_cast<size_t>(got)]);
    EXPECT_NEAR(got_distance, best, 1e-9) << "trial " << trial << " want "
                                          << want;
  }
}

TEST(GridIndexTest, WithinRadiusMatchesBruteForce) {
  Rng rng(6);
  GridIndex index(0.5);
  std::vector<LatLng> points;
  for (int64_t i = 0; i < 400; ++i) {
    LatLng p{rng.Uniform(34.0, 38.0), rng.Uniform(126.0, 130.0)};
    points.push_back(p);
    index.Add(p, i);
  }
  for (double radius : {5.0, 30.0, 120.0}) {
    LatLng q{36.0, 128.0};
    std::vector<int64_t> got = index.WithinRadius(q, radius);
    std::sort(got.begin(), got.end());
    std::vector<int64_t> want;
    for (int64_t i = 0; i < static_cast<int64_t>(points.size()); ++i) {
      if (ApproxDistanceKm(q, points[static_cast<size_t>(i)]) <= radius) {
        want.push_back(i);
      }
    }
    EXPECT_EQ(got, want) << "radius " << radius;
  }
}

TEST(GridIndexTest, NegativeRadiusYieldsNothing) {
  GridIndex index;
  index.Add({0, 0}, 1);
  EXPECT_TRUE(index.WithinRadius({0, 0}, -1.0).empty());
}

TEST(GridIndexTest, DuplicatePositionsBothFound) {
  GridIndex index;
  index.Add({10, 10}, 1);
  index.Add({10, 10}, 2);
  auto hits = index.WithinRadius({10, 10}, 0.5);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<int64_t>{1, 2}));
}

}  // namespace
}  // namespace stir::geo
