#include "stats/correlation.h"

#include <gtest/gtest.h>

namespace stir::stats {
namespace {

TEST(PearsonTest, PerfectCorrelations) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y_pos = {2, 4, 6, 8, 10};
  std::vector<double> y_neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y_pos).value(), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, y_neg).value(), -1.0, 1e-12);
}

TEST(PearsonTest, ZeroVarianceYieldsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}).value(), 0.0);
}

TEST(PearsonTest, InvalidInputs) {
  EXPECT_TRUE(PearsonCorrelation({1}, {1}).status().IsInvalidArgument());
  EXPECT_TRUE(
      PearsonCorrelation({1, 2}, {1, 2, 3}).status().IsInvalidArgument());
}

TEST(SpearmanTest, MonotoneNonlinearIsPerfect) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {1, 8, 27, 64, 125};  // x^3: nonlinear, monotone
  EXPECT_LT(PearsonCorrelation(x, y).value(), 1.0);
  EXPECT_NEAR(SpearmanCorrelation(x, y).value(), 1.0, 1e-12);
}

TEST(SpearmanTest, HandlesTiesWithMidranks) {
  std::vector<double> x = {1, 2, 2, 3};
  std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(SpearmanCorrelation(x, y).value(), 1.0, 1e-12);
}

TEST(ChiSquareTest, ZeroWhenObservedEqualsExpected) {
  EXPECT_DOUBLE_EQ(
      ChiSquareStatistic({10, 20, 30}, {10, 20, 30}).value(), 0.0);
}

TEST(ChiSquareTest, KnownValue) {
  // ((12-10)^2)/10 + ((8-10)^2)/10 = 0.8
  EXPECT_NEAR(ChiSquareStatistic({12, 8}, {10, 10}).value(), 0.8, 1e-12);
}

TEST(ChiSquareTest, RejectsNonPositiveExpected) {
  EXPECT_TRUE(
      ChiSquareStatistic({1}, {0}).status().IsInvalidArgument());
  EXPECT_TRUE(ChiSquareStatistic({}, {}).status().IsInvalidArgument());
}

TEST(BootstrapTest, IntervalContainsPointAndShrinksWithData) {
  Rng rng(17);
  std::vector<double> small_sample, large_sample;
  for (int i = 0; i < 20; ++i) small_sample.push_back(rng.Normal(50, 10));
  for (int i = 0; i < 2000; ++i) large_sample.push_back(rng.Normal(50, 10));

  BootstrapInterval small_ci = BootstrapMeanCI(small_sample, 0.95, 500, rng);
  BootstrapInterval large_ci = BootstrapMeanCI(large_sample, 0.95, 500, rng);
  EXPECT_LE(small_ci.lo, small_ci.point);
  EXPECT_GE(small_ci.hi, small_ci.point);
  EXPECT_LT(large_ci.hi - large_ci.lo, small_ci.hi - small_ci.lo);
  EXPECT_NEAR(large_ci.point, 50.0, 1.5);
}

TEST(BootstrapTest, DegenerateInputs) {
  Rng rng(18);
  BootstrapInterval ci = BootstrapMeanCI({7.0}, 0.95, 100, rng);
  EXPECT_DOUBLE_EQ(ci.point, 7.0);
  EXPECT_DOUBLE_EQ(ci.lo, 7.0);
  EXPECT_DOUBLE_EQ(ci.hi, 7.0);
}

}  // namespace
}  // namespace stir::stats
