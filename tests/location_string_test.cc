#include "core/location_string.h"

#include <gtest/gtest.h>

namespace stir::core {
namespace {

LocationRecord MakeRecord(twitter::UserId user, const std::string& ps,
                          const std::string& pc, const std::string& ts,
                          const std::string& tc) {
  LocationRecord record;
  record.user = user;
  record.profile_state = ps;
  record.profile_county = pc;
  record.tweet_state = ts;
  record.tweet_county = tc;
  return record;
}

TEST(LocationRecordTest, ToStringMatchesPaperTable1Format) {
  LocationRecord record =
      MakeRecord(123, "Seoul", "Yangcheon-gu", "Seoul", "Jung-gu");
  EXPECT_EQ(record.ToString(), "123#Seoul#Yangcheon-gu#Seoul#Jung-gu");
}

TEST(LocationRecordTest, FromStringRoundTrip) {
  LocationRecord record =
      MakeRecord(71, "Gyeonggi-do", "Uiwang-si", "Gyeonggi-do", "Seongnam-si");
  auto parsed = LocationRecord::FromString(record.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, record);
}

TEST(LocationRecordTest, FromStringRejectsMalformed) {
  EXPECT_FALSE(LocationRecord::FromString("1#a#b#c").ok());
  EXPECT_FALSE(LocationRecord::FromString("1#a#b#c#d#e").ok());
  EXPECT_FALSE(LocationRecord::FromString("x#a#b#c#d").ok());
  EXPECT_FALSE(LocationRecord::FromString("").ok());
}

TEST(LocationRecordTest, IsMatched) {
  EXPECT_TRUE(MakeRecord(1, "Seoul", "Jung-gu", "Seoul", "Jung-gu")
                  .IsMatched());
  EXPECT_FALSE(MakeRecord(1, "Seoul", "Jung-gu", "Busan", "Jung-gu")
                   .IsMatched());
  EXPECT_FALSE(MakeRecord(1, "Seoul", "Jung-gu", "Seoul", "Mapo-gu")
                   .IsMatched());
}

TEST(MergeAndOrderTest, ReproducesPaperTable2) {
  // The paper's example: user 123... has 4 strings, 2 of them identical.
  std::vector<LocationRecord> records = {
      MakeRecord(123, "Seoul", "Yangcheon-gu", "Seoul", "Yangcheon-gu"),
      MakeRecord(123, "Seoul", "Yangcheon-gu", "Seoul", "Seodaemun-gu"),
      MakeRecord(123, "Seoul", "Yangcheon-gu", "Seoul", "Jung-gu"),
      MakeRecord(123, "Seoul", "Yangcheon-gu", "Seoul", "Jung-gu"),
      MakeRecord(123, "Seoul", "Yangcheon-gu", "Seoul", "Yangcheon-gu"),
      MakeRecord(123, "Seoul", "Yangcheon-gu", "Seoul", "Yangcheon-gu"),
  };
  auto merged = MergeAndOrder(records);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].record.tweet_county, "Yangcheon-gu");
  EXPECT_EQ(merged[0].count, 3);
  EXPECT_EQ(merged[1].record.tweet_county, "Jung-gu");
  EXPECT_EQ(merged[1].count, 2);
  EXPECT_EQ(merged[2].record.tweet_county, "Seodaemun-gu");
  EXPECT_EQ(merged[2].count, 1);
  EXPECT_EQ(merged[0].ToString(),
            "123#Seoul#Yangcheon-gu#Seoul#Yangcheon-gu (3)");
}

TEST(MergeAndOrderTest, CountsSumToInputSize) {
  std::vector<LocationRecord> records;
  for (int i = 0; i < 20; ++i) {
    records.push_back(MakeRecord(5, "Seoul", "Mapo-gu", "Seoul",
                                 i % 3 == 0 ? "Mapo-gu" : "Jung-gu"));
  }
  auto merged = MergeAndOrder(records);
  int64_t total = 0;
  for (const auto& m : merged) total += m.count;
  EXPECT_EQ(total, 20);
}

TEST(MergeAndOrderTest, TieBreaksLexicographically) {
  std::vector<LocationRecord> records = {
      MakeRecord(9, "Seoul", "Mapo-gu", "Seoul", "Zebra-gu"),
      MakeRecord(9, "Seoul", "Mapo-gu", "Seoul", "Alpha-gu"),
  };
  auto merged = MergeAndOrder(records);
  ASSERT_EQ(merged.size(), 2u);
  // Equal counts (1 each): deterministic lexicographic order.
  EXPECT_EQ(merged[0].record.tweet_county, "Alpha-gu");
  EXPECT_EQ(merged[1].record.tweet_county, "Zebra-gu");
}

TEST(MergeAndOrderTest, EmptyInput) {
  EXPECT_TRUE(MergeAndOrder({}).empty());
}

TEST(MergeAndOrderTest, ReverseTieBreakFlipsOnlyTiedRuns) {
  std::vector<LocationRecord> records = {
      MakeRecord(9, "Seoul", "Mapo-gu", "Seoul", "Alpha-gu"),
      MakeRecord(9, "Seoul", "Mapo-gu", "Seoul", "Zebra-gu"),
      MakeRecord(9, "Seoul", "Mapo-gu", "Seoul", "Top-gu"),
      MakeRecord(9, "Seoul", "Mapo-gu", "Seoul", "Top-gu"),
  };
  auto lex = MergeAndOrder(records, TieBreak::kLexicographic);
  auto rev = MergeAndOrder(records, TieBreak::kReverseLexicographic);
  ASSERT_EQ(lex.size(), 3u);
  ASSERT_EQ(rev.size(), 3u);
  // The count-2 row stays first under both rules.
  EXPECT_EQ(lex[0].record.tweet_county, "Top-gu");
  EXPECT_EQ(rev[0].record.tweet_county, "Top-gu");
  // The tied count-1 rows swap.
  EXPECT_EQ(lex[1].record.tweet_county, "Alpha-gu");
  EXPECT_EQ(rev[1].record.tweet_county, "Zebra-gu");
}

TEST(MergeAndOrderTest, TieBreakPreservesCountsAndMembership) {
  std::vector<LocationRecord> records;
  for (int i = 0; i < 30; ++i) {
    records.push_back(MakeRecord(3, "Seoul", "Mapo-gu", "Seoul",
                                 "C" + std::to_string(i % 7)));
  }
  auto lex = MergeAndOrder(records, TieBreak::kLexicographic);
  auto rev = MergeAndOrder(records, TieBreak::kReverseLexicographic);
  ASSERT_EQ(lex.size(), rev.size());
  int64_t lex_total = 0, rev_total = 0;
  for (const auto& m : lex) lex_total += m.count;
  for (const auto& m : rev) rev_total += m.count;
  EXPECT_EQ(lex_total, 30);
  EXPECT_EQ(rev_total, 30);
  // Counts are non-increasing under both rules.
  for (size_t i = 1; i < lex.size(); ++i) {
    EXPECT_LE(lex[i].count, lex[i - 1].count);
    EXPECT_LE(rev[i].count, rev[i - 1].count);
  }
}

TEST(MergeAndOrderDeathTest, MixedUsersAbort) {
  std::vector<LocationRecord> records = {
      MakeRecord(1, "Seoul", "Mapo-gu", "Seoul", "Mapo-gu"),
      MakeRecord(2, "Seoul", "Mapo-gu", "Seoul", "Mapo-gu"),
  };
  EXPECT_DEATH(MergeAndOrder(records), "single user");
}

}  // namespace
}  // namespace stir::core
