// Storage-fault behaviour of the mapped arena corpus (DESIGN.md §15):
// flipped pages quarantine verify windows instead of corrupting results,
// the refinement funnel drops quarantined users into
// funnel.drop.corrupt_window, truncation under the map SIGBUSes into
// quarantine rather than killing the process, and ENOSPC mid-spill
// surfaces from the writer with no snapshot left behind.

#include "io/corpus.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "core/study.h"
#include "io/fault_fs.h"
#include "twitter/dataset.h"

namespace stir::io {
namespace {

std::filesystem::path TempPath(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

void AddUser(twitter::Dataset* dataset, twitter::UserId id,
             const std::string& handle, const std::string& profile,
             int64_t total) {
  twitter::User user;
  user.id = id;
  user.handle = handle;
  user.profile_location = profile;
  user.total_tweets = total;
  dataset->AddUser(user);
}

void AddTweet(twitter::Dataset* dataset, twitter::TweetId id,
              twitter::UserId user, SimTime time,
              std::optional<geo::LatLng> gps, const std::string& text) {
  twitter::Tweet tweet;
  tweet.id = id;
  tweet.user = user;
  tweet.time = time;
  tweet.gps = gps;
  tweet.text = text;
  dataset->AddTweet(std::move(tweet));
}

/// Grouped corpus (tweets in user order): three refinable users with
/// GPS tweets inside their profile districts, one tweetless user.
twitter::Dataset MakeGroupedDataset() {
  twitter::Dataset dataset;
  AddUser(&dataset, 1, "alpha", "Seoul Gangnam-gu", 4);
  AddUser(&dataset, 2, "beta", "Seoul Mapo-gu", 3);
  AddUser(&dataset, 3, "gamma", "Seoul Gangnam-gu", 2);
  AddUser(&dataset, 4, "delta", "Uiwang-si", 0);  // no tweets
  AddTweet(&dataset, 100, 1, 10, geo::LatLng{37.497, 127.027}, "coffee");
  AddTweet(&dataset, 101, 1, 20, geo::LatLng{37.498, 127.028}, "lunch");
  AddTweet(&dataset, 102, 2, 30, geo::LatLng{37.556, 126.945}, "river");
  AddTweet(&dataset, 103, 3, 40, geo::LatLng{37.499, 127.029}, "gym");
  return dataset;
}

/// Interleaved variant of the same users: forces the explicit CSR
/// permutation, exercising the per-row quarantine probe in refinement.
twitter::Dataset MakeInterleavedDataset() {
  twitter::Dataset dataset;
  AddUser(&dataset, 1, "alpha", "Seoul Gangnam-gu", 4);
  AddUser(&dataset, 2, "beta", "Seoul Mapo-gu", 3);
  AddUser(&dataset, 3, "gamma", "Seoul Gangnam-gu", 2);
  AddUser(&dataset, 4, "delta", "Uiwang-si", 0);
  AddTweet(&dataset, 100, 1, 10, geo::LatLng{37.497, 127.027}, "coffee");
  AddTweet(&dataset, 102, 2, 30, geo::LatLng{37.556, 126.945}, "river");
  AddTweet(&dataset, 101, 1, 20, geo::LatLng{37.498, 127.028}, "lunch");
  AddTweet(&dataset, 103, 3, 40, geo::LatLng{37.499, 127.029}, "gym");
  return dataset;
}

class CorpusFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultFs::Instance().Reset(); }
  void TearDown() override { FaultFs::Instance().Reset(); }
};

TEST_F(CorpusFaultTest, PageFlipQuarantinesWindows) {
  std::filesystem::path path = TempPath("corpus_fault_flip.corpus");
  ASSERT_TRUE(
      CorpusWriter::WriteDataset(MakeGroupedDataset(), path.string()).ok());
  auto view = CorpusView::Open(path.string());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_GE(view->window_count(), 1);
  EXPECT_EQ(view->quarantined_windows(), 0);
  EXPECT_FALSE(view->TweetRowsQuarantined(0, view->tweet_count()));

  FaultFsOptions options;
  options.seed = 11;
  options.page_flip_rate = 1.0;  // Every re-verified window reads corrupt.
  FaultFs::Instance().Configure(options);
  EXPECT_EQ(view->ReverifyAllWindows(), view->window_count());
  EXPECT_EQ(view->quarantined_windows(), view->window_count());
  for (int64_t w = 0; w < view->window_count(); ++w) {
    EXPECT_TRUE(view->WindowQuarantined(w));
    // Sticky: a second re-verify still reports the window bad.
    EXPECT_FALSE(view->ReverifyWindow(w));
  }
  EXPECT_TRUE(view->TweetRowsQuarantined(0, view->tweet_count()));

  const FaultFsStats stats = FaultFs::Instance().stats();
  EXPECT_EQ(stats.page_flips, view->window_count());
  EXPECT_EQ(stats.quarantined, stats.injected);
  EXPECT_EQ(stats.surfaced, 0);
  std::filesystem::remove(path);
}

TEST_F(CorpusFaultTest, RefinementDropsQuarantinedUsersIntoFunnel) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  StudyConfig config;
  config.obs.enable_metrics = true;
  core::CorrelationStudy study(&db, config);

  // Both CSR layouts: grouped corpora take the O(1) range check,
  // interleaved ones probe each permuted row.
  const struct {
    const char* name;
    twitter::Dataset dataset;
  } cases[] = {{"grouped", MakeGroupedDataset()},
               {"interleaved", MakeInterleavedDataset()}};
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    std::filesystem::path path = TempPath("corpus_fault_funnel.corpus");
    ASSERT_TRUE(CorpusWriter::WriteDataset(c.dataset, path.string()).ok());
    auto view = CorpusView::Open(path.string());
    ASSERT_TRUE(view.ok()) << view.status().ToString();

    // Fault-free: everything refines, the corrupt-window drop is zero
    // and its metric is never registered.
    core::StudyResult clean = study.Run(*view);
    EXPECT_EQ(clean.funnel.corrupt_window_users, 0);
    EXPECT_EQ(clean.funnel.final_users, 3);
    EXPECT_EQ(clean.metrics.counter("funnel.drop.corrupt_window"), 0);
    EXPECT_EQ(clean.metrics.counters.count("funnel.drop.corrupt_window"),
              0u);

    // Quarantine every window: all three tweet-holding users are dropped
    // whole; the tweetless user never touches a quarantined row.
    FaultFsOptions options;
    options.seed = 11;
    options.page_flip_rate = 1.0;
    FaultFs::Instance().Configure(options);
    ASSERT_EQ(view->ReverifyAllWindows(), view->window_count());
    core::StudyResult faulted = study.Run(*view);
    EXPECT_EQ(faulted.funnel.crawled_users, 4);
    EXPECT_EQ(faulted.funnel.corrupt_window_users, 3);
    EXPECT_EQ(faulted.funnel.final_users, 0);
    EXPECT_EQ(faulted.metrics.counter("funnel.drop.corrupt_window"), 3);

    FaultFs::Instance().Reset();
    std::filesystem::remove(path);
  }
}

TEST_F(CorpusFaultTest, OpenRejectsFlippedByte) {
  std::filesystem::path path = TempPath("corpus_fault_bitrot.corpus");
  ASSERT_TRUE(
      CorpusWriter::WriteDataset(MakeGroupedDataset(), path.string()).ok());
  const auto size = std::filesystem::file_size(path);
  ASSERT_GT(size, kCorpusHeaderSize + 16);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(kCorpusHeaderSize + 10));
    char byte = 0;
    f.get(byte);
    f.seekp(static_cast<std::streamoff>(kCorpusHeaderSize + 10));
    f.put(static_cast<char>(byte ^ 0x40));
  }
  auto view = CorpusView::Open(path.string());
  EXPECT_FALSE(view.ok());
  std::filesystem::remove(path);
}

TEST_F(CorpusFaultTest, TruncationUnderMapQuarantinesInsteadOfCrashing) {
  // A corpus mapped, then truncated behind the map: touching the lost
  // pages raises SIGBUS, which the re-verify guard must absorb into
  // quarantine — a crash here is the bug the guard exists to prevent.
  twitter::Dataset dataset = MakeGroupedDataset();
  const std::string filler(200, 'x');
  for (int i = 0; i < 50; ++i) {
    AddTweet(&dataset, 200 + i, 3, 100 + i, std::nullopt, filler);
  }
  std::filesystem::path path = TempPath("corpus_fault_truncate.corpus");
  ASSERT_TRUE(CorpusWriter::WriteDataset(dataset, path.string()).ok());
  ASSERT_GT(std::filesystem::file_size(path), 8192u);

  auto view = CorpusView::Open(path.string());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_GE(view->window_count(), 1);
  std::filesystem::resize_file(path, 4096);

  EXPECT_EQ(view->ReverifyAllWindows(), view->window_count());
  EXPECT_EQ(view->quarantined_windows(), view->window_count());
  EXPECT_TRUE(view->TweetRowsQuarantined(0, view->tweet_count()));
  // The external (non-injected) corruption still balances the fault
  // ledger: noted as injected + quarantined, never surfaced.
  const FaultFsStats stats = FaultFs::Instance().stats();
  EXPECT_GE(stats.quarantined, 1);
  EXPECT_EQ(stats.quarantined, stats.injected);
  std::filesystem::remove(path);
}

TEST_F(CorpusFaultTest, EnospcMidSpillSurfacesAndLeavesNoSnapshot) {
  FaultFsOptions options;
  options.seed = 4;
  options.enospc_after_bytes = 512;  // Fills during the spill files.
  FaultFs::Instance().Configure(options);

  std::filesystem::path path = TempPath("corpus_fault_enospc.corpus");
  std::filesystem::remove(path);
  Status status = Status::OK();
  {
    CorpusWriterOptions writer_options;
    writer_options.tweet_spill_rows = 64;
    CorpusWriter writer(path.string(), writer_options);
    twitter::User user;
    user.id = 1;
    user.handle = "alpha";
    user.profile_location = "Seoul Gangnam-gu";
    user.total_tweets = 200;
    ASSERT_TRUE(writer.AddUser(user).ok());
    for (int i = 0; i < 200 && status.ok(); ++i) {
      twitter::Tweet tweet;
      tweet.id = 1000 + i;
      tweet.user = 1;
      tweet.time = i;
      tweet.gps = geo::LatLng{37.497, 127.027};
      tweet.text = std::string(64, 'x');
      status = writer.AddTweet(std::move(tweet));
    }
    if (status.ok()) status = writer.Finish().status();
  }
  EXPECT_FALSE(status.ok()) << "a 512-byte disk held a 200-tweet corpus";

  const FaultFsStats stats = FaultFs::Instance().stats();
  EXPECT_GT(stats.enospc, 0);
  EXPECT_EQ(stats.surfaced, stats.injected);
  FaultFs::Instance().Reset();
  // Atomicity: the failed build left no snapshot (and no temp siblings).
  EXPECT_FALSE(std::filesystem::exists(path));
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(
           path.parent_path(), ec)) {
    EXPECT_EQ(entry.path().string().find(path.string() + "."),
              std::string::npos)
        << "leftover temp sibling: " << entry.path();
  }
}

}  // namespace
}  // namespace stir::io
