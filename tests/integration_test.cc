// End-to-end integration tests: generator -> refinement -> grouping ->
// study -> reliability -> event detection, checked against the ground
// truth the generator kept aside.

#include <gtest/gtest.h>

#include "core/reliability.h"
#include "core/study.h"
#include "event/event_sim.h"
#include "event/toretter.h"
#include "twitter/generator.h"

namespace stir {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : db_(geo::AdminDb::KoreanDistricts()) {
    twitter::DatasetGenerator generator(
        &db_, twitter::DatasetGenerator::KoreanConfig(0.15));
    data_ = generator.Generate();
    core::CorrelationStudy study(&db_);
    result_ = study.Run(data_.dataset);
  }

  const geo::AdminDb& db_;
  twitter::GeneratedData data_;
  core::StudyResult result_;
};

TEST_F(IntegrationTest, RecoveredProfileRegionMatchesClaimedGroundTruth) {
  // For every refined user, the parsed profile region must equal the
  // district the generator intended ("claimed") — the parser undoes the
  // text noise the profile generator added.
  for (const core::RefinedUser& user : result_.refined) {
    const twitter::MobilityProfile& truth = data_.truth.mobility.at(user.user);
    EXPECT_EQ(user.profile_region, truth.claimed)
        << "user " << user.user << ": parsed "
        << db_.region(user.profile_region).FullName() << " vs claimed "
        << db_.region(truth.claimed).FullName();
  }
}

TEST_F(IntegrationTest, RelocatedUsersLandInNoneGroup) {
  // Ground-truth relocated users never tweet from their claimed district,
  // so the pipeline must classify every one of them as None.
  int relocated_seen = 0;
  for (const core::UserGrouping& grouping : result_.groupings) {
    const twitter::MobilityProfile& truth =
        data_.truth.mobility.at(grouping.user);
    if (truth.archetype == twitter::Archetype::kRelocated) {
      ++relocated_seen;
      EXPECT_EQ(grouping.group, core::TopKGroup::kNone)
          << "user " << grouping.user;
    }
    if (truth.archetype == twitter::Archetype::kGeotagSelective) {
      EXPECT_EQ(grouping.group, core::TopKGroup::kNone)
          << "selective user " << grouping.user;
    }
  }
  EXPECT_GT(relocated_seen, 10);
}

TEST_F(IntegrationTest, HomebodiesMostlyTop1) {
  int64_t homebodies = 0, top1 = 0;
  for (const core::UserGrouping& grouping : result_.groupings) {
    const twitter::MobilityProfile& truth =
        data_.truth.mobility.at(grouping.user);
    if (truth.archetype != twitter::Archetype::kHomebody) continue;
    ++homebodies;
    top1 += (grouping.group == core::TopKGroup::kTop1);
  }
  ASSERT_GT(homebodies, 30);
  EXPECT_GT(static_cast<double>(top1) / static_cast<double>(homebodies),
            0.6);
}

TEST_F(IntegrationTest, ReliabilityWeightsSeparateGroups) {
  core::ReliabilityModel reliability =
      core::ReliabilityModel::FromGroupings(result_.groupings);
  EXPECT_GT(reliability.GroupWeight(core::TopKGroup::kTop1), 0.5);
  EXPECT_LT(reliability.GroupWeight(core::TopKGroup::kNone), 0.05);
  EXPECT_GT(reliability.GroupWeight(core::TopKGroup::kTop1),
            reliability.GroupWeight(core::TopKGroup::kTop3));
}

TEST_F(IntegrationTest, ReliabilityWeightingImprovesProfileEstimates) {
  // The paper's future-work hypothesis, verified on synthetic events:
  // averaged over several quakes, reliability-weighted profile-location
  // estimation beats unweighted profile-location estimation.
  core::ReliabilityModel reliability =
      core::ReliabilityModel::FromGroupings(result_.groupings);
  std::unordered_map<twitter::UserId, geo::RegionId> profiles;
  for (const core::RefinedUser& user : result_.refined) {
    profiles.emplace(user.user, user.profile_region);
  }

  const geo::LatLng epicenters[] = {
      {37.55, 127.00}, {35.20, 129.00}, {36.35, 127.40},
      {35.85, 128.60}, {37.30, 127.00},
  };
  event::EventSimulator simulator(&db_, &data_.truth);
  double unweighted_error = 0.0, weighted_error = 0.0;
  int events = 0;
  for (const geo::LatLng& epicenter : epicenters) {
    event::EventSpec spec;
    spec.epicenter = epicenter;
    spec.felt_radius_km = 150.0;
    spec.response_rate = 0.5;
    Rng rng(static_cast<uint64_t>(epicenter.lat * 1000));
    auto reports = simulator.Simulate(spec, data_.dataset.users(), rng);
    if (reports.size() < 30) continue;

    event::ToretterOptions base;
    base.source = event::LocationSource::kProfileOnly;
    base.estimator = event::LocationEstimator::kWeightedCentroid;
    event::ToretterDetector plain(&db_, base);
    plain.set_profile_regions(&profiles);

    event::ToretterOptions weighted_options = base;
    weighted_options.reliability_weighted = true;
    event::ToretterDetector weighted(&db_, weighted_options);
    weighted.set_profile_regions(&profiles);
    weighted.set_reliability(&reliability);

    Rng rng_a(1), rng_b(1);
    auto a = plain.EstimateLocation(reports, rng_a);
    auto b = weighted.EstimateLocation(reports, rng_b);
    if (!a.ok() || !b.ok()) continue;
    unweighted_error += geo::HaversineKm(a->location, epicenter);
    weighted_error += geo::HaversineKm(b->location, epicenter);
    ++events;
  }
  ASSERT_GE(events, 3);
  // Weighted should not be worse on average (it removes relocated-user
  // noise); allow a small tolerance for sampling luck.
  EXPECT_LT(weighted_error, unweighted_error * 1.05)
      << "weighted " << weighted_error / events << " km vs unweighted "
      << unweighted_error / events << " km over " << events << " events";
}

TEST_F(IntegrationTest, LadyGagaDatasetShowsWeakerLocality) {
  const geo::AdminDb& world = geo::AdminDb::WorldCities();
  twitter::DatasetGenerator generator(
      &world, twitter::DatasetGenerator::LadyGagaConfig(0.3));
  twitter::GeneratedData gaga = generator.Generate();
  core::CorrelationStudy study(&world);
  core::StudyResult gaga_result = study.Run(gaga.dataset);
  ASSERT_GT(gaga_result.final_users, 100);

  double korean_top1 = result_.group(core::TopKGroup::kTop1).user_share;
  double gaga_top1 = gaga_result.group(core::TopKGroup::kTop1).user_share;
  double korean_none = result_.group(core::TopKGroup::kNone).user_share;
  double gaga_none = gaga_result.group(core::TopKGroup::kNone).user_share;
  EXPECT_LT(gaga_top1, korean_top1);
  EXPECT_GT(gaga_none, korean_none);
}

TEST_F(IntegrationTest, DatasetSurvivesTsvRoundTripWithIdenticalStudy) {
  std::string users_path = ::testing::TempDir() + "/stir_it_users.tsv";
  std::string tweets_path = ::testing::TempDir() + "/stir_it_tweets.tsv";
  ASSERT_TRUE(data_.dataset.SaveTsv(users_path, tweets_path).ok());
  auto loaded = twitter::Dataset::LoadTsv(users_path, tweets_path);
  ASSERT_TRUE(loaded.ok());
  core::CorrelationStudy study(&db_);
  core::StudyResult reloaded = study.Run(*loaded);
  EXPECT_EQ(reloaded.final_users, result_.final_users);
  for (int g = 0; g < core::kNumTopKGroups; ++g) {
    EXPECT_EQ(reloaded.groups[g].users, result_.groups[g].users) << g;
  }
  std::remove(users_path.c_str());
  std::remove(tweets_path.c_str());
}

}  // namespace
}  // namespace stir
