// Per-request deadlines and degraded-data serving (DESIGN.md §15):
// "deadline_ms" parse validation, the typed retryable deadline_exceeded
// envelope at batch dispatch, lazy serve.deadline.* metric registration
// (a deadline-free server's metric dump is byte-identical to a build
// without deadlines), the data_corrupt degraded mode, and the
// net-vs-scheduler reconciliation of expiry accounting.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/study.h"
#include "geo/admin_db.h"
#include "gtest/gtest.h"
#include "net/epoll_server.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "serve/study_index.h"
#include "twitter/generator.h"

namespace stir::serve {
namespace {

using geo::AdminDb;
using obs::JsonParse;
using obs::JsonValue;

class ServeDeadlineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const AdminDb& db = AdminDb::KoreanDistricts();
    twitter::DatasetGenerator generator(
        &db, twitter::DatasetGenerator::KoreanConfig(0.05));
    twitter::GeneratedData data = generator.Generate();
    core::CorrelationStudy study(&db);
    core::StudyResult result = study.Run(data.dataset);
    index_ = new StudyIndex(StudyIndex::Build(result, db));
    ASSERT_FALSE(index_->empty());
  }
  static void TearDownTestSuite() {
    delete index_;
    index_ = nullptr;
  }

  static std::string LookupLine(int64_t id, const std::string& extra = "") {
    return "{\"v\":1,\"id\":" + std::to_string(id) + extra +
           ",\"method\":\"lookup_user\",\"params\":{\"user\":" +
           std::to_string(index_->users()[0].user) + "}}";
  }

  static StudyIndex* index_;
};

StudyIndex* ServeDeadlineTest::index_ = nullptr;

std::string ResponseErrorCode(const std::string& response) {
  JsonValue root;
  if (!JsonParse(response, &root)) return "<unparseable>";
  const JsonValue* error = root.Find("error");
  if (error == nullptr) return "";
  return error->Find("code")->string;
}

bool ResponseOk(const std::string& response) {
  JsonValue root;
  if (!JsonParse(response, &root)) return false;
  const JsonValue* ok = root.Find("ok");
  return ok != nullptr && ok->kind == JsonValue::Kind::kBool && ok->boolean;
}

TEST_F(ServeDeadlineTest, DeadlineMsParseValidation) {
  ServeOptions options;
  options.workers = 1;
  RequestScheduler scheduler(index_, options);
  for (const char* bad :
       {",\"deadline_ms\":0", ",\"deadline_ms\":-5", ",\"deadline_ms\":2.5",
        ",\"deadline_ms\":\"soon\""}) {
    SCOPED_TRACE(bad);
    std::string response = scheduler.SubmitLine(LookupLine(1, bad)).get();
    EXPECT_EQ(ResponseErrorCode(response), "bad_request");
    EXPECT_NE(response.find("'deadline_ms' must be a positive integer"),
              std::string::npos);
  }
  // A valid budget is accepted and the request answers normally.
  std::string response =
      scheduler.SubmitLine(LookupLine(2, ",\"deadline_ms\":60000")).get();
  EXPECT_TRUE(ResponseOk(response)) << response;
  scheduler.Drain();
}

TEST_F(ServeDeadlineTest, ExpiredDeadlineYieldsTypedEnvelope) {
  ServeOptions options;
  options.workers = 1;
  // The single worker lingers 150 ms for a fuller batch, so a 1 ms
  // budget has deterministically expired by dispatch.
  options.batch_linger_us = 150'000;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  RequestScheduler scheduler(index_, options);

  std::promise<void> done;
  std::string response;
  ResponseMeta meta;
  scheduler.SubmitLineWith(LookupLine(7, ",\"deadline_ms\":1"),
                           [&](std::string r, const ResponseMeta& m) {
                             response = std::move(r);
                             meta = m;
                             done.set_value();
                           });
  done.get_future().wait();
  scheduler.Drain();

  EXPECT_EQ(ResponseErrorCode(response), "deadline_exceeded");
  EXPECT_NE(response.find("deadline expired before execution"),
            std::string::npos);
  EXPECT_TRUE(meta.deadline_expired);
  EXPECT_FALSE(meta.shed);
  EXPECT_EQ(scheduler.stats().deadline_exceeded, 1);
  // The expired request still counts as admitted — expiry happens at
  // dispatch, after admission — so the admission partition is untouched.
  EXPECT_EQ(scheduler.stats().admitted, 1);
  obs::MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.counter("serve.deadline.requests"), 1);
  EXPECT_EQ(snapshot.counter("serve.deadline.exceeded"), 1);
}

TEST_F(ServeDeadlineTest, DefaultDeadlineApplies) {
  ServeOptions options;
  options.workers = 1;
  options.batch_linger_us = 150'000;
  options.default_deadline_ms = 1;  // Server-side budget, eager metrics.
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  RequestScheduler scheduler(index_, options);
  // The request carries no deadline of its own; the server default makes
  // it expire all the same.
  std::string response = scheduler.SubmitLine(LookupLine(3)).get();
  scheduler.Drain();
  EXPECT_EQ(ResponseErrorCode(response), "deadline_exceeded");
  EXPECT_EQ(scheduler.stats().deadline_exceeded, 1);
  obs::MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.counter("serve.deadline.requests"), 1);
  EXPECT_EQ(snapshot.counter("serve.deadline.exceeded"), 1);
}

TEST_F(ServeDeadlineTest, GenerousDeadlineAnswersNormally) {
  ServeOptions options;
  options.workers = 2;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  RequestScheduler scheduler(index_, options);
  std::string response =
      scheduler.SubmitLine(LookupLine(4, ",\"deadline_ms\":60000")).get();
  scheduler.Drain();
  EXPECT_TRUE(ResponseOk(response)) << response;
  EXPECT_EQ(scheduler.stats().deadline_exceeded, 0);
  obs::MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.counter("serve.deadline.requests"), 1);
  EXPECT_EQ(snapshot.counter("serve.deadline.exceeded"), 0);
}

TEST_F(ServeDeadlineTest, NoDeadlineLeavesMetricsUnregistered) {
  // Lazy registration: without any deadline in play the serve.deadline.*
  // counters must not even exist, keeping the metric dump byte-identical
  // to a deadline-free build.
  ServeOptions options;
  options.workers = 2;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  RequestScheduler scheduler(index_, options);
  EXPECT_TRUE(ResponseOk(scheduler.SubmitLine(LookupLine(5)).get()));
  scheduler.Drain();
  EXPECT_EQ(metrics.Snapshot().ToJson().find("serve.deadline"),
            std::string::npos);
}

TEST_F(ServeDeadlineTest, DegradedDataAnswersDataCorrupt) {
  ServeOptions options;
  options.workers = 2;
  options.degraded_data = true;  // Backing corpus failed verification.
  RequestScheduler scheduler(index_, options);

  // Data-plane methods answer the typed retryable envelope...
  for (const std::string& line :
       {LookupLine(10),
        std::string("{\"v\":1,\"id\":11,\"method\":\"topk_summary\"}"),
        std::string("{\"v\":1,\"id\":12,\"method\":\"lookup_district\","
                    "\"params\":{\"state\":\"Seoul\","
                    "\"county\":\"Gangnam-gu\"}}")}) {
    SCOPED_TRACE(line);
    std::string response = scheduler.SubmitLine(line).get();
    EXPECT_EQ(ResponseErrorCode(response), "data_corrupt");
    EXPECT_NE(
        response.find("backing corpus failed verification; serving degraded"),
        std::string::npos);
  }
  // ...while the control plane keeps working for diagnosis.
  std::string info = scheduler
                         .SubmitLine("{\"v\":1,\"id\":13,"
                                     "\"method\":\"index_info\"}")
                         .get();
  EXPECT_TRUE(ResponseOk(info)) << info;
  std::string stats_response =
      scheduler
          .SubmitLine("{\"v\":1,\"id\":14,\"method\":\"server_stats\"}")
          .get();
  EXPECT_TRUE(ResponseOk(stats_response)) << stats_response;
  // server_stats surfaces the degraded rejections (key present only in
  // degraded mode).
  EXPECT_NE(stats_response.find("\"rejected_corrupt\":3"), std::string::npos);
  scheduler.Drain();

  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.rejected_corrupt, 3);
  EXPECT_EQ(stats.received, stats.admitted + stats.stats_served +
                                stats.parse_errors + stats.rejected_overload +
                                stats.rejected_shutdown +
                                stats.rejected_corrupt);
}

TEST_F(ServeDeadlineTest, NetStatsReconcileDeadlineExpiry) {
  // The epoll front end's per-connection accounting must agree with the
  // scheduler: every deadline_exceeded envelope it forwarded is counted
  // once in NetStats.deadline_expired.
  std::string payload;
  for (int i = 0; i < 3; ++i) {
    payload += LookupLine(20 + i, ",\"deadline_ms\":1");
    payload += '\n';
  }

  int in_pipe[2];
  int out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);

  ServeOptions options;
  options.workers = 1;
  options.batch_linger_us = 150'000;
  Server server(index_, options);
  net::EpollServer net(&server, net::NetOptions{});
  ASSERT_TRUE(net.AdoptStdio(in_pipe[0], out_pipe[1]).ok());

  std::thread feeder([&] {
    size_t sent = 0;
    while (sent < payload.size()) {
      ssize_t n = ::write(in_pipe[1], payload.data() + sent,
                          payload.size() - sent);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    ::close(in_pipe[1]);  // EOF ends the stdio session.
  });
  std::string received;
  std::thread reader([&] {
    char buf[4096];
    for (;;) {
      ssize_t n = ::read(out_pipe[0], buf, sizeof(buf));
      if (n <= 0) break;
      received.append(buf, static_cast<size_t>(n));
    }
  });

  net.Run();
  ::close(out_pipe[1]);
  feeder.join();
  reader.join();
  ::close(in_pipe[0]);
  ::close(out_pipe[0]);

  // All three responses came back (nothing dropped), and the front end's
  // expiry count matches the scheduler's exactly.
  int64_t responses = 0;
  for (char c : received) responses += c == '\n';
  EXPECT_EQ(responses, 3);
  const int64_t expired = net.stats().deadline_expired;
  EXPECT_GE(expired, 1);
  EXPECT_EQ(expired, server.scheduler().stats().deadline_exceeded);
}

}  // namespace
}  // namespace stir::serve
