// StreamEngine unit coverage: journal record round-trips, the epoch /
// generation bookkeeping, ingest validation and append atomicity,
// crash-resume from the stream journal (including mid-epoch tails and
// torn bytes), and the stream.* metrics surface. The differential
// batch-equivalence proof lives in stream_equivalence_test.cc.

#include "stream/engine.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/study.h"
#include "geo/admin_db.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/study_index.h"
#include "stream/stream_journal.h"
#include "twitter/generator.h"

namespace stir::stream {
namespace {

using geo::AdminDb;

class StreamEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = &AdminDb::KoreanDistricts();
    twitter::DatasetGenerator generator(
        db_, twitter::DatasetGenerator::KoreanConfig(0.01));
    data_ = new twitter::GeneratedData(generator.Generate());
    ASSERT_GT(data_->dataset.tweets().size(), 20u);
  }
  static void TearDownTestSuite() {
    delete data_;
    data_ = nullptr;
  }

  /// A fresh per-test scratch directory under the gtest temp root.
  static std::string ScratchDir(const std::string& name) {
    std::string dir = testing::TempDir() + "/stream_engine_" + name;
    std::filesystem::remove_all(dir);
    return dir;
  }

  static void AddAllUsers(StreamEngine* engine) {
    for (const twitter::User& user : data_->dataset.users()) {
      ASSERT_TRUE(engine->AddUser(user).ok());
    }
  }

  /// Ingests dataset tweets [first, last) with dataset-index fault keys.
  static void AddTweetRange(StreamEngine* engine, size_t first,
                            size_t last) {
    const std::vector<twitter::Tweet>& tweets = data_->dataset.tweets();
    for (size_t i = first; i < last && i < tweets.size(); ++i) {
      ASSERT_TRUE(
          engine->AddTweet(tweets[i], static_cast<int64_t>(i)).ok());
    }
  }

  /// Byte-compares two indexes through every user lookup + the summary.
  static void ExpectSameAnswers(const serve::StudyIndex& lhs,
                                const serve::StudyIndex& rhs) {
    ASSERT_EQ(lhs.user_count(), rhs.user_count());
    serve::Request topk;
    topk.id = 1;
    topk.method = serve::Method::kTopkSummary;
    EXPECT_EQ(serve::ExecuteOnIndex(lhs, topk),
              serve::ExecuteOnIndex(rhs, topk));
    for (const serve::UserEntry& entry : lhs.users()) {
      serve::Request request;
      request.id = 2;
      request.method = serve::Method::kLookupUser;
      request.user = entry.user;
      EXPECT_EQ(serve::ExecuteOnIndex(lhs, request),
                serve::ExecuteOnIndex(rhs, request));
      if (HasFailure()) return;
    }
  }

  static const AdminDb* db_;
  static twitter::GeneratedData* data_;
};

const AdminDb* StreamEngineTest::db_ = nullptr;
twitter::GeneratedData* StreamEngineTest::data_ = nullptr;

// ---------------------------------------------------------------------------
// Journal records

TEST(StreamJournalTest, UserRecordRoundTrips) {
  twitter::User user;
  user.id = 42;
  user.total_tweets = 7;
  user.handle = "mapo_dweller";
  user.profile_location = "Seoul Mapo-gu";
  StreamRecord record;
  ASSERT_TRUE(
      StreamJournal::DecodeRecord(StreamJournal::EncodeUser(user), &record));
  EXPECT_EQ(record.kind, StreamRecord::Kind::kUser);
  EXPECT_EQ(record.user.id, 42);
  EXPECT_EQ(record.user.total_tweets, 7);
  EXPECT_EQ(record.user.handle, "mapo_dweller");
  EXPECT_EQ(record.user.profile_location, "Seoul Mapo-gu");
}

TEST(StreamJournalTest, TweetRecordRoundTripsWithAndWithoutGps) {
  twitter::Tweet tweet;
  tweet.id = 9000;
  tweet.user = 42;
  tweet.time = 1234;
  tweet.text = "afternoon in 망원동";
  tweet.gps = geo::LatLng{37.5556, 126.9017};
  StreamRecord record;
  ASSERT_TRUE(StreamJournal::DecodeRecord(
      StreamJournal::EncodeTweet(tweet, /*fault_key=*/17), &record));
  EXPECT_EQ(record.kind, StreamRecord::Kind::kTweet);
  EXPECT_EQ(record.tweet.id, 9000);
  EXPECT_EQ(record.tweet.user, 42);
  EXPECT_EQ(record.tweet.time, 1234);
  EXPECT_EQ(record.fault_key, 17);
  ASSERT_TRUE(record.tweet.gps.has_value());
  EXPECT_DOUBLE_EQ(record.tweet.gps->lat, 37.5556);
  EXPECT_DOUBLE_EQ(record.tweet.gps->lng, 126.9017);
  EXPECT_EQ(record.tweet.text, tweet.text);

  tweet.gps.reset();
  ASSERT_TRUE(StreamJournal::DecodeRecord(
      StreamJournal::EncodeTweet(tweet, /*fault_key=*/-1), &record));
  EXPECT_FALSE(record.tweet.gps.has_value());
  EXPECT_EQ(record.fault_key, -1);
}

TEST(StreamJournalTest, EpochSealRoundTripsAndGarbageIsRejected) {
  StreamRecord record;
  ASSERT_TRUE(StreamJournal::DecodeRecord(
      StreamJournal::EncodeEpochSeal(12), &record));
  EXPECT_EQ(record.kind, StreamRecord::Kind::kEpochSeal);
  EXPECT_EQ(record.epoch, 12);

  // Truncated, trailing-garbage, and unknown-kind payloads all fail.
  std::string seal = StreamJournal::EncodeEpochSeal(12);
  EXPECT_FALSE(StreamJournal::DecodeRecord(
      std::string_view(seal).substr(0, seal.size() - 1), &record));
  EXPECT_FALSE(StreamJournal::DecodeRecord(seal + "x", &record));
  EXPECT_FALSE(StreamJournal::DecodeRecord("\xff\xff\xff\xff", &record));
  EXPECT_FALSE(StreamJournal::DecodeRecord("", &record));
}

// ---------------------------------------------------------------------------
// Engine basics

TEST_F(StreamEngineTest, StartsAtGenerationZeroWithAnEmptyIndex) {
  StreamEngine engine(db_, StudyConfig{}, StreamOptions{});
  ASSERT_TRUE(engine.Open().ok());
  EXPECT_EQ(engine.generation(), 0);
  EXPECT_EQ(engine.epochs_sealed(), 0);
  std::shared_ptr<const serve::StudyIndex> index = engine.CurrentIndex();
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->user_count(), 0u);
  // Sealing with nothing ingested is a no-op, not a new generation.
  EXPECT_EQ(engine.SealEpoch(), index);
  EXPECT_EQ(engine.generation(), 0);
}

TEST_F(StreamEngineTest, OpenTwiceIsRejected) {
  StreamEngine engine(db_, StudyConfig{}, StreamOptions{});
  ASSERT_TRUE(engine.Open().ok());
  EXPECT_FALSE(engine.Open().ok());
}

TEST_F(StreamEngineTest, ValidatesIngest) {
  StreamEngine engine(db_, StudyConfig{}, StreamOptions{});
  ASSERT_TRUE(engine.Open().ok());
  twitter::User user;
  user.id = 5;
  ASSERT_TRUE(engine.AddUser(user).ok());
  EXPECT_TRUE(engine.HasUser(5));
  EXPECT_FALSE(engine.AddUser(user).ok());  // Duplicate.
  user.id = -1;
  EXPECT_FALSE(engine.AddUser(user).ok());  // Negative.
  twitter::Tweet tweet;
  tweet.id = 1;
  tweet.user = 999;  // Unknown user.
  EXPECT_FALSE(engine.AddTweet(tweet).ok());
  tweet.user = 5;
  EXPECT_TRUE(engine.AddTweet(tweet).ok());
  EXPECT_EQ(engine.ingested_tweets(), 1);
}

TEST_F(StreamEngineTest, AppendIsAtomic) {
  StreamEngine engine(db_, StudyConfig{}, StreamOptions{});
  ASSERT_TRUE(engine.Open().ok());
  std::vector<twitter::User> users(1);
  users[0].id = 10;
  std::vector<twitter::Tweet> tweets(2);
  tweets[0].id = 100;
  tweets[0].user = 10;
  tweets[1].id = 101;
  tweets[1].user = 777;  // Unknown — poisons the whole batch.
  serve::AppendOutcome outcome = engine.Append(users, tweets);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.users_appended, 0);
  EXPECT_EQ(outcome.tweets_appended, 0);
  EXPECT_FALSE(engine.HasUser(10));
  EXPECT_EQ(engine.ingested_tweets(), 0);

  tweets[1].user = 10;
  outcome = engine.Append(users, tweets);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.users_appended, 1);
  EXPECT_EQ(outcome.tweets_appended, 2);
  EXPECT_EQ(outcome.pending_tweets, 2);
  EXPECT_EQ(outcome.epochs_sealed, 0);
}

TEST_F(StreamEngineTest, AutoSealCountsEveryTweetAgainstTheEpoch) {
  StreamOptions options;
  options.epoch_size = 4;
  StreamEngine engine(db_, StudyConfig{}, options);
  ASSERT_TRUE(engine.Open().ok());
  AddAllUsers(&engine);
  AddTweetRange(&engine, 0, 10);
  // 10 tweets at epoch 4: seals at 4 and 8, two pending.
  EXPECT_EQ(engine.epochs_sealed(), 2);
  EXPECT_EQ(engine.generation(), 2);
  EXPECT_EQ(engine.pending_tweets(), 2);
  engine.SealEpoch();
  EXPECT_EQ(engine.epochs_sealed(), 3);
  EXPECT_EQ(engine.pending_tweets(), 0);
}

TEST_F(StreamEngineTest, ExportsStreamMetrics) {
  obs::MetricsRegistry metrics;
  StudyConfig config;
  config.obs.metrics = &metrics;
  StreamOptions options;
  options.epoch_size = 4;
  {
    StreamEngine engine(db_, config, options);
    ASSERT_TRUE(engine.Open().ok());
    AddAllUsers(&engine);
    AddTweetRange(&engine, 0, 10);
    engine.SealEpoch();
    EXPECT_EQ(metrics.GetCounter("stream.epochs_sealed")->value(), 3);
    EXPECT_EQ(metrics.GetCounter("stream.ingested_users")->value(),
              static_cast<int64_t>(data_->dataset.users().size()));
    EXPECT_EQ(metrics.GetCounter("stream.ingested_tweets")->value(), 10);
    // Generations: the initial empty one plus three seals, all live or
    // retired; the engine itself still pins the latest.
    EXPECT_EQ(metrics.GetGauge("stream.generations_live")->value() +
                  metrics.GetCounter("stream.generations_retired")->value(),
              4);
  }
  // Engine destruction drops the last pin: everything retires.
  EXPECT_EQ(metrics.GetGauge("stream.generations_live")->value(), 0);
  EXPECT_EQ(metrics.GetCounter("stream.generations_retired")->value(), 4);
}

// ---------------------------------------------------------------------------
// Crash-resume

TEST_F(StreamEngineTest, ResumeContinuesMidEpochAtTheSameBoundaries) {
  std::string dir = ScratchDir("mid_epoch");
  StreamOptions options;
  options.epoch_size = 5;
  options.durable_dir = dir;

  // "Crash" after 7 tweets: one sealed epoch (5), two pending.
  {
    StreamEngine engine(db_, StudyConfig{}, options);
    ASSERT_TRUE(engine.Open().ok());
    AddAllUsers(&engine);
    AddTweetRange(&engine, 0, 7);
    EXPECT_EQ(engine.epochs_sealed(), 1);
    EXPECT_EQ(engine.pending_tweets(), 2);
  }

  // Resume replays the journal (1 marker + 2 pending tails) and the
  // remaining ingest auto-seals at the uninterrupted run's boundaries.
  options.resume = true;
  StreamEngine resumed(db_, StudyConfig{}, options);
  ASSERT_TRUE(resumed.Open().ok());
  EXPECT_EQ(resumed.epochs_sealed(), 1);
  EXPECT_EQ(resumed.generation(), 1);
  EXPECT_EQ(resumed.pending_tweets(), 2);
  EXPECT_EQ(resumed.ingested_tweets(), 7);
  AddTweetRange(&resumed, 7, 12);
  EXPECT_EQ(resumed.epochs_sealed(), 2);  // Sealed at tweet 10.
  resumed.SealEpoch();

  // Uninterrupted reference over the same 12 tweets.
  StreamOptions memory_only;
  memory_only.epoch_size = 5;
  StreamEngine reference(db_, StudyConfig{}, memory_only);
  ASSERT_TRUE(reference.Open().ok());
  AddAllUsers(&reference);
  AddTweetRange(&reference, 0, 12);
  reference.SealEpoch();
  EXPECT_EQ(resumed.epochs_sealed(), reference.epochs_sealed());
  EXPECT_EQ(resumed.generation(), reference.generation());
  ExpectSameAnswers(*resumed.CurrentIndex(), *reference.CurrentIndex());
}

TEST_F(StreamEngineTest, ResumeSurvivesATornTail) {
  std::string dir = ScratchDir("torn_tail");
  StreamOptions options;
  options.epoch_size = 3;
  options.durable_dir = dir;
  {
    StreamEngine engine(db_, StudyConfig{}, options);
    ASSERT_TRUE(engine.Open().ok());
    AddAllUsers(&engine);
    AddTweetRange(&engine, 0, 8);
  }
  // A crash mid-write tears the journal tail; replay must truncate it
  // and resume from the last intact record.
  {
    std::ofstream out(dir + "/stream.journal",
                      std::ios::binary | std::ios::app);
    out << "torn-frame-garbage";
  }
  options.resume = true;
  StreamEngine resumed(db_, StudyConfig{}, options);
  ASSERT_TRUE(resumed.Open().ok());
  EXPECT_EQ(resumed.ingested_tweets(), 8);
  EXPECT_EQ(resumed.epochs_sealed(), 2);
  EXPECT_EQ(resumed.pending_tweets(), 2);
  // And the journal is writable again: new ingest extends it.
  AddTweetRange(&resumed, 8, 9);
  EXPECT_EQ(resumed.epochs_sealed(), 3);
}

TEST_F(StreamEngineTest, FreshOpenTruncatesAnOldJournal) {
  std::string dir = ScratchDir("fresh");
  StreamOptions options;
  options.epoch_size = 3;
  options.durable_dir = dir;
  {
    StreamEngine engine(db_, StudyConfig{}, options);
    ASSERT_TRUE(engine.Open().ok());
    AddAllUsers(&engine);
    AddTweetRange(&engine, 0, 6);
  }
  // Without --resume the directory restarts from scratch.
  StreamEngine fresh(db_, StudyConfig{}, options);
  ASSERT_TRUE(fresh.Open().ok());
  EXPECT_EQ(fresh.ingested_tweets(), 0);
  EXPECT_EQ(fresh.generation(), 0);
}

}  // namespace
}  // namespace stir::stream
