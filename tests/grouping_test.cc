#include "core/grouping.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"

namespace stir::core {
namespace {

class GroupingTest : public ::testing::Test {
 protected:
  GroupingTest() : db_(geo::AdminDb::KoreanDistricts()) {}

  geo::RegionId Find(const std::string& state, const std::string& county) {
    auto id = db_.FindCounty(state, county);
    EXPECT_TRUE(id.ok()) << state << " " << county;
    return *id;
  }

  const geo::AdminDb& db_;
};

TEST_F(GroupingTest, GroupForRankMapping) {
  EXPECT_EQ(GroupForRank(1), TopKGroup::kTop1);
  EXPECT_EQ(GroupForRank(5), TopKGroup::kTop5);
  EXPECT_EQ(GroupForRank(6), TopKGroup::kTopPlus);
  EXPECT_EQ(GroupForRank(99), TopKGroup::kTopPlus);
  EXPECT_EQ(GroupForRank(-1), TopKGroup::kNone);
  EXPECT_EQ(GroupForRank(0), TopKGroup::kNone);
}

TEST_F(GroupingTest, GroupToStringNames) {
  EXPECT_STREQ(TopKGroupToString(TopKGroup::kTop1), "Top-1");
  EXPECT_STREQ(TopKGroupToString(TopKGroup::kTopPlus), "Top-6+");
  EXPECT_STREQ(TopKGroupToString(TopKGroup::kNone), "None");
}

TEST_F(GroupingTest, Top1UserLikePaperUser123) {
  // Profile Yangcheon-gu; 3 tweets there, 2 in Jung-gu, 1 in Seodaemun-gu.
  RefinedUser user;
  user.user = 123;
  user.profile_region = Find("Seoul", "Yangcheon-gu");
  geo::RegionId yangcheon = user.profile_region;
  geo::RegionId jung = Find("Seoul", "Jung-gu");
  geo::RegionId seodaemun = Find("Seoul", "Seodaemun-gu");
  user.tweet_regions = {yangcheon, jung, seodaemun, yangcheon, jung,
                        yangcheon};

  UserGrouping grouping = GroupUser(user, db_);
  EXPECT_EQ(grouping.match_rank, 1);
  EXPECT_EQ(grouping.group, TopKGroup::kTop1);
  EXPECT_EQ(grouping.gps_tweet_count, 6);
  EXPECT_EQ(grouping.matched_tweet_count, 3);
  EXPECT_EQ(grouping.distinct_tweet_locations(), 3);
}

TEST_F(GroupingTest, Top2UserLikePaperUser71) {
  // Profile Uiwang-si; 2 tweets there, 3 in Seongnam-si.
  RefinedUser user;
  user.user = 71;
  user.profile_region = Find("Gyeonggi-do", "Uiwang-si");
  geo::RegionId uiwang = user.profile_region;
  geo::RegionId seongnam = Find("Gyeonggi-do", "Seongnam-si");
  user.tweet_regions = {seongnam, uiwang, seongnam, uiwang, seongnam};

  UserGrouping grouping = GroupUser(user, db_);
  EXPECT_EQ(grouping.match_rank, 2);
  EXPECT_EQ(grouping.group, TopKGroup::kTop2);
  EXPECT_EQ(grouping.matched_tweet_count, 2);
}

TEST_F(GroupingTest, NoneUserHasNoMatchedString) {
  RefinedUser user;
  user.user = 9;
  user.profile_region = Find("Jeju-do", "Jeju-si");
  user.tweet_regions = {Find("Seoul", "Mapo-gu"), Find("Seoul", "Jung-gu")};
  UserGrouping grouping = GroupUser(user, db_);
  EXPECT_EQ(grouping.match_rank, -1);
  EXPECT_EQ(grouping.group, TopKGroup::kNone);
  EXPECT_EQ(grouping.matched_tweet_count, 0);
  EXPECT_EQ(grouping.distinct_tweet_locations(), 2);
}

TEST_F(GroupingTest, SameCountyNameDifferentStateIsNotAMatch) {
  // Profile Seoul Jung-gu; all tweets from Busan Jung-gu. The paper's
  // strings compare (state, county) pairs, so this must be None.
  RefinedUser user;
  user.user = 5;
  user.profile_region = Find("Seoul", "Jung-gu");
  user.tweet_regions = {Find("Busan", "Jung-gu"), Find("Busan", "Jung-gu")};
  UserGrouping grouping = GroupUser(user, db_);
  EXPECT_EQ(grouping.group, TopKGroup::kNone);
}

TEST_F(GroupingTest, TopPlusForDeepRank) {
  RefinedUser user;
  user.user = 6;
  user.profile_region = Find("Seoul", "Mapo-gu");
  // 6 other districts with 2 tweets each, profile district with 1.
  std::vector<std::string> counties = {"Jung-gu",    "Jongno-gu",
                                       "Yongsan-gu", "Seocho-gu",
                                       "Gangnam-gu", "Songpa-gu"};
  for (const std::string& county : counties) {
    geo::RegionId id = Find("Seoul", county);
    user.tweet_regions.push_back(id);
    user.tweet_regions.push_back(id);
  }
  user.tweet_regions.push_back(user.profile_region);
  UserGrouping grouping = GroupUser(user, db_);
  EXPECT_EQ(grouping.match_rank, 7);
  EXPECT_EQ(grouping.group, TopKGroup::kTopPlus);
}

TEST_F(GroupingTest, OrderedStringsDescendingCounts) {
  RefinedUser user;
  user.user = 7;
  user.profile_region = Find("Seoul", "Mapo-gu");
  user.tweet_regions = {
      Find("Seoul", "Jung-gu"),  Find("Seoul", "Jung-gu"),
      Find("Seoul", "Mapo-gu"),  Find("Seoul", "Jung-gu"),
      Find("Seoul", "Mapo-gu"),  Find("Seoul", "Jongno-gu"),
  };
  UserGrouping grouping = GroupUser(user, db_);
  ASSERT_EQ(grouping.ordered.size(), 3u);
  for (size_t i = 1; i < grouping.ordered.size(); ++i) {
    EXPECT_LE(grouping.ordered[i].count, grouping.ordered[i - 1].count);
  }
  EXPECT_EQ(grouping.match_rank, 2);
}

// Property sweep over random users: structural invariants of the
// text-based grouping hold for any tweet-region multiset.
class GroupingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GroupingPropertyTest, InvariantsHoldForRandomUsers) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    RefinedUser user;
    user.user = trial;
    user.profile_region = static_cast<geo::RegionId>(
        rng.UniformInt(0, static_cast<int64_t>(db.size()) - 1));
    int64_t tweets = rng.UniformInt(1, 60);
    std::set<geo::RegionId> distinct;
    bool profile_hit = false;
    for (int64_t t = 0; t < tweets; ++t) {
      // Cluster draws into few regions so merging actually merges.
      auto region = static_cast<geo::RegionId>(
          rng.UniformInt(0, 11) * 17 % static_cast<int64_t>(db.size()));
      user.tweet_regions.push_back(region);
      distinct.insert(region);
      profile_hit |= (region == user.profile_region);
    }

    UserGrouping grouping = GroupUser(user, db);
    // 1. Group is derived from the rank.
    EXPECT_EQ(grouping.group, GroupForRank(grouping.match_rank));
    // 2. Counts conserve the tweet multiset.
    int64_t total = 0;
    for (const auto& merged : grouping.ordered) total += merged.count;
    EXPECT_EQ(total, tweets);
    EXPECT_EQ(grouping.gps_tweet_count, tweets);
    // 3. Distinct districts equal the merged-list length.
    EXPECT_EQ(grouping.distinct_tweet_locations(),
              static_cast<int64_t>(distinct.size()));
    // 4. A matched string exists iff a tweet hit the profile district.
    EXPECT_EQ(grouping.match_rank > 0, profile_hit);
    if (grouping.match_rank > 0) {
      EXPECT_LE(grouping.match_rank,
                static_cast<int>(grouping.ordered.size()));
      EXPECT_TRUE(grouping
                      .ordered[static_cast<size_t>(grouping.match_rank - 1)]
                      .record.IsMatched());
      EXPECT_GT(grouping.matched_tweet_count, 0);
    } else {
      EXPECT_EQ(grouping.matched_tweet_count, 0);
    }
    // 5. Ordered counts are non-increasing.
    for (size_t i = 1; i < grouping.ordered.size(); ++i) {
      EXPECT_LE(grouping.ordered[i].count, grouping.ordered[i - 1].count);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupingPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u));

TEST_F(GroupingTest, GroupUsersProcessesAll) {
  RefinedUser a;
  a.user = 1;
  a.profile_region = Find("Seoul", "Mapo-gu");
  a.tweet_regions = {a.profile_region};
  RefinedUser b;
  b.user = 2;
  b.profile_region = Find("Busan", "Haeundae-gu");
  b.tweet_regions = {Find("Seoul", "Jung-gu")};
  auto groupings = GroupUsers({a, b}, db_);
  ASSERT_EQ(groupings.size(), 2u);
  EXPECT_EQ(groupings[0].group, TopKGroup::kTop1);
  EXPECT_EQ(groupings[1].group, TopKGroup::kNone);
}

}  // namespace
}  // namespace stir::core
