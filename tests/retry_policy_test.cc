// RetryPolicy: exact backoff schedule, deterministic jitter, and the
// retryable-status classification. CircuitBreaker: the closed -> open ->
// half-open state machine at its configured thresholds.

#include "common/retry.h"

#include <gtest/gtest.h>

#include "common/fault.h"
#include "geo/reverse_geocoder.h"

namespace stir::common {
namespace {

TEST(RetryPolicyTest, RetryableStatusClassificationIsExact) {
  // Transient transport-level failures are retryable...
  EXPECT_TRUE(RetryPolicy::IsRetryable(StatusCode::kUnavailable));
  EXPECT_TRUE(RetryPolicy::IsRetryable(StatusCode::kIOError));
  // ...everything else is not.
  EXPECT_FALSE(RetryPolicy::IsRetryable(StatusCode::kOk));
  EXPECT_FALSE(RetryPolicy::IsRetryable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(RetryPolicy::IsRetryable(StatusCode::kNotFound));
  EXPECT_FALSE(RetryPolicy::IsRetryable(StatusCode::kAlreadyExists));
  EXPECT_FALSE(RetryPolicy::IsRetryable(StatusCode::kOutOfRange));
  EXPECT_FALSE(RetryPolicy::IsRetryable(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(RetryPolicy::IsRetryable(StatusCode::kResourceExhausted));
  EXPECT_FALSE(RetryPolicy::IsRetryable(StatusCode::kInternal));
}

TEST(RetryPolicyTest, ShouldRetryHonoursAttemptBudget) {
  RetryPolicyOptions options;
  options.max_attempts = 3;
  RetryPolicy policy(options);
  Status transient = Status::Unavailable("down");
  EXPECT_TRUE(policy.ShouldRetry(transient, 1));
  EXPECT_TRUE(policy.ShouldRetry(transient, 2));
  EXPECT_FALSE(policy.ShouldRetry(transient, 3));  // budget spent
  EXPECT_FALSE(policy.ShouldRetry(Status::OK(), 1));
  EXPECT_FALSE(policy.ShouldRetry(Status::NotFound("no"), 1));
  EXPECT_FALSE(policy.ShouldRetry(Status::ResourceExhausted("quota"), 1));
}

TEST(RetryPolicyTest, ResourceExhaustedRetryIsOptIn) {
  RetryPolicyOptions options;
  options.retry_resource_exhausted = true;
  RetryPolicy policy(options);
  EXPECT_TRUE(policy.ShouldRetry(Status::ResourceExhausted("rate limit"), 1));
  EXPECT_FALSE(policy.ShouldRetry(Status::NotFound("still no"), 1));
}

TEST(RetryPolicyTest, BackoffSequenceIsExactWithoutJitter) {
  RetryPolicyOptions options;
  options.base_backoff_ms = 100;
  options.multiplier = 2.0;
  options.max_backoff_ms = 1500;
  options.jitter = 0.0;
  RetryPolicy policy(options);
  EXPECT_EQ(policy.BackoffMs(1), 100);
  EXPECT_EQ(policy.BackoffMs(2), 200);
  EXPECT_EQ(policy.BackoffMs(3), 400);
  EXPECT_EQ(policy.BackoffMs(4), 800);
  EXPECT_EQ(policy.BackoffMs(5), 1500);  // capped
  EXPECT_EQ(policy.BackoffMs(6), 1500);
}

TEST(RetryPolicyTest, JitterIsBoundedAndDeterministic) {
  RetryPolicyOptions options;
  options.base_backoff_ms = 1000;
  options.multiplier = 1.0;
  options.jitter = 0.5;
  options.seed = 11;
  RetryPolicy policy(options);
  bool saw_jitter = false;
  for (uint64_t key = 0; key < 200; ++key) {
    int64_t backoff = policy.BackoffMs(1, key);
    EXPECT_GE(backoff, 1000);
    EXPECT_LT(backoff, 1500);
    EXPECT_EQ(policy.BackoffMs(1, key), backoff);  // same key, same jitter
    saw_jitter |= backoff != 1000;
  }
  EXPECT_TRUE(saw_jitter);
  // A different seed draws a different jitter stream.
  options.seed = 12;
  RetryPolicy other(options);
  int differing = 0;
  for (uint64_t key = 0; key < 200; ++key) {
    differing += other.BackoffMs(1, key) != policy.BackoffMs(1, key);
  }
  EXPECT_GT(differing, 150);
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailureThreshold) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  CircuitBreaker breaker(options);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.times_opened(), 1);
}

TEST(CircuitBreakerTest, SuccessResetsTheConsecutiveCount) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  CircuitBreaker breaker(options);
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();  // streak broken
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreakerTest, HalfOpensAfterCooldownAndClosesOnSuccesses) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown_rejections = 4;
  options.success_threshold = 2;
  CircuitBreaker breaker(options);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  // Rejections 1..3 stay open; the 4th flips to half-open (probe next).
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_EQ(breaker.rejected(), 4);
  // Two probe successes close it.
  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenFailureReopensImmediately) {
  CircuitBreakerOptions options;
  options.failure_threshold = 2;
  options.cooldown_rejections = 1;
  CircuitBreaker breaker(options);
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());  // cooldown of 1 -> half-open
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordFailure();  // probe failed
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2);
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_STREQ(CircuitBreakerStateToString(CircuitBreaker::State::kClosed),
               "closed");
  EXPECT_STREQ(CircuitBreakerStateToString(CircuitBreaker::State::kOpen),
               "open");
  EXPECT_STREQ(CircuitBreakerStateToString(CircuitBreaker::State::kHalfOpen),
               "half-open");
}

// Breaker wired into the geocoder: a hard outage trips it open, rejected
// lookups are counted without touching the service, and it recovers once
// the outage window has passed.
TEST(CircuitBreakerTest, GeocoderTripsAndRecoversAcrossAnOutage) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  FaultInjectorOptions fault_options;
  fault_options.burst_start = 0;
  fault_options.burst_length = 10;  // indices 0..9 are a hard outage
  FaultInjector injector(fault_options);
  CircuitBreakerOptions breaker_options;
  breaker_options.failure_threshold = 3;
  breaker_options.cooldown_rejections = 2;
  breaker_options.success_threshold = 1;
  CircuitBreaker breaker(breaker_options);

  geo::ReverseGeocoderOptions options;
  options.fault_injector = &injector;
  options.circuit_breaker = &breaker;
  options.retry.max_attempts = 1;  // isolate the breaker behaviour
  geo::ReverseGeocoder geocoder(&db, options);

  Rng rng(5);
  geo::LatLng point = db.SamplePointIn(0, rng);
  int64_t queries_before = geocoder.num_queries();
  // Outage: 3 real failures trip the breaker; later lookups are rejected
  // without reaching the injector/service.
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_FALSE(geocoder.Reverse(point, i).ok());
  }
  EXPECT_GT(geocoder.num_breaker_rejections(), 0);
  EXPECT_EQ(geocoder.num_queries(), queries_before);  // never reached it
  // Past the outage the breaker half-opens and the first good probe
  // closes it again.
  bool recovered = false;
  for (int64_t i = 10; i < 20; ++i) {
    recovered |= geocoder.Reverse(point, i).ok();
  }
  EXPECT_TRUE(recovered);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

}  // namespace
}  // namespace stir::common
