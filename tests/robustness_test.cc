// Robustness and failure-injection tests: random-input fuzzing of the
// parsers and quota/failure paths through the pipeline. Everything is
// seeded, so failures reproduce.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/fault.h"
#include "common/random.h"
#include "common/xml.h"
#include "core/refinement.h"
#include "core/study.h"
#include "geo/reverse_geocoder.h"
#include "text/location_parser.h"
#include "twitter/generator.h"

namespace stir {
namespace {

std::string RandomBytes(Rng& rng, int max_len) {
  int len = static_cast<int>(rng.UniformInt(0, max_len));
  std::string s;
  s.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.UniformInt(1, 255)));
  }
  return s;
}

std::string RandomPrintable(Rng& rng, int max_len) {
  static const char* kAlphabet =
      "abcdefghijklmnopqrstuvwxyz-., /#0123456789<>&\"'";
  int len = static_cast<int>(rng.UniformInt(0, max_len));
  std::string s;
  for (int i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng.UniformInt(0, 47)]);
  }
  return s;
}

TEST(FuzzTest, LocationParserNeverMisbehavesOnRandomBytes) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  text::LocationParser parser(&db);
  Rng rng(101);
  for (int i = 0; i < 3000; ++i) {
    std::string input =
        i % 2 == 0 ? RandomBytes(rng, 60) : RandomPrintable(rng, 60);
    text::ParsedLocation parsed = parser.Parse(input);
    // Quality is always a valid enum member; a well-defined result must
    // carry a valid region.
    int q = static_cast<int>(parsed.quality);
    EXPECT_GE(q, 0);
    EXPECT_LE(q, 4);
    if (parsed.quality == text::LocationQuality::kWellDefined) {
      EXPECT_GE(parsed.region, 0);
      EXPECT_LT(static_cast<size_t>(parsed.region), db.size());
    }
    if (parsed.quality == text::LocationQuality::kAmbiguous) {
      EXPECT_GE(parsed.candidates.size(), 2u);
    }
  }
}

TEST(FuzzTest, XmlParserNeverCrashesOnGarbage) {
  Rng rng(102);
  int parsed_ok = 0;
  for (int i = 0; i < 3000; ++i) {
    std::string input = RandomPrintable(rng, 80);
    auto result = ParseXml(input);
    parsed_ok += result.ok();
    // ok or clean error; never UB (ASAN-checked in CI-style runs).
  }
  // Random printable strings essentially never form valid XML.
  EXPECT_LT(parsed_ok, 10);
}

TEST(FuzzTest, XmlRandomTreesRoundTrip) {
  Rng rng(103);
  for (int trial = 0; trial < 150; ++trial) {
    // Random tree: up to depth 3, random names/attrs/texts.
    auto name = [&] {
      std::string n = "e";
      for (int i = 0; i < 3; ++i) {
        n.push_back(static_cast<char>('a' + rng.UniformInt(0, 25)));
      }
      return n;
    };
    XmlNode root(name());
    std::vector<XmlNode*> frontier = {&root};
    int nodes = static_cast<int>(rng.UniformInt(1, 12));
    for (int i = 0; i < nodes; ++i) {
      XmlNode* parent = frontier[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(frontier.size()) - 1))];
      XmlNode& child = parent->AddChild(name());
      if (rng.Bernoulli(0.5)) {
        child.AddAttribute(name(), RandomPrintable(rng, 12));
      }
      if (rng.Bernoulli(0.5)) {
        // The parser trims surrounding whitespace from text content, so
        // generate pre-trimmed text for an exact round-trip.
        std::string text = RandomPrintable(rng, 20);
        size_t begin = text.find_first_not_of(' ');
        if (begin == std::string::npos) {
          text.clear();
        } else {
          text = text.substr(begin, text.find_last_not_of(' ') - begin + 1);
        }
        child.set_text(text);
      }
      frontier.push_back(&child);
    }
    auto reparsed = ParseXml(root.ToString());
    ASSERT_TRUE(reparsed.ok()) << root.ToString();
    EXPECT_EQ((*reparsed)->ToString(), root.ToString());
  }
}

TEST(FuzzTest, CsvRandomRowsRoundTrip) {
  Rng rng(104);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::string> fields;
    int n = static_cast<int>(rng.UniformInt(1, 8));
    for (int i = 0; i < n; ++i) {
      std::string f = RandomPrintable(rng, 20);
      // Embedded newlines are out of contract for single-row parsing.
      for (char& c : f) {
        if (c == '\n' || c == '\r') c = ' ';
      }
      fields.push_back(f);
    }
    auto parsed = ParseCsvRow(FormatCsvRow(fields));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, fields);
  }
}

TEST(FailureInjectionTest, QuotaLimitedGeocoderDegradesGracefully) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  twitter::DatasetGenerator generator(
      &db, twitter::DatasetGenerator::KoreanConfig(0.05));
  twitter::GeneratedData data = generator.Generate();

  // Unlimited baseline.
  core::CorrelationStudy full_study(&db);
  core::StudyResult full = full_study.Run(data.dataset);
  ASSERT_GT(full.final_users, 10);

  // A quota far below the number of distinct GPS cells: the pipeline
  // must complete, count the failures, and keep a subset of users.
  StudyConfig starved_options;
  starved_options.geocoder.quota = 200;
  core::CorrelationStudy starved_study(&db, starved_options);
  core::StudyResult starved = starved_study.Run(data.dataset);
  EXPECT_GT(starved.funnel.geocode_failures, 0);
  EXPECT_LE(starved.final_users, full.final_users);
  EXPECT_GT(starved.final_users, 0);  // cache still serves repeat cells
  // The well-defined gate is text-only and unaffected by the quota.
  EXPECT_EQ(starved.funnel.well_defined_users,
            full.funnel.well_defined_users);
}

TEST(FailureInjectionTest, StudyOnGpsFreeCorpusYieldsEmptySample) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  auto config = twitter::DatasetGenerator::KoreanConfig(0.02);
  config.geotagger_fraction = 0.0;  // nobody ever geotags
  twitter::DatasetGenerator generator(&db, config);
  twitter::GeneratedData data = generator.Generate();
  EXPECT_EQ(data.dataset.gps_tweet_count(), 0);
  core::CorrelationStudy study(&db);
  core::StudyResult result = study.Run(data.dataset);
  EXPECT_EQ(result.final_users, 0);
  EXPECT_GT(result.funnel.well_defined_users, 0);
}

TEST(FailureInjectionTest, ParserRejectsOverlongGarbageFast) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  text::LocationParser parser(&db);
  // Pathological input: very long token runs must not blow up the
  // phrase matcher (greedy scan is bounded by max phrase length).
  std::string long_input;
  for (int i = 0; i < 2000; ++i) long_input += "word ";
  text::ParsedLocation parsed = parser.Parse(long_input);
  EXPECT_EQ(parsed.quality, text::LocationQuality::kVague);
}

// End-to-end faulty run through the refinement pipeline with an external
// injector: every injected fault must be accounted for exactly — either
// retried past or terminal, with degradation a subset of the terminal
// ones — and the funnel's fault counters must agree with the geocoder's.
TEST(FailureInjectionTest, FunnelCountersSumExactlyToInjectedFaults) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  twitter::DatasetGenerator generator(
      &db, twitter::DatasetGenerator::KoreanConfig(0.05));
  twitter::GeneratedData data = generator.Generate();

  common::FaultInjectorOptions fault_options;
  fault_options.error_rate = 0.2;
  fault_options.seed = 7;
  common::FaultInjector injector(fault_options);

  geo::ReverseGeocoderOptions geocoder_options;
  geocoder_options.fault_injector = &injector;
  geocoder_options.retry.max_attempts = 2;
  geo::ReverseGeocoder geocoder(&db, geocoder_options);
  text::LocationParser parser(&db);
  core::RefinementPipeline pipeline(&parser, &geocoder);

  core::FunnelStats funnel;
  std::vector<core::RefinedUser> refined = pipeline.Run(data.dataset, &funnel);
  EXPECT_FALSE(refined.empty());
  EXPECT_TRUE(funnel.fault_injection_enabled);

  // The run actually exercised the fault layer.
  EXPECT_GT(injector.faults_injected(), 0);
  EXPECT_GT(funnel.geocode_faulted, 0);
  EXPECT_GT(funnel.geocode_retried, 0);

  // Exactness: every injected fault was either retried past or terminal.
  EXPECT_EQ(injector.faults_injected(),
            funnel.geocode_retried + funnel.geocode_faulted);
  // The funnel's fault counters are the geocoder's, verbatim.
  EXPECT_EQ(funnel.geocode_retried, geocoder.num_retries());
  EXPECT_EQ(funnel.geocode_faulted, geocoder.num_faulted());
  EXPECT_EQ(funnel.backoff_ms, geocoder.simulated_backoff_ms());
  // Degradation only ever salvages terminally-faulted lookups.
  EXPECT_LE(funnel.geocode_degraded, funnel.geocode_faulted);
}

std::string ReadWholeFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Checked-in corpus of malformed/truncated/garbled geocode responses:
// ParseResponse must return a Status for every one, never crash, and
// still parse the known-good document.
TEST(FuzzTest, GeocodeResponseCorpusAlwaysYieldsAStatus) {
  const std::filesystem::path dir =
      std::filesystem::path(STIR_TEST_DATA_DIR) / "geocode_responses";
  ASSERT_TRUE(std::filesystem::is_directory(dir));
  int files = 0;
  int parsed_ok = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    ++files;
    SCOPED_TRACE(entry.path().filename().string());
    std::string content = ReadWholeFile(entry.path());
    auto result = geo::ReverseGeocoder::ParseResponse(content);
    if (result.ok()) {
      ++parsed_ok;
      EXPECT_FALSE(result->state.empty());
      EXPECT_FALSE(result->county.empty());
    }
  }
  EXPECT_GE(files, 10);
  // Almost all of the corpus is structurally broken and must be rejected
  // (the XML parser is lenient about unknown entities, so the garbled-
  // entity document legally parses with the entities passed through).
  EXPECT_GE(files - parsed_ok, 8);
  auto valid = geo::ReverseGeocoder::ParseResponse(
      ReadWholeFile(dir / "valid.xml"));
  ASSERT_TRUE(valid.ok());
  EXPECT_EQ(valid->state, "Seoul");
  EXPECT_EQ(valid->county, "Mapo-gu");
  EXPECT_EQ(valid->country, "South Korea");
}

// Property test: every truncation prefix and thousands of seeded random
// byte mutations of a valid response must come back as a Status — ok or
// error — without crashing (ASAN-checked in sanitizer runs).
TEST(FuzzTest, GeocodeResponseTruncationsAndMutationsNeverCrash) {
  const std::string valid = ReadWholeFile(
      std::filesystem::path(STIR_TEST_DATA_DIR) / "geocode_responses" /
      "valid.xml");
  ASSERT_TRUE(geo::ReverseGeocoder::ParseResponse(valid).ok());

  // Every prefix, byte by byte. Only prefixes that still contain the
  // whole document body (i.e. cut nothing but trailing whitespace) may
  // parse; anything shorter must be rejected.
  const size_t body_end = valid.rfind('>') + 1;
  for (size_t len = 0; len < valid.size(); ++len) {
    auto result = geo::ReverseGeocoder::ParseResponse(
        std::string_view(valid).substr(0, len));
    if (len < body_end) {
      EXPECT_FALSE(result.ok()) << "prefix length " << len;
    }
  }

  // Seeded random mutations: flip 1..8 bytes to arbitrary values.
  Rng rng(105);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated = valid;
    int flips = static_cast<int>(rng.UniformInt(1, 8));
    for (int f = 0; f < flips; ++f) {
      size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.UniformInt(0, 255));
    }
    auto result = geo::ReverseGeocoder::ParseResponse(mutated);
    if (result.ok()) {
      // A surviving parse must still satisfy the parser's contract.
      EXPECT_FALSE(result->state.empty());
      EXPECT_FALSE(result->county.empty());
    }
  }
}

}  // namespace
}  // namespace stir
