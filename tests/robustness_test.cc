// Robustness and failure-injection tests: random-input fuzzing of the
// parsers and quota/failure paths through the pipeline. Everything is
// seeded, so failures reproduce.

#include <gtest/gtest.h>

#include <string>

#include "common/csv.h"
#include "common/random.h"
#include "common/xml.h"
#include "core/study.h"
#include "geo/reverse_geocoder.h"
#include "text/location_parser.h"
#include "twitter/generator.h"

namespace stir {
namespace {

std::string RandomBytes(Rng& rng, int max_len) {
  int len = static_cast<int>(rng.UniformInt(0, max_len));
  std::string s;
  s.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.UniformInt(1, 255)));
  }
  return s;
}

std::string RandomPrintable(Rng& rng, int max_len) {
  static const char* kAlphabet =
      "abcdefghijklmnopqrstuvwxyz-., /#0123456789<>&\"'";
  int len = static_cast<int>(rng.UniformInt(0, max_len));
  std::string s;
  for (int i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng.UniformInt(0, 47)]);
  }
  return s;
}

TEST(FuzzTest, LocationParserNeverMisbehavesOnRandomBytes) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  text::LocationParser parser(&db);
  Rng rng(101);
  for (int i = 0; i < 3000; ++i) {
    std::string input =
        i % 2 == 0 ? RandomBytes(rng, 60) : RandomPrintable(rng, 60);
    text::ParsedLocation parsed = parser.Parse(input);
    // Quality is always a valid enum member; a well-defined result must
    // carry a valid region.
    int q = static_cast<int>(parsed.quality);
    EXPECT_GE(q, 0);
    EXPECT_LE(q, 4);
    if (parsed.quality == text::LocationQuality::kWellDefined) {
      EXPECT_GE(parsed.region, 0);
      EXPECT_LT(static_cast<size_t>(parsed.region), db.size());
    }
    if (parsed.quality == text::LocationQuality::kAmbiguous) {
      EXPECT_GE(parsed.candidates.size(), 2u);
    }
  }
}

TEST(FuzzTest, XmlParserNeverCrashesOnGarbage) {
  Rng rng(102);
  int parsed_ok = 0;
  for (int i = 0; i < 3000; ++i) {
    std::string input = RandomPrintable(rng, 80);
    auto result = ParseXml(input);
    parsed_ok += result.ok();
    // ok or clean error; never UB (ASAN-checked in CI-style runs).
  }
  // Random printable strings essentially never form valid XML.
  EXPECT_LT(parsed_ok, 10);
}

TEST(FuzzTest, XmlRandomTreesRoundTrip) {
  Rng rng(103);
  for (int trial = 0; trial < 150; ++trial) {
    // Random tree: up to depth 3, random names/attrs/texts.
    auto name = [&] {
      std::string n = "e";
      for (int i = 0; i < 3; ++i) {
        n.push_back(static_cast<char>('a' + rng.UniformInt(0, 25)));
      }
      return n;
    };
    XmlNode root(name());
    std::vector<XmlNode*> frontier = {&root};
    int nodes = static_cast<int>(rng.UniformInt(1, 12));
    for (int i = 0; i < nodes; ++i) {
      XmlNode* parent = frontier[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(frontier.size()) - 1))];
      XmlNode& child = parent->AddChild(name());
      if (rng.Bernoulli(0.5)) {
        child.AddAttribute(name(), RandomPrintable(rng, 12));
      }
      if (rng.Bernoulli(0.5)) {
        // The parser trims surrounding whitespace from text content, so
        // generate pre-trimmed text for an exact round-trip.
        std::string text = RandomPrintable(rng, 20);
        size_t begin = text.find_first_not_of(' ');
        if (begin == std::string::npos) {
          text.clear();
        } else {
          text = text.substr(begin, text.find_last_not_of(' ') - begin + 1);
        }
        child.set_text(text);
      }
      frontier.push_back(&child);
    }
    auto reparsed = ParseXml(root.ToString());
    ASSERT_TRUE(reparsed.ok()) << root.ToString();
    EXPECT_EQ((*reparsed)->ToString(), root.ToString());
  }
}

TEST(FuzzTest, CsvRandomRowsRoundTrip) {
  Rng rng(104);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::string> fields;
    int n = static_cast<int>(rng.UniformInt(1, 8));
    for (int i = 0; i < n; ++i) {
      std::string f = RandomPrintable(rng, 20);
      // Embedded newlines are out of contract for single-row parsing.
      for (char& c : f) {
        if (c == '\n' || c == '\r') c = ' ';
      }
      fields.push_back(f);
    }
    auto parsed = ParseCsvRow(FormatCsvRow(fields));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, fields);
  }
}

TEST(FailureInjectionTest, QuotaLimitedGeocoderDegradesGracefully) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  twitter::DatasetGenerator generator(
      &db, twitter::DatasetGenerator::KoreanConfig(0.05));
  twitter::GeneratedData data = generator.Generate();

  // Unlimited baseline.
  core::CorrelationStudy full_study(&db);
  core::StudyResult full = full_study.Run(data.dataset);
  ASSERT_GT(full.final_users, 10);

  // A quota far below the number of distinct GPS cells: the pipeline
  // must complete, count the failures, and keep a subset of users.
  core::CorrelationStudyOptions starved_options;
  starved_options.geocoder.quota = 200;
  core::CorrelationStudy starved_study(&db, starved_options);
  core::StudyResult starved = starved_study.Run(data.dataset);
  EXPECT_GT(starved.funnel.geocode_failures, 0);
  EXPECT_LE(starved.final_users, full.final_users);
  EXPECT_GT(starved.final_users, 0);  // cache still serves repeat cells
  // The well-defined gate is text-only and unaffected by the quota.
  EXPECT_EQ(starved.funnel.well_defined_users,
            full.funnel.well_defined_users);
}

TEST(FailureInjectionTest, StudyOnGpsFreeCorpusYieldsEmptySample) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  auto config = twitter::DatasetGenerator::KoreanConfig(0.02);
  config.geotagger_fraction = 0.0;  // nobody ever geotags
  twitter::DatasetGenerator generator(&db, config);
  twitter::GeneratedData data = generator.Generate();
  EXPECT_EQ(data.dataset.gps_tweet_count(), 0);
  core::CorrelationStudy study(&db);
  core::StudyResult result = study.Run(data.dataset);
  EXPECT_EQ(result.final_users, 0);
  EXPECT_GT(result.funnel.well_defined_users, 0);
}

TEST(FailureInjectionTest, ParserRejectsOverlongGarbageFast) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  text::LocationParser parser(&db);
  // Pathological input: very long token runs must not blow up the
  // phrase matcher (greedy scan is bounded by max phrase length).
  std::string long_input;
  for (int i = 0; i < 2000; ++i) long_input += "word ";
  text::ParsedLocation parsed = parser.Parse(long_input);
  EXPECT_EQ(parsed.quality, text::LocationQuality::kVague);
}

}  // namespace
}  // namespace stir
