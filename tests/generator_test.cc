#include "twitter/generator.h"

#include <gtest/gtest.h>

namespace stir::twitter {
namespace {

TEST(GeneratorTest, DeterministicForSeed) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  auto config = DatasetGenerator::KoreanConfig(0.01);
  GeneratedData a = DatasetGenerator(&db, config).Generate();
  GeneratedData b = DatasetGenerator(&db, config).Generate();
  ASSERT_EQ(a.dataset.users().size(), b.dataset.users().size());
  ASSERT_EQ(a.dataset.tweets().size(), b.dataset.tweets().size());
  for (size_t i = 0; i < a.dataset.users().size(); ++i) {
    EXPECT_EQ(a.dataset.users()[i].profile_location,
              b.dataset.users()[i].profile_location);
    EXPECT_EQ(a.dataset.users()[i].total_tweets,
              b.dataset.users()[i].total_tweets);
  }
  for (size_t i = 0; i < a.dataset.tweets().size(); ++i) {
    EXPECT_EQ(a.dataset.tweets()[i].time, b.dataset.tweets()[i].time);
    EXPECT_EQ(a.dataset.tweets()[i].gps.has_value(),
              b.dataset.tweets()[i].gps.has_value());
  }
}

TEST(GeneratorTest, UserCountMatchesConfig) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  auto config = DatasetGenerator::KoreanConfig(0.02);
  GeneratedData data = DatasetGenerator(&db, config).Generate();
  EXPECT_EQ(static_cast<int64_t>(data.dataset.users().size()),
            config.num_users);
  EXPECT_EQ(data.truth.mobility.size(), data.dataset.users().size());
  EXPECT_EQ(data.truth.profile_style.size(), data.dataset.users().size());
  EXPECT_GT(data.crawl_requests, 0);
}

TEST(GeneratorTest, EveryTweetBelongsToAKnownUserAndWindow) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  auto config = DatasetGenerator::KoreanConfig(0.01);
  GeneratedData data = DatasetGenerator(&db, config).Generate();
  SimTime horizon = config.start_time +
                    config.duration_days * kSecondsPerDay;
  for (const Tweet& tweet : data.dataset.tweets()) {
    EXPECT_NE(data.dataset.FindUser(tweet.user), nullptr);
    EXPECT_GE(tweet.time, config.start_time);
    EXPECT_LT(tweet.time, horizon);
    if (tweet.gps.has_value()) {
      EXPECT_TRUE(tweet.gps->IsValid());
      EXPECT_TRUE(db.Locate(*tweet.gps).ok());
    }
  }
}

TEST(GeneratorTest, GpsTweetsComeOnlyFromGeotaggers) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  auto config = DatasetGenerator::KoreanConfig(0.02);
  GeneratedData data = DatasetGenerator(&db, config).Generate();
  for (const Tweet& tweet : data.dataset.tweets()) {
    if (!tweet.gps.has_value()) continue;
    const MobilityProfile& truth = data.truth.mobility.at(tweet.user);
    EXPECT_GT(truth.geotag_rate, 0.0);
  }
}

TEST(GeneratorTest, GpsTweetRegionsAreActivitySpots) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  auto config = DatasetGenerator::KoreanConfig(0.01);
  GeneratedData data = DatasetGenerator(&db, config).Generate();
  for (const Tweet& tweet : data.dataset.tweets()) {
    if (!tweet.gps.has_value()) continue;
    auto located = db.Locate(*tweet.gps);
    ASSERT_TRUE(located.ok());
    const MobilityProfile& truth = data.truth.mobility.at(tweet.user);
    bool is_spot = false;
    for (const ActivitySpot& spot : truth.spots) {
      is_spot |= (spot.region == *located);
    }
    EXPECT_TRUE(is_spot) << "tweet region not an activity spot";
  }
}

TEST(GeneratorTest, TweetCountsPlausible) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  auto config = DatasetGenerator::KoreanConfig(0.05);
  GeneratedData data = DatasetGenerator(&db, config).Generate();
  int64_t total = data.dataset.total_tweet_count();
  // ~213 tweets/user at the paper's ratio (11.14M / 52.2k); wide band.
  double per_user =
      static_cast<double>(total) /
      static_cast<double>(data.dataset.users().size());
  EXPECT_GT(per_user, 120.0);
  EXPECT_LT(per_user, 350.0);
  for (const User& user : data.dataset.users()) {
    EXPECT_GE(user.total_tweets, 1);
    EXPECT_LE(user.total_tweets, config.max_tweets_per_user);
  }
  // GPS share ~0.2-0.4% of the corpus.
  double gps_share = static_cast<double>(data.dataset.gps_tweet_count()) /
                     static_cast<double>(total);
  EXPECT_GT(gps_share, 0.0005);
  EXPECT_LT(gps_share, 0.01);
}

TEST(GeneratorTest, LadyGagaConfigIsTopical) {
  const geo::AdminDb& world = geo::AdminDb::WorldCities();
  auto config = DatasetGenerator::LadyGagaConfig(0.05);
  GeneratedData data = DatasetGenerator(&world, config).Generate();
  EXPECT_EQ(data.crawl_requests, 0);  // Search API, not a crawl
  ASSERT_GT(data.dataset.tweets().size(), 0u);
  for (const Tweet& tweet : data.dataset.tweets()) {
    EXPECT_NE(tweet.text.find("lady gaga"), std::string::npos);
  }
}

TEST(GeneratorTest, DiurnalCycleHasEveningPeakAndNightTrough) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  auto config = DatasetGenerator::KoreanConfig(0.02);
  config.plain_tweet_sample = 0.01;  // denser sample for the histogram
  GeneratedData data = DatasetGenerator(&db, config).Generate();
  int64_t evening = 0, night = 0;
  for (const Tweet& tweet : data.dataset.tweets()) {
    int hour = HourOfDay(tweet.time);
    if (hour >= 18 && hour <= 22) ++evening;
    if (hour >= 2 && hour <= 5) ++night;
  }
  EXPECT_GT(evening, night * 3);
}

}  // namespace
}  // namespace stir::twitter
