// io::FaultFs — the seeded storage fault layer (DESIGN.md §15) — driven
// through the write-ahead journal, its first hardened caller. The tests
// pin down the layer's two contracts: recovered fault classes (short
// writes, EINTR) leave the on-disk bytes identical to a fault-free run,
// and surfaced classes (EIO, ENOSPC, fsync failure) come back as typed
// Statuses with a clean, resumable valid prefix on disk. Plus the
// accounting invariant every run must balance:
//     injected == recovered + surfaced + quarantined.

#include "io/fault_fs.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "io/journal.h"

namespace stir::io {
namespace {

constexpr std::string_view kMagic = "FAULTJN1";

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::vector<std::string> Records(int n) {
  std::vector<std::string> records;
  records.reserve(n);
  for (int i = 0; i < n; ++i) {
    records.push_back("record-" + std::to_string(i) +
                      std::string(static_cast<size_t>(i % 7), 'x'));
  }
  return records;
}

std::vector<std::string> Replay(const std::string& path,
                                JournalReplayStats* stats = nullptr) {
  std::vector<std::string> payloads;
  auto result = ReplayJournal(path, kMagic, [&](std::string_view payload) {
    payloads.emplace_back(payload);
  });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok() && stats != nullptr) *stats = *result;
  return payloads;
}

/// The layer is process-wide, so every test leaves it off.
class FaultFsTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultFs::Instance().Reset(); }
  void TearDown() override { FaultFs::Instance().Reset(); }
};

TEST_F(FaultFsTest, DisabledLayerIsPassThrough) {
  EXPECT_FALSE(FaultFs::Instance().enabled());
  const std::string path = TempPath("fault_fs_off.journal");
  JournalWriter writer;
  ASSERT_TRUE(writer.OpenFresh(path, kMagic).ok());
  for (const std::string& record : Records(8)) {
    ASSERT_TRUE(writer.Append(record).ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  EXPECT_EQ(Replay(path).size(), 8u);
  const FaultFsStats stats = FaultFs::Instance().stats();
  EXPECT_EQ(stats.injected, 0);
  EXPECT_EQ(stats.recovered, 0);
  EXPECT_EQ(stats.surfaced, 0);
  EXPECT_EQ(stats.quarantined, 0);
  std::filesystem::remove(path);
}

TEST_F(FaultFsTest, RecoveredClassesLeaveBytesIdentical) {
  // Fault-free reference file.
  const std::string clean_path = TempPath("fault_fs_clean.journal");
  {
    JournalWriter writer;
    ASSERT_TRUE(writer.OpenFresh(clean_path, kMagic).ok());
    for (const std::string& record : Records(64)) {
      ASSERT_TRUE(writer.Append(record).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
  }

  // Same appends under a heavy always-recovered schedule: every fault is
  // absorbed by the writer's retry loop, no Status ever escapes, and the
  // resulting bytes are identical.
  FaultFsOptions options;
  options.seed = 7;
  options.short_write_rate = 0.4;
  options.eintr_rate = 0.4;
  FaultFs::Instance().Configure(options);
  const std::string faulty_path = TempPath("fault_fs_faulty.journal");
  {
    JournalWriter writer;
    ASSERT_TRUE(writer.OpenFresh(faulty_path, kMagic).ok());
    for (const std::string& record : Records(64)) {
      ASSERT_TRUE(writer.Append(record).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
  }
  const FaultFsStats stats = FaultFs::Instance().stats();
  FaultFs::Instance().Reset();

  EXPECT_GT(stats.injected, 0);
  EXPECT_EQ(stats.recovered, stats.injected);
  EXPECT_EQ(stats.surfaced, 0);
  EXPECT_EQ(stats.quarantined, 0);
  EXPECT_EQ(stats.short_writes + stats.eintr, stats.injected);
  EXPECT_EQ(ReadFileBytes(faulty_path), ReadFileBytes(clean_path));
  std::filesystem::remove(clean_path);
  std::filesystem::remove(faulty_path);
}

TEST_F(FaultFsTest, FaultScheduleIsDeterministic) {
  // The same (seed, operation sequence) must fault the same calls: two
  // identical runs land identical per-class counts and identical bytes.
  FaultFsOptions options;
  options.seed = 1234;
  options.short_write_rate = 0.3;
  options.eintr_rate = 0.2;
  FaultFsStats first;
  std::string first_bytes;
  for (int run = 0; run < 2; ++run) {
    FaultFs::Instance().Configure(options);  // Re-seeds and zeroes stats.
    const std::string path =
        TempPath("fault_fs_det_" + std::to_string(run) + ".journal");
    JournalWriter writer;
    ASSERT_TRUE(writer.OpenFresh(path, kMagic).ok());
    for (const std::string& record : Records(48)) {
      ASSERT_TRUE(writer.Append(record).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
    const FaultFsStats stats = FaultFs::Instance().stats();
    if (run == 0) {
      first = stats;
      first_bytes = ReadFileBytes(path);
      EXPECT_GT(stats.injected, 0);
    } else {
      EXPECT_EQ(stats.injected, first.injected);
      EXPECT_EQ(stats.short_writes, first.short_writes);
      EXPECT_EQ(stats.eintr, first.eintr);
      EXPECT_EQ(ReadFileBytes(path), first_bytes);
    }
    std::filesystem::remove(path);
  }
}

TEST_F(FaultFsTest, WriteErrorSurfacesTypedWithNoPartialFrame) {
  const std::string path = TempPath("fault_fs_eio.journal");
  JournalWriter writer;
  ASSERT_TRUE(writer.OpenFresh(path, kMagic).ok());
  ASSERT_TRUE(writer.Append("before the fault").ok());

  FaultFsOptions options;
  options.seed = 1;
  options.write_error_rate = 1.0;
  FaultFs::Instance().Configure(options);
  Status status = writer.Append("doomed");
  EXPECT_FALSE(status.ok());
  const FaultFsStats stats = FaultFs::Instance().stats();
  EXPECT_GT(stats.write_errors, 0);
  EXPECT_EQ(stats.surfaced, stats.injected);
  FaultFs::Instance().Reset();
  ASSERT_TRUE(writer.Close().ok());

  // The failed append left no partial frame: replay sees exactly the
  // record written before the fault, with no quarantine or torn tail.
  JournalReplayStats replay_stats;
  std::vector<std::string> records = Replay(path, &replay_stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "before the fault");
  EXPECT_EQ(replay_stats.quarantined, 0);
  EXPECT_EQ(replay_stats.truncated_bytes, 0);
  std::filesystem::remove(path);
}

TEST_F(FaultFsTest, EnospcSurfacesAndResumesClean) {
  const std::string path = TempPath("fault_fs_enospc.journal");
  FaultFsOptions options;
  options.seed = 2;
  options.enospc_after_bytes = 256;  // Tiny simulated disk.
  FaultFs::Instance().Configure(options);

  JournalWriter writer;
  ASSERT_TRUE(writer.OpenFresh(path, kMagic).ok());
  int64_t accepted = 0;
  Status failure = Status::OK();
  for (const std::string& record : Records(100)) {
    failure = writer.Append(record);
    if (!failure.ok()) break;
    ++accepted;
  }
  ASSERT_FALSE(failure.ok()) << "a 256-byte disk accepted 100 records";
  EXPECT_LT(accepted, 100);
  const FaultFsStats stats = FaultFs::Instance().stats();
  EXPECT_GT(stats.enospc, 0);
  EXPECT_EQ(stats.surfaced, stats.injected);
  FaultFs::Instance().Reset();
  ASSERT_TRUE(writer.Close().ok());

  // The valid prefix is exactly the accepted records; a resumed writer
  // (disk space restored) appends after it without losing anything.
  JournalReplayStats replay_stats;
  std::vector<std::string> records = Replay(path, &replay_stats);
  ASSERT_EQ(static_cast<int64_t>(records.size()), accepted);
  EXPECT_EQ(replay_stats.quarantined, 0);

  JournalWriter resumed;
  ASSERT_TRUE(
      resumed.OpenForResume(path, kMagic, replay_stats.valid_bytes).ok());
  ASSERT_TRUE(resumed.Append("after the outage").ok());
  ASSERT_TRUE(resumed.Close().ok());
  records = Replay(path, nullptr);
  ASSERT_EQ(static_cast<int64_t>(records.size()), accepted + 1);
  EXPECT_EQ(records.back(), "after the outage");
  std::filesystem::remove(path);
}

TEST_F(FaultFsTest, FsyncFailurePropagatesFromClose) {
  const std::string path = TempPath("fault_fs_fsync.journal");
  JournalWriter writer;
  // No per-append fsync: the only durability barrier is Close's, whose
  // failure the caller must hear about (earlier appends may be lost).
  ASSERT_TRUE(writer.OpenFresh(path, kMagic,
                               /*fsync_each_append=*/false).ok());
  ASSERT_TRUE(writer.Append("maybe durable").ok());

  FaultFsOptions options;
  options.seed = 3;
  options.fsync_error_rate = 1.0;
  FaultFs::Instance().Configure(options);
  EXPECT_FALSE(writer.Close().ok());
  const FaultFsStats stats = FaultFs::Instance().stats();
  EXPECT_GT(stats.fsync_failures, 0);
  EXPECT_EQ(stats.surfaced, stats.injected);
  std::filesystem::remove(path);
}

TEST_F(FaultFsTest, AccountingInvariantHoldsUnderMixedFaults) {
  FaultFsOptions options;
  options.seed = 99;
  options.write_error_rate = 0.1;
  options.short_write_rate = 0.2;
  options.fsync_error_rate = 0.1;
  options.eintr_rate = 0.2;
  FaultFs::Instance().Configure(options);

  const std::string path = TempPath("fault_fs_mixed.journal");
  JournalWriter writer;
  if (writer.OpenFresh(path, kMagic).ok()) {
    for (const std::string& record : Records(200)) {
      (void)writer.Append(record);
    }
    (void)writer.Close();
  }
  const FaultFsStats stats = FaultFs::Instance().stats();
  FaultFs::Instance().Reset();

  EXPECT_GT(stats.injected, 0);
  EXPECT_EQ(stats.injected,
            stats.recovered + stats.surfaced + stats.quarantined);
  EXPECT_EQ(stats.injected,
            stats.short_writes + stats.eintr + stats.write_errors +
                stats.fsync_failures + stats.enospc + stats.page_flips);
  EXPECT_EQ(stats.recovered, stats.short_writes + stats.eintr);
  EXPECT_EQ(stats.surfaced,
            stats.write_errors + stats.fsync_failures + stats.enospc);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace stir::io
