#include "io/corpus_reader.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/report.h"
#include "core/study.h"
#include "twitter/column_store.h"
#include "twitter/generator.h"

namespace stir::io {
namespace {

std::filesystem::path TempPath(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

/// One generated corpus persisted in all three formats. The fixture is
/// built once (SetUpTestSuite) because every test re-opens the same
/// files.
class CorpusReaderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
    twitter::DatasetGenerator generator(
        &db, twitter::DatasetGenerator::KoreanConfig(0.02));
    data_ = new twitter::GeneratedData(generator.Generate());
    users_tsv_ = TempPath("reader_users.tsv").string();
    tweets_tsv_ = TempPath("reader_tweets.tsv").string();
    tweets_col_ = TempPath("reader_tweets.col").string();
    arena_ = TempPath("reader.corpus").string();
    ASSERT_TRUE(
        data_->dataset.SaveTsv(users_tsv_, tweets_tsv_).ok());
    ASSERT_TRUE(twitter::TweetColumnStore::FromDataset(data_->dataset)
                    .Save(tweets_col_)
                    .ok());
    ASSERT_TRUE(CorpusWriter::WriteDataset(data_->dataset, arena_).ok());
  }

  static void TearDownTestSuite() {
    for (const std::string* path :
         {&users_tsv_, &tweets_tsv_, &tweets_col_, &arena_}) {
      std::filesystem::remove(*path);
    }
    delete data_;
    data_ = nullptr;
  }

  static twitter::GeneratedData* data_;
  static std::string users_tsv_;
  static std::string tweets_tsv_;
  static std::string tweets_col_;
  static std::string arena_;
};

twitter::GeneratedData* CorpusReaderTest::data_ = nullptr;
std::string CorpusReaderTest::users_tsv_;
std::string CorpusReaderTest::tweets_tsv_;
std::string CorpusReaderTest::tweets_col_;
std::string CorpusReaderTest::arena_;

TEST_F(CorpusReaderTest, SniffsEveryFormatFromMagicBytes) {
  auto tsv = CorpusReader::SniffFormat(tweets_tsv_);
  ASSERT_TRUE(tsv.ok());
  EXPECT_EQ(*tsv, CorpusFormat::kTsv);
  auto col = CorpusReader::SniffFormat(tweets_col_);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(*col, CorpusFormat::kColumnV2);
  auto arena = CorpusReader::SniffFormat(arena_);
  ASSERT_TRUE(arena.ok());
  EXPECT_EQ(*arena, CorpusFormat::kArenaV3);
  EXPECT_FALSE(CorpusReader::SniffFormat("no/such/file").ok());
}

TEST_F(CorpusReaderTest, EveryFormatDecodesTheSameCorpus) {
  CorpusSpec tsv_spec;
  tsv_spec.users_path = users_tsv_;
  tsv_spec.tweets_path = tweets_tsv_;
  auto tsv = CorpusReader::Open(tsv_spec);
  ASSERT_TRUE(tsv.ok()) << tsv.status().ToString();
  EXPECT_EQ(tsv->format(), CorpusFormat::kTsv);
  ASSERT_NE(tsv->dataset(), nullptr);

  CorpusSpec col_spec;
  col_spec.users_path = users_tsv_;
  col_spec.tweets_path = tweets_col_;
  auto col = CorpusReader::Open(col_spec);
  ASSERT_TRUE(col.ok()) << col.status().ToString();
  EXPECT_EQ(col->format(), CorpusFormat::kColumnV2);
  ASSERT_NE(col->dataset(), nullptr);

  CorpusSpec arena_spec;
  arena_spec.corpus_path = arena_;
  auto arena = CorpusReader::Open(arena_spec);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  EXPECT_EQ(arena->format(), CorpusFormat::kArenaV3);
  ASSERT_TRUE(arena->has_view());
  EXPECT_EQ(arena->dataset(), nullptr);  // not materialized yet
  auto materialized = arena->Materialize();
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();

  const twitter::Dataset& d = data_->dataset;
  for (const CorpusReader* reader : {&*tsv, &*col, &*arena}) {
    EXPECT_EQ(reader->dataset()->users().size(), d.users().size());
    EXPECT_EQ(reader->dataset()->tweets().size(), d.tweets().size());
    EXPECT_EQ(reader->dataset()->gps_tweet_count(), d.gps_tweet_count());
    EXPECT_EQ(reader->dataset()->total_tweet_count(),
              d.total_tweet_count());
  }
}

TEST_F(CorpusReaderTest, MisroutedPathsAreRejectedWithGuidance) {
  // An arena corpus handed in as tweets_path, and a TSV handed in as
  // corpus_path, both fail with messages pointing at the right slot.
  CorpusSpec wrong_slot;
  wrong_slot.users_path = users_tsv_;
  wrong_slot.tweets_path = arena_;
  auto a = CorpusReader::Open(wrong_slot);
  ASSERT_FALSE(a.ok());
  EXPECT_NE(a.status().ToString().find("corpus_path"), std::string::npos);

  CorpusSpec tsv_as_corpus;
  tsv_as_corpus.corpus_path = tweets_tsv_;
  auto b = CorpusReader::Open(tsv_as_corpus);
  ASSERT_FALSE(b.ok());

  CorpusSpec both;
  both.corpus_path = arena_;
  both.users_path = users_tsv_;
  both.tweets_path = tweets_tsv_;
  EXPECT_FALSE(CorpusReader::Open(both).ok());

  CorpusSpec neither;
  EXPECT_FALSE(CorpusReader::Open(neither).ok());
}

TEST_F(CorpusReaderTest, StudyReportsAreByteIdenticalAcrossFormats) {
  // The tentpole guarantee: the same study over the TSV-decoded dataset,
  // the v2-decoded dataset, and the zero-copy v3 view renders the same
  // bytes — funnel, group table, and report.json.
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  core::CorrelationStudy study(&db);

  CorpusSpec tsv_spec;
  tsv_spec.users_path = users_tsv_;
  tsv_spec.tweets_path = tweets_tsv_;
  auto tsv = CorpusReader::Open(tsv_spec);
  ASSERT_TRUE(tsv.ok());
  core::StudyResult from_tsv = study.Run(*tsv->dataset());

  CorpusSpec col_spec;
  col_spec.users_path = users_tsv_;
  col_spec.tweets_path = tweets_col_;
  auto col = CorpusReader::Open(col_spec);
  ASSERT_TRUE(col.ok());
  core::StudyResult from_col = study.Run(*col->dataset());

  CorpusSpec arena_spec;
  arena_spec.corpus_path = arena_;
  auto arena = CorpusReader::Open(arena_spec);
  ASSERT_TRUE(arena.ok());
  core::StudyResult from_view = study.Run(arena->view());

  EXPECT_EQ(from_tsv.FunnelString(), from_col.FunnelString());
  EXPECT_EQ(from_tsv.FunnelString(), from_view.FunnelString());
  EXPECT_EQ(from_tsv.GroupTableString(), from_col.GroupTableString());
  EXPECT_EQ(from_tsv.GroupTableString(), from_view.GroupTableString());
  EXPECT_EQ(core::StudyReportJsonString(from_tsv),
            core::StudyReportJsonString(from_view));
  EXPECT_EQ(core::StudyReportJsonString(from_col),
            core::StudyReportJsonString(from_view));
}

TEST_F(CorpusReaderTest, ColumnarStudyMatchesDatasetStudyInParallel) {
  // Sharded refinement over the view merges in the same order as the
  // dataset path, faults and all.
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  StudyConfig config;
  config.threads = 4;
  config.fault.error_rate = 0.1;
  config.retry.max_attempts = 2;
  core::CorrelationStudy study(&db, config);

  core::StudyResult from_dataset = study.Run(data_->dataset);

  CorpusSpec arena_spec;
  arena_spec.corpus_path = arena_;
  auto arena = CorpusReader::Open(arena_spec);
  ASSERT_TRUE(arena.ok());
  core::StudyResult from_view = study.Run(arena->view());

  EXPECT_EQ(from_dataset.FunnelString(), from_view.FunnelString());
  EXPECT_EQ(from_dataset.GroupTableString(), from_view.GroupTableString());
  EXPECT_EQ(core::StudyReportJsonString(from_dataset),
            core::StudyReportJsonString(from_view));
}

TEST_F(CorpusReaderTest, TakeDatasetMaterializesAndMoves) {
  CorpusSpec arena_spec;
  arena_spec.corpus_path = arena_;
  auto arena = CorpusReader::Open(arena_spec);
  ASSERT_TRUE(arena.ok());
  auto taken = arena->TakeDataset();
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();
  EXPECT_EQ(taken->users().size(), data_->dataset.users().size());
  EXPECT_EQ(arena->dataset(), nullptr);  // moved out
}

TEST_F(CorpusReaderTest, FormatNamesAreStable) {
  EXPECT_STREQ(CorpusFormatName(CorpusFormat::kTsv), "tsv");
  EXPECT_STREQ(CorpusFormatName(CorpusFormat::kColumnV2), "column-v2");
  EXPECT_STREQ(CorpusFormatName(CorpusFormat::kArenaV3), "arena-v3");
}

}  // namespace
}  // namespace stir::io
