#include "twitter/mobility.h"

#include <gtest/gtest.h>

#include <map>

namespace stir::twitter {
namespace {

class MobilityTest : public ::testing::Test {
 protected:
  MobilityTest()
      : db_(geo::AdminDb::KoreanDistricts()),
        model_(&db_, MobilityModelOptions{}) {}
  const geo::AdminDb& db_;
  MobilityModel model_;
};

TEST_F(MobilityTest, ProfileInvariants) {
  Rng rng(1);
  for (UserId u = 0; u < 300; ++u) {
    MobilityProfile p = model_.GenerateProfile(u, /*is_geotagger=*/true, rng);
    EXPECT_EQ(p.user, u);
    ASSERT_FALSE(p.spots.empty());
    double total = 0.0;
    for (size_t i = 0; i < p.spots.size(); ++i) {
      EXPECT_GE(p.spots[i].region, 0);
      EXPECT_LT(static_cast<size_t>(p.spots[i].region), db_.size());
      EXPECT_GT(p.spots[i].weight, 0.0);
      if (i > 0) EXPECT_LE(p.spots[i].weight, p.spots[i - 1].weight);
      total += p.spots[i].weight;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_GT(p.geotag_rate, 0.0);
  }
}

TEST_F(MobilityTest, NonGeotaggersNeverGeotag) {
  Rng rng(2);
  MobilityProfile p = model_.GenerateProfile(1, /*is_geotagger=*/false, rng);
  EXPECT_EQ(p.geotag_rate, 0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(model_.SampleGeotag(p, p.spots.front().region, rng));
  }
}

TEST_F(MobilityTest, RelocatedClaimFarFromHomeAndNotASpot) {
  Rng rng(3);
  int found = 0;
  for (UserId u = 0; u < 2000 && found < 50; ++u) {
    MobilityProfile p = model_.GenerateProfile(u, true, rng);
    if (p.archetype != Archetype::kRelocated) continue;
    ++found;
    EXPECT_NE(p.claimed, p.home);
    double d = geo::ApproxDistanceKm(db_.region(p.claimed).centroid,
                                     db_.region(p.home).centroid);
    EXPECT_GE(d, model_.options().relocation_min_km * 0.99);
    for (const ActivitySpot& spot : p.spots) {
      EXPECT_NE(spot.region, p.claimed);
    }
  }
  EXPECT_GE(found, 50);
}

TEST_F(MobilityTest, NonRelocatedClaimHome) {
  Rng rng(4);
  for (UserId u = 0; u < 500; ++u) {
    MobilityProfile p = model_.GenerateProfile(u, true, rng);
    if (p.archetype != Archetype::kRelocated) {
      EXPECT_EQ(p.claimed, p.home) << ArchetypeToString(p.archetype);
    }
  }
}

TEST_F(MobilityTest, HomebodyHomeIsTopSpot) {
  Rng rng(5);
  for (UserId u = 0; u < 1000; ++u) {
    MobilityProfile p = model_.GenerateProfile(u, true, rng);
    if (p.archetype == Archetype::kHomebody) {
      EXPECT_EQ(p.spots.front().region, p.home);
      EXPECT_GE(p.spots.front().weight, 0.5);
    }
  }
}

TEST_F(MobilityTest, CommuterHomeIsSecondSpot) {
  Rng rng(6);
  int checked = 0;
  for (UserId u = 0; u < 1500 && checked < 40; ++u) {
    MobilityProfile p = model_.GenerateProfile(u, true, rng);
    if (p.archetype != Archetype::kCommuter) continue;
    ++checked;
    ASSERT_GE(p.spots.size(), 2u);
    EXPECT_NE(p.spots.front().region, p.home);
    EXPECT_EQ(p.spots[1].region, p.home);
  }
  EXPECT_GE(checked, 40);
}

TEST_F(MobilityTest, SelectiveNeverGeotagsAtHome) {
  Rng rng(7);
  int checked = 0;
  for (UserId u = 0; u < 3000 && checked < 30; ++u) {
    MobilityProfile p = model_.GenerateProfile(u, true, rng);
    if (p.archetype != Archetype::kGeotagSelective) continue;
    ++checked;
    EXPECT_TRUE(p.geotag_away_only);
    for (int i = 0; i < 50; ++i) {
      EXPECT_FALSE(model_.SampleGeotag(p, p.home, rng));
    }
  }
  EXPECT_GE(checked, 30);
}

TEST_F(MobilityTest, SampleTweetRegionFollowsWeights) {
  Rng rng(8);
  MobilityProfile p;
  p.user = 1;
  p.home = 0;
  p.spots = {{0, 0.7}, {1, 0.2}, {2, 0.1}};
  std::map<geo::RegionId, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[model_.SampleTweetRegion(p, rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.7, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.1, 0.02);
}

TEST_F(MobilityTest, ArchetypeMixMatchesConfiguration) {
  MobilityModelOptions options;
  const MobilityModel model(&db_, options);
  Rng rng(9);
  std::map<Archetype, int> counts;
  const int n = 20000;
  for (UserId u = 0; u < n; ++u) {
    ++counts[model.GenerateProfile(u, true, rng).archetype];
  }
  EXPECT_NEAR(counts[Archetype::kHomebody] / static_cast<double>(n),
              options.frac_homebody, 0.02);
  EXPECT_NEAR(counts[Archetype::kRelocated] / static_cast<double>(n),
              options.frac_relocated, 0.02);
  EXPECT_NEAR(counts[Archetype::kGeotagSelective] / static_cast<double>(n),
              options.frac_selective, 0.02);
}

TEST_F(MobilityTest, ActivitySpotsAreLocal) {
  Rng rng(10);
  for (UserId u = 0; u < 200; ++u) {
    MobilityProfile p = model_.GenerateProfile(u, true, rng);
    if (p.archetype == Archetype::kRelocated) continue;
    const geo::LatLng home = db_.region(p.home).centroid;
    for (const ActivitySpot& spot : p.spots) {
      double d = geo::ApproxDistanceKm(home, db_.region(spot.region).centroid);
      EXPECT_LE(d, model_.options().activity_radius_km + 1.0)
          << ArchetypeToString(p.archetype);
    }
  }
}

TEST_F(MobilityTest, WorldGazetteerAlsoWorks) {
  const geo::AdminDb& world = geo::AdminDb::WorldCities();
  MobilityModelOptions options;
  options.activity_radius_km = 2500.0;
  options.distance_decay_km = 600.0;
  MobilityModel model(&world, options);
  Rng rng(11);
  for (UserId u = 0; u < 100; ++u) {
    MobilityProfile p = model.GenerateProfile(u, true, rng);
    EXPECT_FALSE(p.spots.empty());
  }
}

}  // namespace
}  // namespace stir::twitter
