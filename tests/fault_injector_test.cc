// FaultInjector: schedules must be pure functions of (options, index,
// attempt) — identical on every thread of every run — and the accounting
// must be exact.

#include "common/fault.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace stir::common {
namespace {

TEST(FaultInjectorTest, DisabledByDefault) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  for (int64_t i = 0; i < 100; ++i) {
    FaultDecision decision = injector.Decide(i);
    EXPECT_TRUE(decision.status.ok());
    EXPECT_EQ(decision.latency_ms, 0);
  }
  EXPECT_EQ(injector.faults_injected(), 0);
  EXPECT_EQ(injector.decisions(), 100);
}

TEST(FaultInjectorTest, EnabledReflectsEachKnob) {
  FaultInjectorOptions options;
  options.error_rate = 0.1;
  EXPECT_TRUE(FaultInjector(options).enabled());
  options = {};
  options.burst_start = 5;
  options.burst_length = 2;
  EXPECT_TRUE(FaultInjector(options).enabled());
  options = {};
  options.burst_start = 5;  // zero-length burst is inert
  EXPECT_FALSE(FaultInjector(options).enabled());
  options = {};
  options.exhaust_after = 100;
  EXPECT_TRUE(FaultInjector(options).enabled());
  options = {};
  options.latency_spike_rate = 0.5;
  EXPECT_TRUE(FaultInjector(options).enabled());
}

TEST(FaultInjectorTest, DecideIsAPureFunction) {
  FaultInjectorOptions options;
  options.seed = 42;
  options.error_rate = 0.3;
  options.latency_spike_rate = 0.2;
  FaultInjector a(options);
  FaultInjector b(options);
  for (int64_t i = 0; i < 2000; ++i) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      FaultDecision da = a.Decide(i, attempt);
      FaultDecision db = b.Decide(i, attempt);
      EXPECT_EQ(da.status.code(), db.status.code());
      EXPECT_EQ(da.latency_ms, db.latency_ms);
      // Re-deciding the same (index, attempt) yields the same outcome.
      EXPECT_EQ(a.Decide(i, attempt).status.code(), da.status.code());
    }
  }
}

TEST(FaultInjectorTest, SeedSelectsADifferentSchedule) {
  FaultInjectorOptions options;
  options.error_rate = 0.3;
  options.seed = 1;
  FaultInjector a(options);
  options.seed = 2;
  FaultInjector b(options);
  int differing = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    differing += a.Decide(i).injected() != b.Decide(i).injected();
  }
  EXPECT_GT(differing, 100);  // ~2 * 0.3 * 0.7 * 1000 expected
}

TEST(FaultInjectorTest, AttemptSelectsADifferentDraw) {
  FaultInjectorOptions options;
  options.error_rate = 0.5;
  options.seed = 9;
  FaultInjector injector(options);
  int differing = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    differing +=
        injector.Decide(i, 0).injected() != injector.Decide(i, 1).injected();
  }
  // Retrying re-rolls the fault, so ~half the indices flip outcome.
  EXPECT_GT(differing, 300);
}

TEST(FaultInjectorTest, ErrorRateMatchesFrequency) {
  FaultInjectorOptions options;
  options.error_rate = 0.3;
  options.seed = 7;
  FaultInjector injector(options);
  int faults = 0;
  constexpr int kTrials = 20000;
  for (int64_t i = 0; i < kTrials; ++i) {
    FaultDecision decision = injector.Decide(i);
    if (decision.injected()) {
      ++faults;
      EXPECT_TRUE(decision.status.IsUnavailable());
    }
  }
  EXPECT_NEAR(static_cast<double>(faults) / kTrials, 0.3, 0.02);
  EXPECT_EQ(injector.faults_injected(), faults);
  EXPECT_EQ(injector.decisions(), kTrials);
}

TEST(FaultInjectorTest, BurstWindowIsExactAndAttemptIndependent) {
  FaultInjectorOptions options;
  options.burst_start = 10;
  options.burst_length = 5;
  FaultInjector injector(options);
  for (int64_t i = 0; i < 30; ++i) {
    bool in_window = i >= 10 && i < 15;
    for (int attempt = 0; attempt < 4; ++attempt) {
      FaultDecision decision = injector.Decide(i, attempt);
      EXPECT_EQ(decision.injected(), in_window) << "index " << i;
      if (in_window) {
        EXPECT_TRUE(decision.status.IsUnavailable());
      }
    }
  }
}

TEST(FaultInjectorTest, PeriodicBurstRepeats) {
  FaultInjectorOptions options;
  options.burst_start = 3;
  options.burst_length = 2;
  options.burst_period = 10;
  FaultInjector injector(options);
  for (int64_t i = 0; i < 100; ++i) {
    bool in_window = (i % 10) == 3 || (i % 10) == 4;
    EXPECT_EQ(injector.Decide(i).injected(), in_window) << "index " << i;
  }
}

TEST(FaultInjectorTest, ExhaustAfterFailsEveryLaterCall) {
  FaultInjectorOptions options;
  options.exhaust_after = 50;
  FaultInjector injector(options);
  for (int64_t i = 0; i < 100; ++i) {
    FaultDecision decision = injector.Decide(i);
    if (i < 50) {
      EXPECT_TRUE(decision.status.ok()) << "index " << i;
    } else {
      EXPECT_TRUE(decision.status.IsResourceExhausted()) << "index " << i;
    }
  }
  EXPECT_EQ(injector.faults_injected(), 50);
}

TEST(FaultInjectorTest, LatencySpikesAreChargedAndCounted) {
  FaultInjectorOptions options;
  options.latency_spike_rate = 0.5;
  options.latency_spike_ms = 250;
  options.seed = 3;
  FaultInjector injector(options);
  int64_t spikes = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    FaultDecision decision = injector.Decide(i);
    EXPECT_TRUE(decision.status.ok());  // spikes slow calls, never fail them
    if (decision.latency_ms > 0) {
      EXPECT_EQ(decision.latency_ms, 250);
      ++spikes;
    }
  }
  EXPECT_NEAR(static_cast<double>(spikes) / 1000.0, 0.5, 0.06);
  EXPECT_EQ(injector.latency_spikes(), spikes);
  EXPECT_EQ(injector.simulated_latency_ms(), spikes * 250);
}

TEST(FaultInjectorTest, NextClaimsSequentialIndices) {
  FaultInjector injector;
  EXPECT_EQ(injector.NextIndex(), 0);
  EXPECT_EQ(injector.NextIndex(), 1);
  injector.Next();  // claims 2
  EXPECT_EQ(injector.NextIndex(), 3);
}

// The determinism guarantee under contention: many threads replaying the
// same index range must see byte-identical schedules, and the shared
// counters must total exactly.
TEST(FaultInjectorTest, ScheduleReplaysIdenticallyAcrossThreads) {
  FaultInjectorOptions options;
  options.error_rate = 0.25;
  options.seed = 77;
  options.burst_start = 100;
  options.burst_length = 20;
  FaultInjector injector(options);
  constexpr int kThreads = 8;
  constexpr int64_t kIndices = 5000;

  std::vector<std::vector<char>> schedules(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      schedules[t].reserve(kIndices);
      for (int64_t i = 0; i < kIndices; ++i) {
        schedules[t].push_back(injector.Decide(i).injected() ? 1 : 0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(schedules[t], schedules[0]) << "thread " << t;
  }
  EXPECT_EQ(injector.decisions(), int64_t{kThreads} * kIndices);
  int64_t faults_per_thread = 0;
  for (char f : schedules[0]) faults_per_thread += f;
  EXPECT_EQ(injector.faults_injected(), kThreads * faults_per_thread);
}

TEST(FaultInjectorTest, ResetCountersZeroesAccounting) {
  FaultInjectorOptions options;
  options.error_rate = 1.0;
  FaultInjector injector(options);
  injector.Decide(0);
  EXPECT_GT(injector.faults_injected(), 0);
  injector.ResetCounters();
  EXPECT_EQ(injector.decisions(), 0);
  EXPECT_EQ(injector.faults_injected(), 0);
  EXPECT_EQ(injector.latency_spikes(), 0);
  EXPECT_EQ(injector.simulated_latency_ms(), 0);
}

}  // namespace
}  // namespace stir::common
