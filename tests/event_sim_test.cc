#include "event/event_sim.h"

#include <gtest/gtest.h>

#include "twitter/generator.h"

namespace stir::event {
namespace {

class EventSimTest : public ::testing::Test {
 protected:
  EventSimTest() : db_(geo::AdminDb::KoreanDistricts()) {
    twitter::DatasetGenerator generator(
        &db_, twitter::DatasetGenerator::KoreanConfig(0.05));
    data_ = generator.Generate();
  }

  EventSpec SeoulQuake() {
    EventSpec spec;
    spec.epicenter = {37.55, 127.00};
    spec.start_time = 1000;
    spec.felt_radius_km = 120.0;
    spec.response_rate = 0.4;
    return spec;
  }

  const geo::AdminDb& db_;
  twitter::GeneratedData data_;
};

TEST_F(EventSimTest, ReportsTimeOrderedAndAfterOnset) {
  EventSimulator simulator(&db_, &data_.truth);
  Rng rng(1);
  auto reports = simulator.Simulate(SeoulQuake(), data_.dataset.users(), rng);
  ASSERT_GT(reports.size(), 20u);
  for (size_t i = 0; i < reports.size(); ++i) {
    EXPECT_GE(reports[i].time, 1000);
    if (i > 0) EXPECT_GE(reports[i].time, reports[i - 1].time);
  }
}

TEST_F(EventSimTest, WitnessesAreWithinFeltRadius) {
  EventSimulator simulator(&db_, &data_.truth);
  Rng rng(2);
  EventSpec spec = SeoulQuake();
  auto reports = simulator.Simulate(spec, data_.dataset.users(), rng);
  for (const WitnessReport& report : reports) {
    ASSERT_GE(report.true_region, 0);
    double d = geo::HaversineKm(db_.region(report.true_region).centroid,
                                spec.epicenter);
    EXPECT_LE(d, spec.felt_radius_km + 30.0);  // centroid vs actual point
    if (report.gps.has_value()) {
      EXPECT_LE(geo::HaversineKm(*report.gps, spec.epicenter),
                spec.felt_radius_km + 1.0);
    }
  }
}

TEST_F(EventSimTest, ReportTextCarriesKeyword) {
  EventSimulator simulator(&db_, &data_.truth);
  Rng rng(3);
  EventSpec spec = SeoulQuake();
  auto reports = simulator.Simulate(spec, data_.dataset.users(), rng);
  for (const WitnessReport& report : reports) {
    bool has_keyword = false;
    for (const std::string& keyword : spec.keywords) {
      has_keyword |= report.text.find(keyword) != std::string::npos;
    }
    EXPECT_TRUE(has_keyword) << report.text;
  }
}

TEST_F(EventSimTest, RemoteEventYieldsNoReports) {
  EventSimulator simulator(&db_, &data_.truth);
  Rng rng(4);
  EventSpec remote;
  remote.epicenter = {10.0, 100.0};  // far outside Korea
  remote.felt_radius_km = 100.0;
  auto reports = simulator.Simulate(remote, data_.dataset.users(), rng);
  EXPECT_TRUE(reports.empty());
}

TEST_F(EventSimTest, CloserEventsDrawMoreReports) {
  EventSimulator simulator(&db_, &data_.truth);
  Rng rng_a(5), rng_b(5);
  EventSpec seoul = SeoulQuake();  // population-dense
  EventSpec sea;                   // off the east coast, fewer people
  sea.epicenter = {37.8, 130.2};
  sea.start_time = 1000;
  sea.felt_radius_km = 120.0;
  sea.response_rate = 0.4;
  auto seoul_reports =
      simulator.Simulate(seoul, data_.dataset.users(), rng_a);
  auto sea_reports = simulator.Simulate(sea, data_.dataset.users(), rng_b);
  EXPECT_GT(seoul_reports.size(), sea_reports.size() * 3);
}

TEST_F(EventSimTest, GeotagBoostIncreasesGpsShare) {
  EventSimulator plain(&db_, &data_.truth, /*event_geotag_boost=*/1.0);
  EventSimulator boosted(&db_, &data_.truth, /*event_geotag_boost=*/8.0);
  Rng rng_a(6), rng_b(6);
  EventSpec spec = SeoulQuake();
  auto count_gps = [](const std::vector<WitnessReport>& reports) {
    int64_t n = 0;
    for (const auto& r : reports) n += r.gps.has_value();
    return n;
  };
  auto a = plain.Simulate(spec, data_.dataset.users(), rng_a);
  auto b = boosted.Simulate(spec, data_.dataset.users(), rng_b);
  double share_a = a.empty() ? 0.0
                             : static_cast<double>(count_gps(a)) /
                                   static_cast<double>(a.size());
  double share_b = b.empty() ? 0.0
                             : static_cast<double>(count_gps(b)) /
                                   static_cast<double>(b.size());
  EXPECT_GT(share_b, share_a);
}

}  // namespace
}  // namespace stir::event
