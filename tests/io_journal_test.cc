#include "io/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "geo/geocode_journal.h"
#include "io/atomic_file.h"
#include "io/serialize.h"
#include "io/snapshot.h"

namespace stir::io {
namespace {

constexpr std::string_view kMagic = "STIRJNL1";

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string CorpusPath(const std::string& name) {
  return std::string(STIR_TEST_DATA_DIR) + "/journal/" + name;
}

std::vector<std::string> Replay(const std::string& path,
                                JournalReplayStats* stats) {
  std::vector<std::string> payloads;
  auto result = ReplayJournal(path, kMagic, [&](std::string_view payload) {
    payloads.emplace_back(payload);
  });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok() && stats != nullptr) *stats = *result;
  return payloads;
}

TEST(Crc32cTest, KnownVectors) {
  // The canonical CRC-32C check value.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  // Incremental form must match one-shot.
  uint32_t state = kCrc32cInit;
  state = Crc32cExtend(state, "12345");
  state = Crc32cExtend(state, "6789");
  EXPECT_EQ(Crc32cFinish(state), Crc32c("123456789"));
}

TEST(SerializeTest, RoundTrip) {
  BinaryWriter w;
  w.U32(0xDEADBEEFu);
  w.U64(1ull << 40);
  w.I32(-7);
  w.I64(-(1ll << 50));
  w.Bool(true);
  w.Bool(false);
  w.Double(3.5);
  w.String("payload with\0embedded nul");
  w.String("");
  std::string bytes = w.Take();

  BinaryReader r(bytes);
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int32_t i32 = 0;
  int64_t i64 = 0;
  bool b1 = false, b2 = true;
  double d = 0;
  std::string s1, s2;
  ASSERT_TRUE(r.U32(&u32));
  ASSERT_TRUE(r.U64(&u64));
  ASSERT_TRUE(r.I32(&i32));
  ASSERT_TRUE(r.I64(&i64));
  ASSERT_TRUE(r.Bool(&b1));
  ASSERT_TRUE(r.Bool(&b2));
  ASSERT_TRUE(r.Double(&d));
  ASSERT_TRUE(r.String(&s1));
  ASSERT_TRUE(r.String(&s2));
  EXPECT_TRUE(r.Done());
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 1ull << 40);
  EXPECT_EQ(i32, -7);
  EXPECT_EQ(i64, -(1ll << 50));
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_EQ(s1, "payload with");  // string_view literal stops at the nul.
  EXPECT_TRUE(s2.empty());
}

TEST(SerializeTest, ReaderRejectsUnderrun) {
  BinaryWriter w;
  w.U32(7);
  BinaryReader r(w.bytes());
  uint64_t u64 = 0;
  EXPECT_FALSE(r.U64(&u64));  // only 4 bytes available
  std::string s;
  BinaryReader r2(w.bytes());
  // Length prefix alone underruns an 8-byte u64.
  EXPECT_FALSE(r2.String(&s));
}

TEST(AtomicFileTest, WriteReadRoundTrip) {
  std::string path = TempPath("atomic_roundtrip.bin");
  std::string contents("binary\0data", 11);
  ASSERT_TRUE(AtomicWriteFile(path, contents).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, contents);
  // Replace in place: no .tmp sibling left behind.
  ASSERT_TRUE(AtomicWriteFile(path, "second").ok());
  read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "second");
  EXPECT_FALSE(PathExists(path + ".tmp"));
}

TEST(AtomicFileTest, EnsureDirectoryCreatesParents) {
  std::string dir = TempPath("ensure/a/b/c");
  ASSERT_TRUE(EnsureDirectory(dir).ok());
  EXPECT_TRUE(PathExists(dir));
  // Idempotent.
  EXPECT_TRUE(EnsureDirectory(dir).ok());
}

TEST(SnapshotTest, RoundTripAndCorruptionRejected) {
  std::string path = TempPath("snap.bin");
  std::string payload = "snapshot payload bytes";
  ASSERT_TRUE(WriteSnapshotFile(path, kMagic, payload).ok());
  auto read = ReadSnapshotFile(path, kMagic);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);

  auto raw = ReadFileToString(path);
  ASSERT_TRUE(raw.ok());
  EXPECT_TRUE(SnapshotHasMagic(*raw, kMagic));
  EXPECT_FALSE(SnapshotHasMagic(*raw, "WRONGMAG"));

  // Wrong magic on read.
  EXPECT_FALSE(ReadSnapshotFile(path, "WRONGMAG").ok());

  // Flip one payload byte: checksum mismatch.
  std::string corrupt = *raw;
  corrupt[kSnapshotHeaderSize] ^= 0x01;
  ASSERT_TRUE(AtomicWriteFile(path, corrupt).ok());
  EXPECT_FALSE(ReadSnapshotFile(path, kMagic).ok());

  // Truncated payload.
  ASSERT_TRUE(AtomicWriteFile(path, raw->substr(0, raw->size() - 1)).ok());
  EXPECT_FALSE(ReadSnapshotFile(path, kMagic).ok());

  // Missing file is IOError (distinct from corruption).
  auto missing = ReadSnapshotFile(TempPath("no_such_snapshot"), kMagic);
  EXPECT_EQ(missing.status().code(), StatusCode::kIOError);
}

TEST(JournalTest, WriteThenReplay) {
  std::string path = TempPath("journal_basic.journal");
  JournalWriter writer;
  ASSERT_TRUE(writer.OpenFresh(path, kMagic).ok());
  ASSERT_TRUE(writer.Append("alpha").ok());
  ASSERT_TRUE(writer.Append("").ok());  // empty payloads are legal
  ASSERT_TRUE(writer.Append("charlie").ok());
  EXPECT_EQ(writer.appended(), 3);
  writer.Close();
  EXPECT_FALSE(writer.is_open());

  JournalReplayStats stats;
  auto payloads = Replay(path, &stats);
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], "alpha");
  EXPECT_EQ(payloads[1], "");
  EXPECT_EQ(payloads[2], "charlie");
  EXPECT_EQ(stats.records, 3);
  EXPECT_EQ(stats.quarantined, 0);
  EXPECT_EQ(stats.truncated_bytes, 0);
}

TEST(JournalTest, MissingFileReplaysEmpty) {
  JournalReplayStats stats;
  auto payloads = Replay(TempPath("never_created.journal"), &stats);
  EXPECT_TRUE(payloads.empty());
  EXPECT_EQ(stats.records, 0);
  EXPECT_EQ(stats.valid_bytes, 0);
}

TEST(JournalTest, TornTailTruncatedOnReplay) {
  std::string path = TempPath("journal_torn.journal");
  JournalWriter writer;
  ASSERT_TRUE(writer.OpenFresh(path, kMagic).ok());
  ASSERT_TRUE(writer.Append("alpha").ok());
  ASSERT_TRUE(writer.Append("bravo").ok());
  writer.Close();

  // Simulate a crash mid-append: a frame header claiming more payload
  // than is present.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    uint32_t length = 100, crc = 0;
    out.write(reinterpret_cast<const char*>(&length), sizeof(length));
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    out.write("par", 3);
  }

  JournalReplayStats stats;
  auto payloads = Replay(path, &stats);
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(stats.records, 2);
  EXPECT_EQ(stats.truncated_bytes, 11);
  int64_t expected_valid =
      static_cast<int64_t>(kJournalHeaderSize + 2 * (kJournalFrameOverhead + 5));
  EXPECT_EQ(stats.valid_bytes, expected_valid);

  // A resuming writer truncates the torn tail and appends cleanly.
  JournalWriter resumed;
  ASSERT_TRUE(resumed.OpenForResume(path, kMagic, stats.valid_bytes).ok());
  ASSERT_TRUE(resumed.Append("charlie").ok());
  resumed.Close();
  payloads = Replay(path, &stats);
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[2], "charlie");
  EXPECT_EQ(stats.truncated_bytes, 0);
}

TEST(JournalTest, BitFlipQuarantinedWithoutLosingLaterRecords) {
  std::string path = TempPath("journal_flip.journal");
  JournalWriter writer;
  ASSERT_TRUE(writer.OpenFresh(path, kMagic).ok());
  ASSERT_TRUE(writer.Append("alpha").ok());
  ASSERT_TRUE(writer.Append("bravo").ok());
  ASSERT_TRUE(writer.Append("charlie").ok());
  writer.Close();

  auto raw = ReadFileToString(path);
  ASSERT_TRUE(raw.ok());
  // Flip a payload byte inside "bravo" (second frame).
  size_t offset =
      kJournalHeaderSize + (kJournalFrameOverhead + 5) + kJournalFrameOverhead;
  std::string corrupt = *raw;
  corrupt[offset] ^= 0x40;
  ASSERT_TRUE(AtomicWriteFile(path, corrupt).ok());

  JournalReplayStats stats;
  auto payloads = Replay(path, &stats);
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], "alpha");
  EXPECT_EQ(payloads[1], "charlie");
  EXPECT_EQ(stats.quarantined, 1);
  EXPECT_EQ(stats.truncated_bytes, 0);
}

TEST(JournalTest, WrongMagicIsHardError) {
  std::string path = TempPath("journal_wrong_magic.journal");
  JournalWriter writer;
  ASSERT_TRUE(writer.OpenFresh(path, "OTHERMAG").ok());
  ASSERT_TRUE(writer.Append("alpha").ok());
  writer.Close();
  auto result = ReplayJournal(path, kMagic, [](std::string_view) {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// --- Corruption corpus (tests/data/journal/) -------------------------------

TEST(JournalCorpusTest, ValidFile) {
  JournalReplayStats stats;
  auto payloads = Replay(CorpusPath("valid.journal"), &stats);
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], "alpha");
  EXPECT_EQ(payloads[1], "bravo");
  EXPECT_EQ(payloads[2], "charlie");
  EXPECT_EQ(stats.quarantined, 0);
  EXPECT_EQ(stats.truncated_bytes, 0);
}

TEST(JournalCorpusTest, TruncatedTail) {
  JournalReplayStats stats;
  auto payloads = Replay(CorpusPath("truncated_tail.journal"), &stats);
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], "alpha");
  EXPECT_EQ(payloads[1], "bravo");
  EXPECT_EQ(stats.quarantined, 0);
  EXPECT_GT(stats.truncated_bytes, 0);
}

TEST(JournalCorpusTest, BitFlip) {
  JournalReplayStats stats;
  auto payloads = Replay(CorpusPath("bit_flip.journal"), &stats);
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], "alpha");
  EXPECT_EQ(payloads[1], "charlie");
  EXPECT_EQ(stats.quarantined, 1);
}

TEST(JournalCorpusTest, BadMagic) {
  auto result =
      ReplayJournal(CorpusPath("bad_magic.journal"), kMagic,
                    [](std::string_view) { FAIL() << "delivered a record"; });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(JournalCorpusTest, ZeroLength) {
  JournalReplayStats stats;
  auto payloads = Replay(CorpusPath("zero_length.journal"), &stats);
  EXPECT_TRUE(payloads.empty());
  EXPECT_EQ(stats.records, 0);
  EXPECT_EQ(stats.valid_bytes, 0);
}

TEST(JournalCorpusTest, DuplicateRecordsAllDelivered) {
  JournalReplayStats stats;
  auto payloads = Replay(CorpusPath("duplicate_records.journal"), &stats);
  ASSERT_EQ(payloads.size(), 4u);
  EXPECT_EQ(payloads[0], "alpha");
  EXPECT_EQ(payloads[1], "alpha");
  EXPECT_EQ(payloads[2], "bravo");
  EXPECT_EQ(payloads[3], "alpha");
  EXPECT_EQ(stats.quarantined, 0);
}

// --- Geocode journal --------------------------------------------------------

geo::GeocodeResult SampleResult() {
  geo::GeocodeResult result;
  result.country = "kr";
  result.state = "seoul";
  result.county = "gangnam";
  result.town = "yeoksam";
  result.region = 42;
  return result;
}

TEST(GeocodeJournalTest, EncodeDecodeRoundTrip) {
  std::string payload = geo::GeocodeJournal::EncodeEntry("wydm6k3", SampleResult());
  geo::GeocodeJournalEntry entry;
  ASSERT_TRUE(geo::GeocodeJournal::DecodeEntry(payload, &entry));
  EXPECT_EQ(entry.cache_key, "wydm6k3");
  EXPECT_EQ(entry.result.country, "kr");
  EXPECT_EQ(entry.result.state, "seoul");
  EXPECT_EQ(entry.result.county, "gangnam");
  EXPECT_EQ(entry.result.town, "yeoksam");
  EXPECT_EQ(entry.result.region, 42);

  // Trailing garbage and truncation are decode failures, not crashes.
  EXPECT_FALSE(geo::GeocodeJournal::DecodeEntry(payload + "x", &entry));
  EXPECT_FALSE(geo::GeocodeJournal::DecodeEntry(
      std::string_view(payload).substr(0, payload.size() - 1), &entry));
}

TEST(GeocodeJournalTest, WriteThenReplay) {
  std::string path = TempPath("geocode_roundtrip.journal");
  geo::GeocodeJournal journal;
  ASSERT_TRUE(journal.OpenFresh(path).ok());
  ASSERT_TRUE(journal.Append("keyaaaa", SampleResult()).ok());
  geo::GeocodeResult other = SampleResult();
  other.town = "jamsil";
  other.region = 7;
  ASSERT_TRUE(journal.Append("keybbbb", other).ok());
  EXPECT_EQ(journal.appended(), 2);
  journal.Close();

  auto replay = geo::GeocodeJournal::Replay(path);
  ASSERT_TRUE(replay.usable) << replay.error;
  ASSERT_EQ(replay.entries.size(), 2u);
  EXPECT_EQ(replay.entries[0].cache_key, "keyaaaa");
  EXPECT_EQ(replay.entries[1].result.town, "jamsil");
  EXPECT_EQ(replay.entries[1].result.region, 7);
  EXPECT_EQ(replay.stats.quarantined, 0);
}

TEST(GeocodeJournalTest, UnusableJournalReportedNotFatal) {
  // A journal carrying a different magic is structurally unusable.
  auto replay = geo::GeocodeJournal::Replay(CorpusPath("valid.journal"));
  EXPECT_FALSE(replay.usable);
  EXPECT_FALSE(replay.error.empty());
  EXPECT_TRUE(replay.entries.empty());
}

TEST(GeocodeJournalTest, UndecodablePayloadQuarantined) {
  std::string path = TempPath("geocode_garbage.journal");
  JournalWriter writer;
  ASSERT_TRUE(writer.OpenFresh(path, geo::GeocodeJournal::kMagic).ok());
  ASSERT_TRUE(
      writer.Append(geo::GeocodeJournal::EncodeEntry("ok1", SampleResult()))
          .ok());
  ASSERT_TRUE(writer.Append("not a geocode entry").ok());
  writer.Close();

  auto replay = geo::GeocodeJournal::Replay(path);
  ASSERT_TRUE(replay.usable) << replay.error;
  ASSERT_EQ(replay.entries.size(), 1u);
  EXPECT_EQ(replay.entries[0].cache_key, "ok1");
  EXPECT_EQ(replay.stats.quarantined, 1);
  EXPECT_EQ(replay.stats.records, 1);
}

}  // namespace
}  // namespace stir::io
