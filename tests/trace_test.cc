#include "obs/trace.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/json.h"

namespace stir::obs {
namespace {

TEST(VirtualClockTest, TicksDeterministically) {
  VirtualClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  EXPECT_EQ(clock.NowMicros(), 1);
  EXPECT_EQ(clock.NowMicros(), 2);
  VirtualClock wide(10);
  EXPECT_EQ(wide.NowMicros(), 0);
  EXPECT_EQ(wide.NowMicros(), 10);
}

TEST(TracerTest, VirtualClockSpansAreDeterministic) {
  // Two identical serial runs must produce byte-identical spans; the
  // default clock is the deterministic VirtualClock.
  auto run = [] {
    Tracer tracer;
    int64_t outer = tracer.BeginSpan("study");
    int64_t inner = tracer.BeginSpan("refinement");
    tracer.AddAttribute(inner, "users", 42);
    tracer.EndSpan(inner);
    tracer.EndSpan(outer);
    return tracer.Snapshot().ToJson();
  };
  std::string first = run();
  EXPECT_EQ(first, run());
  std::string error;
  EXPECT_TRUE(JsonIsValid(first, &error)) << error;
}

TEST(TracerTest, NestingTracksThreadLocalParent) {
  Tracer tracer;
  int64_t outer = tracer.BeginSpan("outer");
  EXPECT_EQ(tracer.CurrentSpan(), outer);
  int64_t inner = tracer.BeginSpan("inner");
  EXPECT_EQ(tracer.CurrentSpan(), inner);
  tracer.EndSpan(inner);
  EXPECT_EQ(tracer.CurrentSpan(), outer);
  int64_t sibling = tracer.BeginSpan("sibling");
  tracer.EndSpan(sibling);
  tracer.EndSpan(outer);
  EXPECT_EQ(tracer.CurrentSpan(), Tracer::kNoSpan);

  TraceSnapshot snapshot = tracer.Snapshot();
  ASSERT_EQ(snapshot.spans.size(), 3u);
  const SpanRecord& outer_record = snapshot.spans[0];
  const SpanRecord& inner_record = snapshot.spans[1];
  const SpanRecord& sibling_record = snapshot.spans[2];
  EXPECT_EQ(outer_record.parent_id, 0);
  EXPECT_EQ(inner_record.parent_id, outer);
  EXPECT_EQ(sibling_record.parent_id, outer);
  // Virtual clock: begin order is timestamp order, every end is at or
  // after its begin, and the outer span spans its children.
  EXPECT_LT(outer_record.start_us, inner_record.start_us);
  EXPECT_LE(inner_record.start_us, inner_record.end_us);
  EXPECT_GT(outer_record.end_us, sibling_record.end_us);
}

TEST(TracerTest, BeginSpanUnderAttachesExplicitParent) {
  Tracer tracer;
  int64_t root = tracer.BeginSpan("refinement");
  std::vector<int64_t> worker_spans(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tracer, &worker_spans, root, t] {
      int64_t span = tracer.BeginSpanUnder("refine.shard", root);
      tracer.AddAttribute(span, "shard", t);
      tracer.EndSpan(span);
      worker_spans[t] = span;
    });
  }
  for (std::thread& thread : threads) thread.join();
  tracer.EndSpan(root);

  TraceSnapshot snapshot = tracer.Snapshot();
  EXPECT_EQ(snapshot.CountNamed("refine.shard"), 4);
  for (const SpanRecord& span : snapshot.spans) {
    if (span.name != "refine.shard") continue;
    EXPECT_EQ(span.parent_id, root);
    ASSERT_EQ(span.attributes.size(), 1u);
    EXPECT_EQ(span.attributes[0].first, "shard");
  }
}

TEST(TracerTest, NoSpanIsNoOpEverywhere) {
  Tracer tracer;
  tracer.EndSpan(Tracer::kNoSpan);
  tracer.AddAttribute(Tracer::kNoSpan, "ignored", 1);
  EXPECT_TRUE(tracer.Snapshot().empty());
  // ScopedSpan must tolerate a null tracer (observability disabled).
  { Tracer::ScopedSpan span(nullptr, "ignored"); }
}

TEST(TracerTest, SpanCapDropsAndCounts) {
  Tracer::Options options;
  options.max_spans = 2;
  Tracer tracer(options);
  int64_t a = tracer.BeginSpan("a");
  int64_t b = tracer.BeginSpan("b");
  int64_t c = tracer.BeginSpan("c");  // Over the cap.
  EXPECT_NE(a, Tracer::kNoSpan);
  EXPECT_NE(b, Tracer::kNoSpan);
  EXPECT_EQ(c, Tracer::kNoSpan);
  tracer.EndSpan(c);
  tracer.EndSpan(b);
  tracer.EndSpan(a);
  TraceSnapshot snapshot = tracer.Snapshot();
  EXPECT_EQ(snapshot.spans.size(), 2u);
  EXPECT_EQ(snapshot.dropped_spans, 1);
}

TEST(TracerTest, SteadyClockSpansAreOrderedAndComplete) {
  SteadyClock clock;
  Tracer::Options options;
  options.clock = &clock;
  Tracer tracer(options);
  {
    Tracer::ScopedSpan outer(&tracer, "outer");
    Tracer::ScopedSpan inner(&tracer, "inner");
  }
  TraceSnapshot snapshot = tracer.Snapshot();
  ASSERT_EQ(snapshot.spans.size(), 2u);
  for (const SpanRecord& span : snapshot.spans) {
    EXPECT_GE(span.start_us, 0);
    EXPECT_GE(span.end_us, span.start_us);
  }
}

TEST(ChromeTraceTest, ExportIsWellFormedAndComplete) {
  Tracer tracer;
  int64_t outer = tracer.BeginSpan("study");
  int64_t inner = tracer.BeginSpan("geocode");
  tracer.AddAttribute(inner, "cache_hit", 1);
  tracer.EndSpan(inner);
  tracer.EndSpan(outer);

  std::string chrome = tracer.Snapshot().ToChromeTrace();
  std::string error;
  ASSERT_TRUE(JsonIsValid(chrome, &error)) << error << "\n" << chrome;
  // The loadability contract: a traceEvents array of complete ("ph":"X")
  // events with the fields chrome://tracing requires.
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"study\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"geocode\""), std::string::npos);
  EXPECT_NE(chrome.find("\"pid\""), std::string::npos);
  EXPECT_NE(chrome.find("\"tid\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ts\""), std::string::npos);
  EXPECT_NE(chrome.find("\"dur\""), std::string::npos);
  EXPECT_NE(chrome.find("\"cache_hit\""), std::string::npos);
}

TEST(ChromeTraceTest, EmptyTraceIsStillValidJson) {
  Tracer tracer;
  std::string chrome = tracer.Snapshot().ToChromeTrace();
  std::string error;
  EXPECT_TRUE(JsonIsValid(chrome, &error)) << error;
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceSnapshotTest, CountNamed) {
  Tracer tracer;
  for (int i = 0; i < 3; ++i) {
    Tracer::ScopedSpan span(&tracer, "geocode");
  }
  Tracer::ScopedSpan other(&tracer, "grouping");
  TraceSnapshot snapshot = tracer.Snapshot();
  EXPECT_EQ(snapshot.CountNamed("geocode"), 3);
  EXPECT_EQ(snapshot.CountNamed("grouping"), 1);
  EXPECT_EQ(snapshot.CountNamed("absent"), 0);
}

}  // namespace
}  // namespace stir::obs
