#include "twitter/api.h"

#include <gtest/gtest.h>

namespace stir::twitter {
namespace {

Dataset SmallDataset() {
  Dataset dataset;
  for (UserId u = 1; u <= 3; ++u) {
    User user;
    user.id = u;
    user.handle = "u" + std::to_string(u);
    user.total_tweets = 10;
    dataset.AddUser(user);
  }
  auto add = [&](TweetId id, UserId user, SimTime time, std::string text) {
    Tweet tweet;
    tweet.id = id;
    tweet.user = user;
    tweet.time = time;
    tweet.text = std::move(text);
    dataset.AddTweet(tweet);
  };
  add(1, 1, 100, "I love Lady Gaga");
  add(2, 2, 200, "lunch time");
  add(3, 3, 300, "LADY GAGA concert tonight");
  add(4, 1, 400, "earthquake!! shaking here");
  add(5, 2, 500, "lady gaga again");
  return dataset;
}

TEST(SearchApiTest, KeywordFilterNewestFirst) {
  Dataset dataset = SmallDataset();
  SearchApi api(&dataset);
  SearchQuery query;
  query.keyword = "lady gaga";
  auto results = api.Search(query);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 3u);
  EXPECT_EQ((*results)[0]->id, 5);  // newest first
  EXPECT_EQ((*results)[1]->id, 3);
  EXPECT_EQ((*results)[2]->id, 1);
}

TEST(SearchApiTest, MaxResultsCap) {
  Dataset dataset = SmallDataset();
  SearchApi api(&dataset);
  SearchQuery query;
  query.max_results = 2;
  auto results = api.Search(query);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 2u);
  query.max_results = 0;
  EXPECT_TRUE(api.Search(query).status().IsInvalidArgument());
}

TEST(SearchApiTest, TimeWindow) {
  Dataset dataset = SmallDataset();
  SearchApi api(&dataset);
  SearchQuery query;
  query.since = 200;
  query.until = 401;
  auto results = api.Search(query);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 3u);  // ids 2, 3, 4
  for (const Tweet* tweet : *results) {
    EXPECT_GE(tweet->time, 200);
    EXPECT_LT(tweet->time, 401);
  }
}

TEST(SearchApiTest, QuotaExhaustion) {
  Dataset dataset = SmallDataset();
  SearchApi api(&dataset, /*quota=*/2);
  SearchQuery query;
  EXPECT_TRUE(api.Search(query).ok());
  EXPECT_TRUE(api.Search(query).ok());
  EXPECT_TRUE(api.Search(query).status().IsResourceExhausted());
  EXPECT_EQ(api.requests_made(), 2);
}

TEST(StreamingApiTest, FilterDeliversInTimeOrder) {
  Dataset dataset = SmallDataset();
  StreamingApi api(&dataset);
  std::vector<TweetId> seen;
  int64_t count = api.Filter("lady gaga", [&](const Tweet& tweet) {
    seen.push_back(tweet.id);
  });
  EXPECT_EQ(count, 3);
  EXPECT_EQ(seen, (std::vector<TweetId>{1, 3, 5}));
}

TEST(StreamingApiTest, EmptyKeywordDeliversEverything) {
  Dataset dataset = SmallDataset();
  StreamingApi api(&dataset);
  int64_t count = api.Filter("", [](const Tweet&) {});
  EXPECT_EQ(count, 5);
}

TEST(StreamingApiTest, SampleRateApproximatelyHonored) {
  Dataset dataset;
  User user;
  user.id = 1;
  user.total_tweets = 1;
  dataset.AddUser(user);
  for (TweetId i = 0; i < 5000; ++i) {
    Tweet tweet;
    tweet.id = i;
    tweet.user = 1;
    tweet.time = i;
    tweet.text = "x";
    dataset.AddTweet(tweet);
  }
  StreamingApi api(&dataset);
  Rng rng(1);
  int64_t count = api.Sample(0.1, rng, [](const Tweet&) {});
  EXPECT_NEAR(static_cast<double>(count), 500.0, 75.0);
}

}  // namespace
}  // namespace stir::twitter
