#include "twitter/api.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/fault.h"

namespace stir::twitter {
namespace {

Dataset SmallDataset() {
  Dataset dataset;
  for (UserId u = 1; u <= 3; ++u) {
    User user;
    user.id = u;
    user.handle = "u" + std::to_string(u);
    user.total_tweets = 10;
    dataset.AddUser(user);
  }
  auto add = [&](TweetId id, UserId user, SimTime time, std::string text) {
    Tweet tweet;
    tweet.id = id;
    tweet.user = user;
    tweet.time = time;
    tweet.text = std::move(text);
    dataset.AddTweet(tweet);
  };
  add(1, 1, 100, "I love Lady Gaga");
  add(2, 2, 200, "lunch time");
  add(3, 3, 300, "LADY GAGA concert tonight");
  add(4, 1, 400, "earthquake!! shaking here");
  add(5, 2, 500, "lady gaga again");
  return dataset;
}

TEST(SearchApiTest, KeywordFilterNewestFirst) {
  Dataset dataset = SmallDataset();
  SearchApi api(&dataset);
  SearchQuery query;
  query.keyword = "lady gaga";
  auto results = api.Search(query);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 3u);
  EXPECT_EQ((*results)[0]->id, 5);  // newest first
  EXPECT_EQ((*results)[1]->id, 3);
  EXPECT_EQ((*results)[2]->id, 1);
}

TEST(SearchApiTest, MaxResultsCap) {
  Dataset dataset = SmallDataset();
  SearchApi api(&dataset);
  SearchQuery query;
  query.max_results = 2;
  auto results = api.Search(query);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 2u);
  query.max_results = 0;
  EXPECT_TRUE(api.Search(query).status().IsInvalidArgument());
}

TEST(SearchApiTest, TimeWindow) {
  Dataset dataset = SmallDataset();
  SearchApi api(&dataset);
  SearchQuery query;
  query.since = 200;
  query.until = 401;
  auto results = api.Search(query);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 3u);  // ids 2, 3, 4
  for (const Tweet* tweet : *results) {
    EXPECT_GE(tweet->time, 200);
    EXPECT_LT(tweet->time, 401);
  }
}

TEST(SearchApiTest, QuotaExhaustion) {
  Dataset dataset = SmallDataset();
  SearchApi api(&dataset, /*quota=*/2);
  SearchQuery query;
  EXPECT_TRUE(api.Search(query).ok());
  EXPECT_TRUE(api.Search(query).ok());
  EXPECT_TRUE(api.Search(query).status().IsResourceExhausted());
  EXPECT_EQ(api.requests_made(), 2);
}

// The quota is spent through a CAS loop: racing threads must never
// overspend it or lose a grant, and only granted attempts may count as
// requests made.
TEST(SearchApiTest, QuotaExactUnderConcurrency) {
  Dataset dataset = SmallDataset();
  SearchApiOptions options;
  options.quota = 50;
  SearchApi api(&dataset, options);
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 20;  // 160 attempts for 50 grants

  std::atomic<int64_t> granted{0}, exhausted{0}, other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      SearchQuery query;
      for (int i = 0; i < kCallsPerThread; ++i) {
        auto result = api.Search(query);
        if (result.ok()) {
          ++granted;
        } else if (result.status().IsResourceExhausted()) {
          ++exhausted;
        } else {
          ++other;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(granted.load(), 50);
  EXPECT_EQ(exhausted.load(), int64_t{kThreads} * kCallsPerThread - 50);
  EXPECT_EQ(api.requests_made(), 50);
}

// A permanent fault burns the whole retry budget: one terminal failure,
// max_attempts - 1 retries, and every attempt drawn from the injector —
// without ever charging the endpoint.
TEST(SearchApiTest, RetryAccountingOnPermanentFault) {
  Dataset dataset = SmallDataset();
  common::FaultInjectorOptions fault_options;
  fault_options.error_rate = 1.0;
  common::FaultInjector injector(fault_options);
  SearchApiOptions options;
  options.fault_injector = &injector;
  options.retry.max_attempts = 3;
  SearchApi api(&dataset, options);

  SearchQuery query;
  auto result = api.Search(query);
  EXPECT_TRUE(result.status().IsUnavailable());
  EXPECT_EQ(api.num_faulted(), 1);
  EXPECT_EQ(api.num_retries(), 2);
  EXPECT_EQ(injector.faults_injected(), 3);  // one draw per attempt
  EXPECT_EQ(api.requests_made(), 0);  // never reached the endpoint
  EXPECT_GT(api.simulated_backoff_ms(), 0);
}

// At a partial error rate the retry loop recovers some requests; across
// many calls the accounting must balance exactly: every injected fault is
// either retried past or terminal.
TEST(SearchApiTest, RetryAccountingBalancesAtPartialErrorRate) {
  Dataset dataset = SmallDataset();
  common::FaultInjectorOptions fault_options;
  fault_options.error_rate = 0.5;
  fault_options.seed = 21;
  common::FaultInjector injector(fault_options);
  SearchApiOptions options;
  options.fault_injector = &injector;
  options.retry.max_attempts = 3;
  SearchApi api(&dataset, options);

  SearchQuery query;
  int64_t ok = 0, unavailable = 0;
  for (int i = 0; i < 200; ++i) {
    auto result = api.Search(query);
    if (result.ok()) {
      ++ok;
    } else {
      EXPECT_TRUE(result.status().IsUnavailable());
      ++unavailable;
    }
  }
  EXPECT_GT(ok, 0);           // retries recover most calls at p=0.5
  EXPECT_GT(unavailable, 0);  // but 0.5^3 of them still die
  EXPECT_GT(api.num_retries(), 0);
  EXPECT_EQ(api.num_faulted(), unavailable);
  EXPECT_EQ(injector.faults_injected(), api.num_retries() + api.num_faulted());
  EXPECT_EQ(api.requests_made(), ok);
}

// Streaming drops are silent but tallied: delivered plus dropped must
// equal the matching total, and the drop schedule replays identically.
TEST(StreamingApiTest, DropAccountingBalancesAndReplays) {
  Dataset dataset;
  User user;
  user.id = 1;
  user.total_tweets = 1;
  dataset.AddUser(user);
  for (TweetId i = 0; i < 2000; ++i) {
    Tweet tweet;
    tweet.id = i;
    tweet.user = 1;
    tweet.time = i;
    tweet.text = "x";
    dataset.AddTweet(tweet);
  }
  common::FaultInjectorOptions fault_options;
  fault_options.error_rate = 0.3;
  fault_options.seed = 5;
  common::FaultInjector injector(fault_options);
  StreamingApi api(&dataset, &injector);

  std::vector<TweetId> first;
  int64_t delivered = api.Filter("", [&](const Tweet& tweet) {
    first.push_back(tweet.id);
  });
  EXPECT_GT(delivered, 0);
  EXPECT_GT(api.deliveries_dropped(), 0);
  EXPECT_EQ(delivered + api.deliveries_dropped(), 2000);

  // Same injector, same stream: the replay drops the same tweets.
  int64_t dropped_before = api.deliveries_dropped();
  std::vector<TweetId> second;
  int64_t replayed = api.Filter("", [&](const Tweet& tweet) {
    second.push_back(tweet.id);
  });
  EXPECT_EQ(replayed, delivered);
  EXPECT_EQ(second, first);
  EXPECT_EQ(api.deliveries_dropped(), 2 * dropped_before);
}

TEST(StreamingApiTest, FilterDeliversInTimeOrder) {
  Dataset dataset = SmallDataset();
  StreamingApi api(&dataset);
  std::vector<TweetId> seen;
  int64_t count = api.Filter("lady gaga", [&](const Tweet& tweet) {
    seen.push_back(tweet.id);
  });
  EXPECT_EQ(count, 3);
  EXPECT_EQ(seen, (std::vector<TweetId>{1, 3, 5}));
}

TEST(StreamingApiTest, EmptyKeywordDeliversEverything) {
  Dataset dataset = SmallDataset();
  StreamingApi api(&dataset);
  int64_t count = api.Filter("", [](const Tweet&) {});
  EXPECT_EQ(count, 5);
}

TEST(StreamingApiTest, SampleRateApproximatelyHonored) {
  Dataset dataset;
  User user;
  user.id = 1;
  user.total_tweets = 1;
  dataset.AddUser(user);
  for (TweetId i = 0; i < 5000; ++i) {
    Tweet tweet;
    tweet.id = i;
    tweet.user = 1;
    tweet.time = i;
    tweet.text = "x";
    dataset.AddTweet(tweet);
  }
  StreamingApi api(&dataset);
  Rng rng(1);
  int64_t count = api.Sample(0.1, rng, [](const Tweet&) {});
  EXPECT_NEAR(static_cast<double>(count), 500.0, 75.0);
}

}  // namespace
}  // namespace stir::twitter
