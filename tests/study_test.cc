#include "core/study.h"

#include <gtest/gtest.h>

#include "twitter/generator.h"

namespace stir::core {
namespace {

class StudyTest : public ::testing::Test {
 protected:
  StudyTest() : db_(geo::AdminDb::KoreanDistricts()) {}

  twitter::GeneratedData Generate(double scale) {
    twitter::DatasetGenerator generator(
        &db_, twitter::DatasetGenerator::KoreanConfig(scale));
    return generator.Generate();
  }

  const geo::AdminDb& db_;
};

TEST_F(StudyTest, SharesAndCountsAreConsistent) {
  twitter::GeneratedData data = Generate(0.05);
  CorrelationStudy study(&db_);
  StudyResult result = study.Run(data.dataset);

  int64_t user_total = 0;
  int64_t tweet_total = 0;
  double user_share_total = 0.0;
  for (int g = 0; g < kNumTopKGroups; ++g) {
    user_total += result.groups[g].users;
    tweet_total += result.groups[g].gps_tweets;
    user_share_total += result.groups[g].user_share;
    EXPECT_GE(result.groups[g].avg_tweet_locations, 0.0);
  }
  EXPECT_EQ(user_total, result.final_users);
  EXPECT_EQ(static_cast<size_t>(result.final_users),
            result.groupings.size());
  EXPECT_NEAR(user_share_total, 1.0, 1e-9);
  EXPECT_EQ(result.funnel.final_users, result.final_users);
  // Every geocoded GPS tweet of a final user is attributed to a group.
  int64_t grouping_tweets = 0;
  for (const UserGrouping& g : result.groupings) {
    grouping_tweets += g.gps_tweet_count;
  }
  EXPECT_EQ(tweet_total, grouping_tweets);
}

TEST_F(StudyTest, DeterministicAcrossRuns) {
  twitter::GeneratedData data = Generate(0.02);
  CorrelationStudy study(&db_);
  StudyResult a = study.Run(data.dataset);
  StudyResult b = study.Run(data.dataset);
  EXPECT_EQ(a.final_users, b.final_users);
  for (int g = 0; g < kNumTopKGroups; ++g) {
    EXPECT_EQ(a.groups[g].users, b.groups[g].users);
    EXPECT_EQ(a.groups[g].gps_tweets, b.groups[g].gps_tweets);
  }
}

TEST_F(StudyTest, PaperShapeHoldsAtScale) {
  // The headline claims (§IV) must hold on the default synthetic corpus:
  //  * Top-1 is the largest group; Top-1+Top-2 ~ half of all users.
  //  * None is roughly 30%.
  //  * Users average ~3 distinct tweet districts.
  //  * Avg district count grows from Top-1 through Top-6+.
  twitter::GeneratedData data = Generate(0.3);
  CorrelationStudy study(&db_);
  StudyResult result = study.Run(data.dataset);
  ASSERT_GT(result.final_users, 200);

  const GroupStats* groups = result.groups;
  double top12 = groups[0].user_share + groups[1].user_share;
  EXPECT_GT(groups[0].user_share, 0.30);
  EXPECT_GT(top12, 0.42);
  EXPECT_LT(top12, 0.68);
  double none = groups[static_cast<int>(TopKGroup::kNone)].user_share;
  EXPECT_GT(none, 0.22);
  EXPECT_LT(none, 0.40);
  EXPECT_GT(result.overall_avg_locations, 2.3);
  EXPECT_LT(result.overall_avg_locations, 4.0);
  // Fig. 6 trend: increasing through the Top-k groups.
  EXPECT_LT(groups[0].avg_tweet_locations, groups[2].avg_tweet_locations);
  EXPECT_LT(groups[2].avg_tweet_locations,
            groups[static_cast<int>(TopKGroup::kTopPlus)]
                .avg_tweet_locations);
  // None users have fewer spots than Top-1 users (low-mobility story).
  EXPECT_LT(groups[static_cast<int>(TopKGroup::kNone)].avg_tweet_locations,
            groups[0].avg_tweet_locations);
}

TEST_F(StudyTest, FunnelShapeMatchesPaperRatios) {
  twitter::GeneratedData data = Generate(0.3);
  CorrelationStudy study(&db_);
  StudyResult result = study.Run(data.dataset);
  const FunnelStats& funnel = result.funnel;
  double well_defined_ratio =
      static_cast<double>(funnel.well_defined_users) /
      static_cast<double>(funnel.crawled_users);
  // Paper: 52.2k -> ~30k (57%).
  EXPECT_GT(well_defined_ratio, 0.50);
  EXPECT_LT(well_defined_ratio, 0.70);
  // Paper: ~1k final out of 52.2k (~2%).
  double final_ratio = static_cast<double>(funnel.final_users) /
                       static_cast<double>(funnel.crawled_users);
  EXPECT_GT(final_ratio, 0.008);
  EXPECT_LT(final_ratio, 0.05);
  // GPS tweets are a sliver of the corpus (paper: tens of k out of 11M).
  double gps_ratio = static_cast<double>(funnel.gps_tweets) /
                     static_cast<double>(funnel.total_tweets);
  EXPECT_LT(gps_ratio, 0.01);
}

TEST_F(StudyTest, ReportStringsRender) {
  twitter::GeneratedData data = Generate(0.02);
  CorrelationStudy study(&db_);
  StudyResult result = study.Run(data.dataset);
  std::string table = result.GroupTableString();
  EXPECT_NE(table.find("Top-1"), std::string::npos);
  EXPECT_NE(table.find("None"), std::string::npos);
  EXPECT_NE(table.find("overall avg"), std::string::npos);
  std::string funnel = result.FunnelString();
  EXPECT_NE(funnel.find("crawled users"), std::string::npos);
  EXPECT_NE(funnel.find("final users"), std::string::npos);
}

TEST_F(StudyTest, EmptyDatasetYieldsEmptyResult) {
  twitter::Dataset empty;
  CorrelationStudy study(&db_);
  StudyResult result = study.Run(empty);
  EXPECT_EQ(result.final_users, 0);
  EXPECT_EQ(result.funnel.crawled_users, 0);
  EXPECT_DOUBLE_EQ(result.overall_avg_locations, 0.0);
}

TEST_F(StudyTest, GroupAccessorMatchesArray) {
  twitter::GeneratedData data = Generate(0.02);
  CorrelationStudy study(&db_);
  StudyResult result = study.Run(data.dataset);
  EXPECT_EQ(result.group(TopKGroup::kTop1).users, result.groups[0].users);
  EXPECT_EQ(result.group(TopKGroup::kNone).users, result.groups[6].users);
}

TEST_F(StudyTest, StudyConfigCarriesFaultAndRetryKnobs) {
  // StudyConfig is the one options surface (the CorrelationStudyOptions
  // shim is gone): its fault/retry knobs must reach the geocoder, and a
  // copied config must reproduce the run byte for byte.
  twitter::GeneratedData data = Generate(0.02);
  StudyConfig config;
  config.threads = 2;
  config.fault.error_rate = 0.1;
  config.retry.max_attempts = 2;
  EXPECT_FALSE(config.obs.metrics_enabled());

  StudyResult result = CorrelationStudy(&db_, config).Run(data.dataset);
  EXPECT_TRUE(result.funnel.fault_injection_enabled);
  EXPECT_GT(result.funnel.geocode_faulted, 0);

  StudyConfig copy = config;
  StudyResult again = CorrelationStudy(&db_, copy).Run(data.dataset);
  EXPECT_EQ(result.FunnelString(), again.FunnelString());
  EXPECT_EQ(result.GroupTableString(), again.GroupTableString());
}

TEST_F(StudyTest, ObservabilityDoesNotPerturbResults) {
  // The byte-identical guarantee: with metrics + tracing on, the study's
  // human-readable output must match the uninstrumented run exactly.
  twitter::GeneratedData data = Generate(0.02);
  StudyConfig plain;
  plain.threads = 4;
  StudyResult baseline = CorrelationStudy(&db_, plain).Run(data.dataset);

  StudyConfig observed = plain;
  observed.obs.enable_metrics = true;
  observed.obs.enable_trace = true;
  StudyResult instrumented =
      CorrelationStudy(&db_, observed).Run(data.dataset);

  EXPECT_EQ(baseline.FunnelString(), instrumented.FunnelString());
  EXPECT_EQ(baseline.GroupTableString(), instrumented.GroupTableString());
  EXPECT_TRUE(baseline.metrics.empty());
  EXPECT_TRUE(baseline.trace.empty());
  EXPECT_FALSE(instrumented.metrics.empty());
  EXPECT_FALSE(instrumented.trace.empty());
}

TEST_F(StudyTest, MetricsDropCountersMatchFunnel) {
  twitter::GeneratedData data = Generate(0.02);
  StudyConfig config;
  config.threads = 4;
  config.obs.enable_metrics = true;
  config.fault.error_rate = 0.2;
  config.fault.seed = 7;
  StudyResult result = CorrelationStudy(&db_, config).Run(data.dataset);
  const obs::MetricsSnapshot& m = result.metrics;
  const FunnelStats& funnel = result.funnel;

  EXPECT_EQ(m.counter("funnel.users.crawled"), funnel.crawled_users);
  EXPECT_EQ(m.counter("funnel.users.final"), funnel.final_users);
  // Profile-stage drops sum exactly to crawled - well_defined.
  int64_t profile_drops = m.counter("funnel.drop.profile_empty") +
                          m.counter("funnel.drop.profile_vague") +
                          m.counter("funnel.drop.profile_insufficient") +
                          m.counter("funnel.drop.profile_ambiguous");
  EXPECT_EQ(profile_drops,
            funnel.crawled_users - funnel.well_defined_users);
  // User-stage drop closes the funnel to the final sample.
  EXPECT_EQ(m.counter("funnel.drop.no_geocoded_tweets"),
            funnel.well_defined_users - funnel.final_users);
  EXPECT_EQ(m.counter("funnel.drop.geocode_failure"),
            funnel.geocode_failures);
  // Resilience counters mirror the funnel's fault accounting.
  EXPECT_EQ(m.counter("funnel.resilience.faulted"), funnel.geocode_faulted);
  EXPECT_EQ(m.counter("funnel.resilience.retried"), funnel.geocode_retried);
  EXPECT_EQ(m.counter("funnel.resilience.degraded"),
            funnel.geocode_degraded);
}

TEST_F(StudyTest, TraceCoversPipelineStages) {
  twitter::GeneratedData data = Generate(0.02);
  StudyConfig config;
  config.threads = 4;
  config.obs.enable_trace = true;
  StudyResult result = CorrelationStudy(&db_, config).Run(data.dataset);
  const obs::TraceSnapshot& trace = result.trace;
  EXPECT_EQ(trace.CountNamed("study"), 1);
  EXPECT_EQ(trace.CountNamed("refinement"), 1);
  EXPECT_EQ(trace.CountNamed("grouping"), 1);
  EXPECT_EQ(trace.CountNamed("aggregate"), 1);
  EXPECT_GT(trace.CountNamed("refine.shard"), 0);
  EXPECT_GT(trace.CountNamed("geocode"), 0);
  // Every span ended before the snapshot.
  for (const obs::SpanRecord& span : trace.spans) {
    EXPECT_GE(span.end_us, span.start_us) << span.name;
  }

  // The coarse tier alone when per-lookup spans are off.
  config.obs.trace_geocode_calls = false;
  StudyResult coarse = CorrelationStudy(&db_, config).Run(data.dataset);
  EXPECT_EQ(coarse.trace.CountNamed("geocode"), 0);
  EXPECT_EQ(coarse.trace.CountNamed("study"), 1);
}

}  // namespace
}  // namespace stir::core
