#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/json.h"

namespace stir::obs {
namespace {

TEST(CounterTest, ExactUnderEightThreads) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.events");
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncrementsPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->value(),
            static_cast<int64_t>(kThreads) * kIncrementsPerThread);
  EXPECT_EQ(registry.Snapshot().counter("test.events"),
            static_cast<int64_t>(kThreads) * kIncrementsPerThread);
}

TEST(CounterTest, RegistryReturnsStablePointer) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("stable");
  first->Increment(7);
  EXPECT_EQ(registry.GetCounter("stable"), first);
  EXPECT_EQ(registry.GetCounter("stable")->value(), 7);
}

TEST(CounterTest, KindClashReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("name"), nullptr);
  EXPECT_EQ(registry.GetGauge("name"), nullptr);
  EXPECT_EQ(registry.GetHistogram("name", {1, 2}), nullptr);
}

TEST(GaugeTest, SetAddAndHighWaterMark) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("depth");
  gauge->Set(10);
  gauge->Add(-3);
  EXPECT_EQ(gauge->value(), 7);
  Gauge* high = registry.GetGauge("depth.max");
  high->SetMax(5);
  high->SetMax(12);
  high->SetMax(9);  // Lower candidate must not regress the mark.
  EXPECT_EQ(high->value(), 12);
}

TEST(HistogramTest, BucketBoundariesAreInclusive) {
  MetricsRegistry registry;
  // Buckets: <=10, <=100, <=1000, overflow.
  Histogram* histogram = registry.GetHistogram("lat", {10, 100, 1000});
  histogram->Record(0);
  histogram->Record(10);    // On the bound -> first bucket (v <= bound).
  histogram->Record(11);    // Just past -> second bucket.
  histogram->Record(100);
  histogram->Record(1000);
  histogram->Record(1001);  // Overflow bucket.
  EXPECT_EQ(histogram->bucket(0), 2);
  EXPECT_EQ(histogram->bucket(1), 2);
  EXPECT_EQ(histogram->bucket(2), 1);
  EXPECT_EQ(histogram->bucket(3), 1);
  EXPECT_EQ(histogram->count(), 6);
  EXPECT_EQ(histogram->sum(), 0 + 10 + 11 + 100 + 1000 + 1001);
}

TEST(HistogramTest, ExactUnderConcurrentRecords) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("conc", {4});
  constexpr int kThreads = 8;
  constexpr int kSamplesPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram] {
      for (int i = 0; i < kSamplesPerThread; ++i) {
        histogram->Record(i % 10);  // Half <= 4, half > 4.
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  constexpr int64_t kTotal =
      static_cast<int64_t>(kThreads) * kSamplesPerThread;
  EXPECT_EQ(histogram->count(), kTotal);
  EXPECT_EQ(histogram->bucket(0), kTotal / 2);
  EXPECT_EQ(histogram->bucket(1), kTotal / 2);
}

TEST(HistogramTest, BadBoundsReturnNull) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetHistogram("empty", {}), nullptr);
  EXPECT_EQ(registry.GetHistogram("unsorted", {5, 3}), nullptr);
  EXPECT_EQ(registry.GetHistogram("dup", {3, 3}), nullptr);
}

TEST(HistogramTest, ReRegistrationKeepsOriginalBounds) {
  MetricsRegistry registry;
  Histogram* first = registry.GetHistogram("h", {1, 2, 3});
  Histogram* again = registry.GetHistogram("h", {100, 200});
  EXPECT_EQ(again, first);
  EXPECT_EQ(again->bounds(), (std::vector<int64_t>{1, 2, 3}));
}

TEST(NullHelpersTest, TolerateNullSinks) {
  IncrementCounter(nullptr);
  IncrementCounter(nullptr, 42);
  RecordSample(nullptr, 7);  // Must not crash.
}

TEST(SnapshotTest, OrderedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("b.count")->Increment(2);
  registry.GetCounter("a.count")->Increment(1);
  registry.GetGauge("depth")->Set(5);
  registry.GetHistogram("lat", {10, 20})->Record(15);

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_FALSE(snapshot.empty());
  EXPECT_EQ(snapshot.counter("a.count"), 1);
  EXPECT_EQ(snapshot.counter("b.count"), 2);
  EXPECT_EQ(snapshot.counter("absent"), 0);
  EXPECT_EQ(snapshot.gauge("depth"), 5);
  ASSERT_EQ(snapshot.histograms.count("lat"), 1u);
  const MetricsSnapshot::HistogramData& data = snapshot.histograms.at("lat");
  EXPECT_EQ(data.counts, (std::vector<int64_t>{0, 1, 0}));
  EXPECT_EQ(data.count, 1);
  EXPECT_EQ(data.sum, 15);
  // std::map iteration gives name-sorted JSON -> deterministic export.
  std::string json = snapshot.ToJson();
  EXPECT_LT(json.find("a.count"), json.find("b.count"));
}

TEST(SnapshotTest, JsonIsWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("with \"quotes\" and \\slashes\\")->Increment();
  registry.GetGauge("g")->Set(-3);
  registry.GetHistogram("h", {1, 10, 100})->Record(12);
  std::string json = registry.Snapshot().ToJson();
  std::string error;
  EXPECT_TRUE(JsonIsValid(json, &error)) << error << "\n" << json;
  std::string empty_json = MetricsRegistry().Snapshot().ToJson();
  EXPECT_TRUE(JsonIsValid(empty_json, &error)) << error;
}

TEST(JsonLintTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonIsValid("{}"));
  EXPECT_TRUE(JsonIsValid("[1, 2.5, -3e2, \"x\", true, false, null]"));
  EXPECT_TRUE(JsonIsValid("{\"a\": {\"b\": [\"\\u00e9\\n\"]}}"));
  EXPECT_FALSE(JsonIsValid(""));
  EXPECT_FALSE(JsonIsValid("{"));
  EXPECT_FALSE(JsonIsValid("{\"a\": 1,}"));
  EXPECT_FALSE(JsonIsValid("[1 2]"));
  EXPECT_FALSE(JsonIsValid("01"));
  EXPECT_FALSE(JsonIsValid("\"unterminated"));
  EXPECT_FALSE(JsonIsValid("{} trailing"));
}

}  // namespace
}  // namespace stir::obs
