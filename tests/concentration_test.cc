#include "core/concentration.h"

#include <gtest/gtest.h>

#include "core/study.h"
#include "twitter/generator.h"

namespace stir::core {
namespace {

UserGrouping GroupingWithCounts(twitter::UserId user,
                                const std::vector<int64_t>& counts,
                                int match_rank) {
  UserGrouping grouping;
  grouping.user = user;
  grouping.match_rank = match_rank;
  grouping.group = GroupForRank(match_rank);
  for (size_t i = 0; i < counts.size(); ++i) {
    MergedLocationString merged;
    merged.record.user = user;
    merged.record.profile_state = "S";
    merged.record.profile_county = "P";
    merged.record.tweet_state = "S";
    merged.record.tweet_county = "C" + std::to_string(i);
    if (match_rank > 0 && static_cast<int>(i) == match_rank - 1) {
      merged.record.tweet_county = "P";  // the matched row
      grouping.matched_tweet_count = counts[i];
    }
    merged.count = counts[i];
    grouping.gps_tweet_count += counts[i];
    grouping.ordered.push_back(std::move(merged));
  }
  return grouping;
}

TEST(ConcentrationTest, SingleDistrictUser) {
  ConcentrationMetrics m =
      ComputeConcentration(GroupingWithCounts(1, {10}, 1));
  EXPECT_DOUBLE_EQ(m.entropy_bits, 0.0);
  EXPECT_DOUBLE_EQ(m.normalized_entropy, 0.0);
  EXPECT_DOUBLE_EQ(m.gini, 0.0);
  EXPECT_DOUBLE_EQ(m.top_share, 1.0);
  EXPECT_DOUBLE_EQ(m.matched_share, 1.0);
}

TEST(ConcentrationTest, UniformDistributionMaximizesEntropy) {
  ConcentrationMetrics m =
      ComputeConcentration(GroupingWithCounts(1, {5, 5, 5, 5}, 1));
  EXPECT_NEAR(m.entropy_bits, 2.0, 1e-12);  // log2(4)
  EXPECT_NEAR(m.normalized_entropy, 1.0, 1e-12);
  EXPECT_NEAR(m.gini, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.top_share, 0.25);
}

TEST(ConcentrationTest, SkewRaisesGiniLowersEntropy) {
  ConcentrationMetrics skewed =
      ComputeConcentration(GroupingWithCounts(1, {97, 1, 1, 1}, 1));
  ConcentrationMetrics flat =
      ComputeConcentration(GroupingWithCounts(2, {25, 25, 25, 25}, 1));
  EXPECT_LT(skewed.entropy_bits, flat.entropy_bits);
  EXPECT_GT(skewed.gini, flat.gini);
  EXPECT_GT(skewed.top_share, flat.top_share);
  EXPECT_GT(skewed.gini, 0.6);
}

TEST(ConcentrationTest, MatchedShareForNoneIsZero) {
  ConcentrationMetrics m =
      ComputeConcentration(GroupingWithCounts(1, {4, 3}, -1));
  EXPECT_DOUBLE_EQ(m.matched_share, 0.0);
}

TEST(ConcentrationTest, AnalyzeRequiresThreeUsers) {
  std::vector<UserGrouping> two = {GroupingWithCounts(1, {3}, 1),
                                   GroupingWithCounts(2, {3}, 1)};
  EXPECT_TRUE(AnalyzeConcentration(two).status().IsInvalidArgument());
}

TEST(ConcentrationTest, AnalyzeSeparatesHandCraftedGroups) {
  std::vector<UserGrouping> groupings = {
      GroupingWithCounts(1, {20, 2}, 1),      // concentrated Top-1
      GroupingWithCounts(2, {19, 3}, 1),      // concentrated Top-1
      GroupingWithCounts(3, {8, 7, 6, 5}, 4), // dispersed Top-4
      GroupingWithCounts(4, {7, 7, 6, 6}, 4), // dispersed Top-4
  };
  auto result = AnalyzeConcentration(groupings);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->mean_entropy[0],
            result->mean_entropy[static_cast<int>(TopKGroup::kTop4)]);
  EXPECT_GT(result->mean_matched_share[0],
            result->mean_matched_share[static_cast<int>(TopKGroup::kTop4)]);
  EXPECT_GT(result->rank_entropy_spearman, 0.8);
  EXPECT_GT(result->share_rank_spearman, 0.8);
}

TEST(ConcentrationTest, EndToEndOnSyntheticCorpus) {
  // The corpus-level extension claim: deeper matched ranks correlate
  // with more dispersed tweeting, and matched share anti-correlates
  // with rank.
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  twitter::DatasetGenerator generator(
      &db, twitter::DatasetGenerator::KoreanConfig(0.1));
  auto data = generator.Generate();
  CorrelationStudy study(&db);
  StudyResult result = study.Run(data.dataset);
  auto analysis = AnalyzeConcentration(result.groupings);
  ASSERT_TRUE(analysis.ok());
  EXPECT_GT(analysis->rank_entropy_spearman, 0.3);
  EXPECT_GT(analysis->share_rank_spearman, 0.5);
  // Top-1 users concentrate more than Top-3 users.
  EXPECT_LT(analysis->mean_entropy[0], analysis->mean_entropy[2]);
}

}  // namespace
}  // namespace stir::core
