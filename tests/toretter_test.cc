#include "event/toretter.h"

#include <gtest/gtest.h>

namespace stir::event {
namespace {

class ToretterTest : public ::testing::Test {
 protected:
  ToretterTest() : db_(geo::AdminDb::KoreanDistricts()) {}

  WitnessReport Report(twitter::UserId user, SimTime time,
                       std::optional<geo::LatLng> gps = std::nullopt) {
    WitnessReport report;
    report.user = user;
    report.time = time;
    report.gps = gps;
    report.text = "earthquake!!";
    return report;
  }

  const geo::AdminDb& db_;
};

TEST_F(ToretterTest, KeywordMatching) {
  ToretterDetector detector(&db_, ToretterOptions{});
  EXPECT_TRUE(detector.MatchesKeywords("EARTHQUAKE now"));
  EXPECT_TRUE(detector.MatchesKeywords("everything is shaking here"));
  EXPECT_FALSE(detector.MatchesKeywords("nice lunch today"));
}

TEST_F(ToretterTest, DetectOnsetThreshold) {
  ToretterOptions options;
  options.min_reports = 3;
  options.window_seconds = 100;
  ToretterDetector detector(&db_, options);

  // Two reports close together: below threshold.
  std::vector<WitnessReport> sparse = {Report(1, 0), Report(2, 50)};
  EXPECT_FALSE(detector.DetectOnset(sparse).detected);

  // Third within the window triggers.
  std::vector<WitnessReport> burst = {Report(1, 0), Report(2, 50),
                                      Report(3, 99)};
  DetectionResult result = detector.DetectOnset(burst);
  EXPECT_TRUE(result.detected);
  EXPECT_EQ(result.alarm_time, 99);
  EXPECT_EQ(result.reports_at_alarm, 3);

  // Three reports spread out over > window: no alarm.
  std::vector<WitnessReport> slow = {Report(1, 0), Report(2, 150),
                                     Report(3, 400)};
  EXPECT_FALSE(detector.DetectOnset(slow).detected);
}

TEST_F(ToretterTest, EstimateFailsWithoutMeasurements) {
  ToretterOptions options;
  options.source = LocationSource::kGpsOnly;
  ToretterDetector detector(&db_, options);
  Rng rng(1);
  std::vector<WitnessReport> no_gps = {Report(1, 0), Report(2, 10)};
  EXPECT_TRUE(detector.EstimateLocation(no_gps, rng)
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(ToretterTest, GpsCentroidEstimate) {
  ToretterOptions options;
  options.source = LocationSource::kGpsOnly;
  options.estimator = LocationEstimator::kWeightedCentroid;
  ToretterDetector detector(&db_, options);
  Rng rng(2);
  std::vector<WitnessReport> reports = {
      Report(1, 0, geo::LatLng{36.0, 128.0}),
      Report(2, 1, geo::LatLng{36.2, 128.2}),
      Report(3, 2, geo::LatLng{36.4, 128.4}),
  };
  auto estimate = detector.EstimateLocation(reports, rng);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate->location.lat, 36.2, 1e-9);
  EXPECT_NEAR(estimate->location.lng, 128.2, 1e-9);
  EXPECT_EQ(estimate->measurements_used, 3);
}

TEST_F(ToretterTest, ProfileFallbackUsesProfileRegions) {
  ToretterOptions options;
  options.source = LocationSource::kProfileOnly;
  options.estimator = LocationEstimator::kWeightedCentroid;
  ToretterDetector detector(&db_, options);
  std::unordered_map<twitter::UserId, geo::RegionId> profiles;
  auto mapo = db_.FindCounty("Seoul", "Mapo-gu");
  ASSERT_TRUE(mapo.ok());
  profiles[1] = *mapo;
  detector.set_profile_regions(&profiles);
  Rng rng(3);
  // User 2 has no known profile region: skipped.
  std::vector<WitnessReport> reports = {Report(1, 0), Report(2, 1)};
  auto estimate = detector.EstimateLocation(reports, rng);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate->measurements_used, 1);
  geo::LatLng mapo_centroid = db_.region(*mapo).centroid;
  EXPECT_NEAR(estimate->location.lat, mapo_centroid.lat, 1e-9);
}

TEST_F(ToretterTest, ReliabilityWeightingDownweightsNoneUsers) {
  // Two profile reports: user 1 (reliable, Top-1) says Pohang, user 2
  // (None group) says Jeju. The weighted estimate must sit much closer
  // to Pohang than the unweighted one.
  auto pohang = db_.FindCounty("Gyeongsangbuk-do", "Pohang-si");
  auto jeju = db_.FindCounty("Jeju-do", "Jeju-si");
  ASSERT_TRUE(pohang.ok());
  ASSERT_TRUE(jeju.ok());
  std::unordered_map<twitter::UserId, geo::RegionId> profiles;
  profiles[1] = *pohang;
  profiles[2] = *jeju;

  core::UserGrouping reliable;
  reliable.user = 1;
  reliable.group = core::TopKGroup::kTop1;
  reliable.matched_tweet_count = 19;
  reliable.gps_tweet_count = 20;
  core::UserGrouping unreliable;
  unreliable.user = 2;
  unreliable.group = core::TopKGroup::kNone;
  unreliable.matched_tweet_count = 0;
  unreliable.gps_tweet_count = 20;
  core::ReliabilityModel reliability =
      core::ReliabilityModel::FromGroupings({reliable, unreliable});

  std::vector<WitnessReport> reports = {Report(1, 0), Report(2, 1)};

  ToretterOptions unweighted;
  unweighted.source = LocationSource::kProfileOnly;
  unweighted.estimator = LocationEstimator::kWeightedCentroid;
  ToretterDetector plain(&db_, unweighted);
  plain.set_profile_regions(&profiles);

  ToretterOptions weighted_options = unweighted;
  weighted_options.reliability_weighted = true;
  ToretterDetector weighted(&db_, weighted_options);
  weighted.set_profile_regions(&profiles);
  weighted.set_reliability(&reliability);

  Rng rng(4);
  auto plain_estimate = plain.EstimateLocation(reports, rng);
  auto weighted_estimate = weighted.EstimateLocation(reports, rng);
  ASSERT_TRUE(plain_estimate.ok());
  ASSERT_TRUE(weighted_estimate.ok());

  geo::LatLng pohang_c = db_.region(*pohang).centroid;
  EXPECT_LT(geo::HaversineKm(weighted_estimate->location, pohang_c),
            geo::HaversineKm(plain_estimate->location, pohang_c));
  EXPECT_LT(geo::HaversineKm(weighted_estimate->location, pohang_c), 40.0);
}

TEST_F(ToretterTest, KalmanAndParticleAgreeOnTightCluster) {
  Rng rng(5);
  std::vector<WitnessReport> reports;
  geo::LatLng truth{36.35, 127.38};  // Daejeon
  for (int i = 0; i < 40; ++i) {
    reports.push_back(Report(i, i,
                             geo::LatLng{truth.lat + rng.Normal(0, 0.05),
                                         truth.lng + rng.Normal(0, 0.05)}));
  }
  for (auto estimator : {LocationEstimator::kKalman,
                         LocationEstimator::kParticle,
                         LocationEstimator::kWeightedCentroid}) {
    ToretterOptions options;
    options.source = LocationSource::kGpsOnly;
    options.estimator = estimator;
    ToretterDetector detector(&db_, options);
    Rng est_rng(6);
    auto estimate = detector.EstimateLocation(reports, est_rng);
    ASSERT_TRUE(estimate.ok());
    EXPECT_LT(geo::HaversineKm(estimate->location, truth), 20.0)
        << LocationEstimatorToString(estimator);
  }
}

TEST_F(ToretterTest, EnumNames) {
  EXPECT_STREQ(LocationEstimatorToString(LocationEstimator::kKalman),
               "kalman");
  EXPECT_STREQ(LocationSourceToString(LocationSource::kGpsOnly), "gps-only");
}

}  // namespace
}  // namespace stir::event
