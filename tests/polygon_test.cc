#include "geo/polygon.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace stir::geo {
namespace {

Polygon UnitSquare() {
  return Polygon({{0, 0}, {0, 1}, {1, 1}, {1, 0}});
}

TEST(PolygonTest, ValidityRequiresThreeVertices) {
  EXPECT_FALSE(Polygon().IsValid());
  EXPECT_FALSE(Polygon({{0, 0}, {1, 1}}).IsValid());
  EXPECT_TRUE(UnitSquare().IsValid());
}

TEST(PolygonTest, ContainsInteriorNotExterior) {
  Polygon square = UnitSquare();
  EXPECT_TRUE(square.Contains({0.5, 0.5}));
  EXPECT_TRUE(square.Contains({0.01, 0.99}));
  EXPECT_FALSE(square.Contains({1.5, 0.5}));
  EXPECT_FALSE(square.Contains({-0.001, 0.5}));
  EXPECT_FALSE(square.Contains({0.5, 2.0}));
}

TEST(PolygonTest, ConcaveShape) {
  // L-shape: the notch must be outside.
  Polygon l_shape(
      {{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  EXPECT_TRUE(l_shape.Contains({0.5, 0.5}));
  EXPECT_TRUE(l_shape.Contains({1.5, 0.5}));
  EXPECT_TRUE(l_shape.Contains({0.5, 1.5}));
  EXPECT_FALSE(l_shape.Contains({1.5, 1.5}));  // the notch
}

TEST(PolygonTest, SignedAreaOrientation) {
  EXPECT_GT(Polygon({{0, 0}, {0, 1}, {1, 1}, {1, 0}}).SignedAreaDeg2(), 0.0);
  EXPECT_LT(Polygon({{0, 0}, {1, 0}, {1, 1}, {0, 1}}).SignedAreaDeg2(), 0.0);
  EXPECT_DOUBLE_EQ(std::fabs(UnitSquare().SignedAreaDeg2()), 1.0);
}

TEST(PolygonTest, CentroidOfSquare) {
  LatLng c = UnitSquare().Centroid();
  EXPECT_NEAR(c.lat, 0.5, 1e-12);
  EXPECT_NEAR(c.lng, 0.5, 1e-12);
}

TEST(PolygonTest, RegularApproxCircleProperties) {
  LatLng center{37.5, 127.0};
  Polygon circle = Polygon::RegularApprox(center, 10.0, 24);
  EXPECT_EQ(circle.size(), 24u);
  EXPECT_TRUE(circle.Contains(center));
  LatLng c = circle.Centroid();
  EXPECT_NEAR(c.lat, center.lat, 0.01);
  EXPECT_NEAR(c.lng, center.lng, 0.01);
  // Area ~ pi r^2 (n-gon slightly smaller).
  EXPECT_NEAR(circle.AreaKm2(), M_PI * 100.0, M_PI * 100.0 * 0.05);
  // Interior points within ~r, exterior beyond.
  EXPECT_TRUE(circle.Contains(Destination(center, 45.0, 5.0)));
  EXPECT_FALSE(circle.Contains(Destination(center, 45.0, 12.0)));
}

TEST(PolygonTest, BoundsContainAllVertices) {
  Polygon circle = Polygon::RegularApprox({35.2, 129.0}, 7.0);
  BoundingBox bounds = circle.Bounds();
  for (const LatLng& v : circle.vertices()) {
    EXPECT_TRUE(bounds.Contains(v));
  }
}

// Property: random points classified by Contains() must agree with the
// radial definition of the approximating circle (away from the boundary).
class PolygonCircleProperty : public ::testing::TestWithParam<double> {};

TEST_P(PolygonCircleProperty, ContainsAgreesWithRadius) {
  double radius = GetParam();
  LatLng center{36.0, 128.0};
  Polygon circle = Polygon::RegularApprox(center, radius, 36);
  Rng rng(static_cast<uint64_t>(radius * 1000));
  for (int i = 0; i < 300; ++i) {
    double d = rng.Uniform(0.0, radius * 2.0);
    double bearing = rng.Uniform(0.0, 360.0);
    LatLng p = Destination(center, bearing, d);
    // Skip the ambiguous band near the polygon edge (n-gon vs circle).
    if (std::fabs(d - radius) < radius * 0.05) continue;
    EXPECT_EQ(circle.Contains(p), d < radius)
        << "radius=" << radius << " d=" << d << " bearing=" << bearing;
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, PolygonCircleProperty,
                         ::testing::Values(1.0, 5.0, 15.0, 40.0));

}  // namespace
}  // namespace stir::geo
