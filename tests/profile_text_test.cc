#include "twitter/profile_text.h"

#include <gtest/gtest.h>

#include <map>

#include "text/location_parser.h"
#include "twitter/model.h"

namespace stir::twitter {
namespace {

class ProfileTextTest : public ::testing::Test {
 protected:
  ProfileTextTest()
      : db_(geo::AdminDb::KoreanDistricts()),
        generator_(&db_, ProfileTextOptions{}),
        parser_(&db_) {}
  const geo::AdminDb& db_;
  ProfileTextGenerator generator_;
  text::LocationParser parser_;
};

TEST_F(ProfileTextTest, RespectsFieldLengthLimit) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    auto id = static_cast<geo::RegionId>(
        rng.UniformInt(0, static_cast<int64_t>(db_.size()) - 1));
    GeneratedProfileText out = generator_.Generate(id, rng);
    EXPECT_LE(out.text.size(), kMaxProfileLocationLength)
        << "'" << out.text << "'";
  }
}

TEST_F(ProfileTextTest, StyleMixCoversAllStyles) {
  Rng rng(2);
  std::map<ProfileStyle, int> counts;
  for (int i = 0; i < 8000; ++i) {
    auto id = static_cast<geo::RegionId>(
        rng.UniformInt(0, static_cast<int64_t>(db_.size()) - 1));
    ++counts[generator_.Generate(id, rng).style];
  }
  for (int s = 0; s < kNumProfileStyles; ++s) {
    EXPECT_GT(counts[static_cast<ProfileStyle>(s)], 0)
        << ProfileStyleToString(static_cast<ProfileStyle>(s));
  }
}

TEST_F(ProfileTextTest, StateCountyStyleParsesBackToClaimedRegion) {
  // Force the well-formed style only; every rendering must round-trip
  // through the parser to the claimed district.
  ProfileTextOptions options;
  for (int s = 0; s < kNumProfileStyles; ++s) options.weights[s] = 0.0;
  options.weights[static_cast<int>(ProfileStyle::kStateCounty)] = 1.0;
  ProfileTextGenerator generator(&db_, options);
  Rng rng(3);
  for (size_t i = 0; i < db_.size(); ++i) {
    auto id = static_cast<geo::RegionId>(i);
    GeneratedProfileText out = generator.Generate(id, rng);
    ASSERT_EQ(out.style, ProfileStyle::kStateCounty);
    text::ParsedLocation parsed = parser_.Parse(out.text);
    // Long names can be truncated by the field limit; those degrade.
    std::string full = db_.region(id).state + " " + db_.region(id).county;
    if (full.size() <= kMaxProfileLocationLength) {
      ASSERT_EQ(parsed.quality, text::LocationQuality::kWellDefined)
          << out.text;
      EXPECT_EQ(parsed.region, id) << out.text;
    }
  }
}

TEST_F(ProfileTextTest, GpsStyleParsesToClaimedRegion) {
  ProfileTextOptions options;
  for (int s = 0; s < kNumProfileStyles; ++s) options.weights[s] = 0.0;
  options.weights[static_cast<int>(ProfileStyle::kGpsInProfile)] = 1.0;
  ProfileTextGenerator generator(&db_, options);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    auto id = static_cast<geo::RegionId>(
        rng.UniformInt(0, static_cast<int64_t>(db_.size()) - 1));
    GeneratedProfileText out = generator.Generate(id, rng);
    text::ParsedLocation parsed = parser_.Parse(out.text);
    ASSERT_EQ(parsed.quality, text::LocationQuality::kWellDefined) << out.text;
    EXPECT_TRUE(parsed.from_gps);
    EXPECT_EQ(parsed.region, id);
  }
}

TEST_F(ProfileTextTest, VagueStyleNeverParses) {
  ProfileTextOptions options;
  for (int s = 0; s < kNumProfileStyles; ++s) options.weights[s] = 0.0;
  options.weights[static_cast<int>(ProfileStyle::kVague)] = 1.0;
  ProfileTextGenerator generator(&db_, options);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    GeneratedProfileText out = generator.Generate(0, rng);
    EXPECT_NE(parser_.Parse(out.text).quality,
              text::LocationQuality::kWellDefined)
        << out.text;
  }
}

TEST_F(ProfileTextTest, StateOnlyStyleIsInsufficient) {
  ProfileTextOptions options;
  for (int s = 0; s < kNumProfileStyles; ++s) options.weights[s] = 0.0;
  options.weights[static_cast<int>(ProfileStyle::kStateOnly)] = 1.0;
  ProfileTextGenerator generator(&db_, options);
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    auto id = static_cast<geo::RegionId>(
        rng.UniformInt(0, static_cast<int64_t>(db_.size()) - 1));
    GeneratedProfileText out = generator.Generate(id, rng);
    EXPECT_EQ(parser_.Parse(out.text).quality,
              text::LocationQuality::kInsufficient)
        << out.text;
  }
}

TEST_F(ProfileTextTest, EmptyStyleYieldsEmptyText) {
  ProfileTextOptions options;
  for (int s = 0; s < kNumProfileStyles; ++s) options.weights[s] = 0.0;
  options.weights[static_cast<int>(ProfileStyle::kEmpty)] = 1.0;
  ProfileTextGenerator generator(&db_, options);
  Rng rng(7);
  EXPECT_TRUE(generator.Generate(0, rng).text.empty());
}

}  // namespace
}  // namespace stir::twitter
