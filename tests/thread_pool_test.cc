#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace stir::common {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, SubmitReturnsTaskValue) {
  ThreadPool pool(2);
  std::future<int> result = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(result.get(), 42);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  std::future<void> future =
      pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ZeroThreadsRunsInlineOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Submit([&ran_on] { ran_on = std::this_thread::get_id(); }).get();
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, NegativeThreadCountIsInlineToo) {
  ThreadPool pool(-3);
  EXPECT_EQ(pool.size(), 0);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, InlinePoolPropagatesExceptions) {
  ThreadPool pool(0);
  std::future<void> future =
      pool.Submit([] { throw std::runtime_error("inline boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;  // only the lone worker writes
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& future : futures) future.get();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
  }  // ~ThreadPool joins after running everything queued
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(&pool, kN, [&hits](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  ParallelFor(&pool, 0, [&calls](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, NullPoolRunsSerially) {
  std::vector<size_t> seen;  // serial execution: no lock needed
  ParallelFor(nullptr, 100, [&seen](size_t i) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), 100u);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(seen[i], i);
}

TEST(ParallelForTest, PropagatesWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(&pool, 1000,
                           [](size_t i) {
                             if (i == 537) throw std::runtime_error("bad");
                           }),
               std::runtime_error);
}

TEST(ParallelForShardsTest, ShardsAreContiguousDisjointAndOrdered) {
  ThreadPool pool(4);
  constexpr size_t kN = 103;  // deliberately not divisible by 4
  std::mutex mu;
  std::vector<std::array<size_t, 3>> spans;
  ParallelForShards(&pool, kN,
                    [&](size_t shard, size_t begin, size_t end) {
                      std::lock_guard<std::mutex> lock(mu);
                      spans.push_back({shard, begin, end});
                    });
  ASSERT_EQ(spans.size(), NumShards(&pool, kN));
  std::sort(spans.begin(), spans.end());
  size_t expected_begin = 0;
  for (size_t s = 0; s < spans.size(); ++s) {
    EXPECT_EQ(spans[s][0], s);
    EXPECT_EQ(spans[s][1], expected_begin);
    EXPECT_GT(spans[s][2], spans[s][1]);
    expected_begin = spans[s][2];
  }
  EXPECT_EQ(expected_begin, kN);
}

TEST(ParallelForShardsTest, ShardCountNeverExceedsItems) {
  ThreadPool pool(8);
  EXPECT_EQ(NumShards(&pool, 3), 3u);
  EXPECT_EQ(NumShards(&pool, 100), 8u);
  EXPECT_EQ(NumShards(nullptr, 100), 1u);
  EXPECT_EQ(NumShards(&pool, 0), 1u);
  ThreadPool inline_pool(0);
  EXPECT_EQ(NumShards(&inline_pool, 100), 1u);
}

TEST(ParallelForShardsTest, ShardBoundariesAreStableAcrossCalls) {
  // Determinism of the study's merge step rests on boundaries depending
  // only on (n, shard count) — record them twice and compare.
  ThreadPool pool(3);
  auto collect = [&pool] {
    std::mutex mu;
    std::set<std::pair<size_t, size_t>> spans;
    ParallelForShards(&pool, 77, [&](size_t, size_t begin, size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      spans.insert({begin, end});
    });
    return spans;
  };
  EXPECT_EQ(collect(), collect());
}

}  // namespace
}  // namespace stir::common
