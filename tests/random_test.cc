#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "stats/correlation.h"

namespace stir {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  bool any_diff = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) any_diff |= (a2.Next() != c.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(2);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 6000; ++i) ++counts[rng.UniformInt(1, 6)];
  ASSERT_EQ(counts.size(), 6u);  // all faces seen
  for (const auto& [face, count] : counts) {
    EXPECT_GE(face, 1);
    EXPECT_LE(face, 6);
    EXPECT_GT(count, 700);  // ~1000 each; catches gross bias
    EXPECT_LT(count, 1300);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.UniformInt(7, 7), 7);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(5);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(10.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.15);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.15);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, PoissonMeanMatchesLambdaSmallAndLarge) {
  Rng rng(7);
  for (double lambda : {0.5, 4.0, 32.0, 200.0}) {
    double sum = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.Poisson(lambda));
    }
    EXPECT_NEAR(sum / n, lambda, lambda * 0.1 + 0.1) << "lambda=" << lambda;
  }
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(9);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(1);  // same salt, later state -> different
  bool differ = false;
  for (int i = 0; i < 20; ++i) differ |= (child1.Next() != child2.Next());
  EXPECT_TRUE(differ);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(10);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(ZipfDistributionTest, MonotonicallyDecreasingFrequencies) {
  Rng rng(11);
  ZipfDistribution dist(10, 1.0);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 50000; ++i) {
    int64_t k = dist.Sample(rng);
    ASSERT_GE(k, 1);
    ASSERT_LE(k, 10);
    ++counts[static_cast<size_t>(k)];
  }
  // P(1) ~ 2x P(2); allow slack.
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[4]);
  EXPECT_GT(counts[1], counts[10] * 5);
}

TEST(DiscreteDistributionTest, MatchesWeights) {
  Rng rng(12);
  DiscreteDistribution dist({1.0, 0.0, 3.0});
  EXPECT_DOUBLE_EQ(dist.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(dist.probability(1), 0.0);
  EXPECT_DOUBLE_EQ(dist.probability(2), 0.75);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[dist.Sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / 40000.0, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 40000.0, 0.75, 0.02);
}

TEST(DiscreteDistributionTest, AllZeroWeightsDegradeToUniform) {
  Rng rng(13);
  DiscreteDistribution dist({0.0, 0.0});
  int count0 = 0;
  for (int i = 0; i < 10000; ++i) count0 += (dist.Sample(rng) == 0);
  EXPECT_NEAR(count0 / 10000.0, 0.5, 0.05);
}

TEST(RngTest, UniformIntPassesChiSquareUniformity) {
  // Dogfooding: test the generator with the library's own chi-square.
  Rng rng(20120401);
  const int k = 12;
  const int n = 120000;
  std::vector<double> observed(k, 0.0);
  for (int i = 0; i < n; ++i) {
    observed[static_cast<size_t>(rng.UniformInt(0, k - 1))] += 1.0;
  }
  std::vector<double> expected(k, static_cast<double>(n) / k);
  auto stat = stir::stats::ChiSquareStatistic(observed, expected);
  ASSERT_TRUE(stat.ok());
  // df = 11; 99.9th percentile ~ 31.3. A correct generator fails this
  // one seed in a thousand; the seed is fixed, so the test is stable.
  EXPECT_LT(*stat, 31.3);
}

// Property sweep: UniformInt stays within arbitrary bounds.
class UniformIntRangeTest
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(UniformIntRangeTest, StaysWithinBounds) {
  auto [lo, hi] = GetParam();
  Rng rng(static_cast<uint64_t>(lo * 31 + hi));
  for (int i = 0; i < 2000; ++i) {
    int64_t x = rng.UniformInt(lo, hi);
    EXPECT_GE(x, lo);
    EXPECT_LE(x, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, UniformIntRangeTest,
    ::testing::Values(std::pair<int64_t, int64_t>{0, 1},
                      std::pair<int64_t, int64_t>{-5, 5},
                      std::pair<int64_t, int64_t>{0, 1000000},
                      std::pair<int64_t, int64_t>{-1000000, -999990},
                      std::pair<int64_t, int64_t>{42, 42}));

}  // namespace
}  // namespace stir
