#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>

namespace stir::stats {
namespace {

TEST(DescriptiveTest, MeanVarianceStddev) {
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_NEAR(Variance(v), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(Stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0}), 0.0);
}

TEST(DescriptiveTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({7}), 7.0);
}

TEST(DescriptiveTest, PercentileInterpolates) {
  std::vector<double> v = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 20.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 12.5), 15.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 150), 50.0);  // clamped
}

TEST(RunningStatsTest, MatchesBatchComputation) {
  std::vector<double> v = {1.5, -2.0, 3.25, 0.0, 10.0, 7.5};
  RunningStats rs;
  for (double x : v) rs.Add(x);
  EXPECT_EQ(rs.count(), static_cast<int64_t>(v.size()));
  EXPECT_NEAR(rs.mean(), Mean(v), 1e-12);
  EXPECT_NEAR(rs.variance(), Variance(v), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 10.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats rs;
  rs.Add(5.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.0);    // bucket 0
  h.Add(1.99);   // bucket 0
  h.Add(5.0);    // bucket 2
  h.Add(9.99);   // bucket 4
  h.Add(-3.0);   // clamped to 0
  h.Add(42.0);   // clamped to 4
  EXPECT_EQ(h.total(), 6);
  EXPECT_EQ(h.bucket_count(0), 3);
  EXPECT_EQ(h.bucket_count(1), 0);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(4), 2);
  EXPECT_DOUBLE_EQ(h.bucket_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(2), 6.0);
}

TEST(HistogramTest, ToStringRendersAllBuckets) {
  Histogram h(0.0, 4.0, 4);
  h.Add(1.0);
  h.Add(1.5);
  std::string s = h.ToString(10);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find('#'), std::string::npos);
}

}  // namespace
}  // namespace stir::stats
