#include "twitter/crawler.h"

#include <gtest/gtest.h>

#include <set>

namespace stir::twitter {
namespace {

SocialGraph TestGraph(int64_t n = 800, uint64_t seed = 9) {
  SocialGraphOptions options;
  options.num_users = n;
  options.mean_following = 10.0;
  Rng rng(seed);
  return SocialGraph::Generate(options, rng);
}

TEST(CrawlerTest, SeedOutOfRangeFails) {
  SocialGraph graph = TestGraph(100);
  Crawler crawler(&graph, CrawlerOptions{});
  EXPECT_TRUE(crawler.Crawl(-1).status().IsInvalidArgument());
  EXPECT_TRUE(crawler.Crawl(100).status().IsInvalidArgument());
}

TEST(CrawlerTest, DiscoversDistinctUsersSeedFirst) {
  SocialGraph graph = TestGraph();
  Crawler crawler(&graph, CrawlerOptions{});
  auto result = crawler.Crawl(graph.MostFollowedUser());
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->users.empty());
  EXPECT_EQ(result->users.front(), graph.MostFollowedUser());
  std::set<UserId> unique(result->users.begin(), result->users.end());
  EXPECT_EQ(unique.size(), result->users.size());
  EXPECT_GT(result->requests_issued, 0);
}

TEST(CrawlerTest, TargetCapsDiscovery) {
  SocialGraph graph = TestGraph();
  CrawlerOptions options;
  options.target_users = 50;
  Crawler crawler(&graph, options);
  auto result = crawler.Crawl(graph.MostFollowedUser());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->users.size(), 50u);
}

TEST(CrawlerTest, RateLimitAddsWallTime) {
  SocialGraph graph = TestGraph(2000, 10);
  CrawlerOptions slow;
  slow.requests_per_window = 10;
  slow.window_seconds = 900;
  Crawler slow_crawler(&graph, slow);
  auto slow_result = slow_crawler.Crawl(graph.MostFollowedUser());
  ASSERT_TRUE(slow_result.ok());

  CrawlerOptions fast;
  fast.requests_per_window = 1000000;
  Crawler fast_crawler(&graph, fast);
  auto fast_result = fast_crawler.Crawl(graph.MostFollowedUser());
  ASSERT_TRUE(fast_result.ok());

  // Same BFS -> same discovery, but the throttled crawl takes far longer.
  EXPECT_EQ(slow_result->users, fast_result->users);
  EXPECT_GT(slow_result->elapsed_seconds,
            fast_result->elapsed_seconds + 10 * 900 - 1);
}

TEST(CrawlerTest, PagingCostsOneRequestPerPage) {
  SocialGraph graph = TestGraph(600, 11);
  CrawlerOptions small_pages;
  small_pages.page_size = 5;
  CrawlerOptions big_pages;
  big_pages.page_size = 5000;
  auto small = Crawler(&graph, small_pages).Crawl(graph.MostFollowedUser());
  auto big = Crawler(&graph, big_pages).Crawl(graph.MostFollowedUser());
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_GT(small->requests_issued, big->requests_issued);
}

TEST(CrawlerTest, DisconnectedComponentStaysUnreached) {
  // Two components: {0,1,2} wired together, {3,4} separate. A crawl
  // seeded in the first can never discover the second — the sampling
  // bias the paper's §III.B crawl methodology carries.
  SocialGraph graph = SocialGraph::FromEdges(
      5, {{1, 0}, {2, 0}, {0, 1}, {4, 3}});
  Crawler crawler(&graph, CrawlerOptions{});
  auto result = crawler.Crawl(0);
  ASSERT_TRUE(result.ok());
  std::set<UserId> seen(result->users.begin(), result->users.end());
  EXPECT_EQ(seen, (std::set<UserId>{0, 1, 2}));
  EXPECT_EQ(seen.count(3), 0u);
  EXPECT_EQ(seen.count(4), 0u);
}

TEST(CrawlerTest, EmptyFollowerListStillCostsARequest) {
  SocialGraph graph = SocialGraph::FromEdges(2, {{0, 1}});
  // Seed user 1: one follower (0) who has none.
  Crawler crawler(&graph, CrawlerOptions{});
  auto result = crawler.Crawl(1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->users.size(), 2u);
  EXPECT_EQ(result->requests_issued, 2);  // one listing per user
}

TEST(CrawlerTest, ReachesWholeComponentWithoutTarget) {
  SocialGraph graph = TestGraph(400, 12);
  Crawler crawler(&graph, CrawlerOptions{});
  auto result = crawler.Crawl(graph.MostFollowedUser());
  ASSERT_TRUE(result.ok());
  // Preferential attachment graphs are nearly fully connected via
  // followers-of-followers; expect a large majority discovered.
  EXPECT_GT(result->users.size(), 300u);
}

}  // namespace
}  // namespace stir::twitter
