#include "twitter/column_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "common/hash.h"
#include "twitter/generator.h"

namespace stir::twitter {
namespace {

Tweet MakeTweet(TweetId id, UserId user, SimTime time,
                std::optional<geo::LatLng> gps, std::string text) {
  Tweet tweet;
  tweet.id = id;
  tweet.user = user;
  tweet.time = time;
  tweet.gps = gps;
  tweet.text = std::move(text);
  return tweet;
}

TEST(ColumnStoreTest, AppendAndGetRoundTrip) {
  TweetColumnStore store;
  EXPECT_TRUE(store.empty());
  store.Append(MakeTweet(1, 10, 100, geo::LatLng{37.5, 127.0}, "hello"));
  store.Append(MakeTweet(2, 11, 200, std::nullopt, ""));
  store.Append(MakeTweet(3, 10, 300, geo::LatLng{35.1, 129.0}, "부산 hot"));

  ASSERT_EQ(store.size(), 3u);
  EXPECT_EQ(store.gps_count(), 2);

  TweetView first = store.Get(0);
  EXPECT_EQ(first.id, 1);
  EXPECT_EQ(first.user, 10);
  EXPECT_EQ(first.time, 100);
  ASSERT_TRUE(first.gps.has_value());
  EXPECT_DOUBLE_EQ(first.gps->lat, 37.5);
  EXPECT_EQ(first.text, "hello");

  TweetView second = store.Get(1);
  EXPECT_FALSE(second.gps.has_value());
  EXPECT_TRUE(second.text.empty());

  EXPECT_EQ(store.Get(2).text, "부산 hot");
  EXPECT_TRUE(store.HasGps(2));
  EXPECT_FALSE(store.HasGps(1));
}

TEST(ColumnStoreTest, BitmapCorrectAcrossWordBoundaries) {
  TweetColumnStore store;
  for (TweetId i = 0; i < 200; ++i) {
    std::optional<geo::LatLng> gps;
    if (i % 3 == 0) gps = geo::LatLng{1.0 * static_cast<double>(i % 90), 0};
    store.Append(MakeTweet(i, 1, i, gps, "t" + std::to_string(i)));
  }
  int64_t gps_seen = 0;
  for (size_t i = 0; i < store.size(); ++i) {
    EXPECT_EQ(store.HasGps(i), i % 3 == 0) << i;
    gps_seen += store.HasGps(i);
    EXPECT_EQ(store.TextAt(i), "t" + std::to_string(i));
  }
  EXPECT_EQ(gps_seen, store.gps_count());
}

TEST(ColumnStoreTest, FromDatasetMatchesRowStore) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  DatasetGenerator generator(&db, DatasetGenerator::KoreanConfig(0.02));
  GeneratedData data = generator.Generate();
  TweetColumnStore store = TweetColumnStore::FromDataset(data.dataset);
  ASSERT_EQ(store.size(), data.dataset.tweets().size());
  EXPECT_EQ(store.gps_count(), data.dataset.gps_tweet_count());
  for (size_t i = 0; i < store.size(); ++i) {
    const Tweet& row = data.dataset.tweets()[i];
    TweetView view = store.Get(i);
    EXPECT_EQ(view.id, row.id);
    EXPECT_EQ(view.user, row.user);
    EXPECT_EQ(view.time, row.time);
    EXPECT_EQ(view.gps.has_value(), row.gps.has_value());
    if (row.gps.has_value()) {
      EXPECT_DOUBLE_EQ(view.gps->lat, row.gps->lat);
      EXPECT_DOUBLE_EQ(view.gps->lng, row.gps->lng);
    }
    EXPECT_EQ(view.text, row.text);
  }
}

TEST(ColumnStoreTest, ForEachGpsVisitsExactlyGpsRows) {
  TweetColumnStore store;
  for (TweetId i = 0; i < 100; ++i) {
    std::optional<geo::LatLng> gps;
    if (i % 7 == 0) gps = geo::LatLng{10, 20};
    store.Append(MakeTweet(i, 1, i, gps, "x"));
  }
  int64_t visited = 0;
  store.ForEachGps([&](size_t i, const geo::LatLng& p) {
    EXPECT_EQ(i % 7, 0u);
    EXPECT_DOUBLE_EQ(p.lat, 10);
    ++visited;
  });
  EXPECT_EQ(visited, store.gps_count());
}

TEST(ColumnStoreTest, SaveLoadRoundTrip) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  DatasetGenerator generator(&db, DatasetGenerator::KoreanConfig(0.02));
  GeneratedData data = generator.Generate();
  TweetColumnStore store = TweetColumnStore::FromDataset(data.dataset);

  std::string path = ::testing::TempDir() + "/stir_store.col";
  ASSERT_TRUE(store.Save(path).ok());
  auto loaded = TweetColumnStore::Load(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), store.size());
  EXPECT_EQ(loaded->gps_count(), store.gps_count());
  for (size_t i = 0; i < store.size(); i += 7) {
    TweetView a = store.Get(i);
    TweetView b = loaded->Get(i);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.user, b.user);
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.gps.has_value(), b.gps.has_value());
  }
  std::remove(path.c_str());
}

TEST(ColumnStoreTest, SaveLoadEmptyStore) {
  TweetColumnStore store;
  std::string path = ::testing::TempDir() + "/stir_empty.col";
  ASSERT_TRUE(store.Save(path).ok());
  auto loaded = TweetColumnStore::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST(ColumnStoreTest, LoadRejectsCorruption) {
  TweetColumnStore store;
  store.Append(MakeTweet(1, 1, 1, geo::LatLng{1, 2}, "payload text"));
  std::string path = ::testing::TempDir() + "/stir_corrupt.col";
  ASSERT_TRUE(store.Save(path).ok());

  // Flip a byte in the middle: checksum mismatch.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(20);
    f.put('\xFF');
  }
  auto corrupt = TweetColumnStore::Load(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_TRUE(corrupt.status().IsInvalidArgument());

  // Bad magic.
  ASSERT_TRUE(store.Save(path).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.put('X');
  }
  EXPECT_FALSE(TweetColumnStore::Load(path).ok());

  // Truncation.
  ASSERT_TRUE(store.Save(path).ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() / 2);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_FALSE(TweetColumnStore::Load(path).ok());

  EXPECT_TRUE(
      TweetColumnStore::Load("/nonexistent/x.col").status().IsIOError());
  std::remove(path.c_str());
}

TEST(ColumnStoreTest, MemorySmallerThanRowStorageEstimate) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  auto config = DatasetGenerator::KoreanConfig(0.05);
  config.plain_tweet_sample = 0.01;  // a text-heavy corpus
  DatasetGenerator generator(&db, config);
  GeneratedData data = generator.Generate();
  TweetColumnStore store = TweetColumnStore::FromDataset(data.dataset);

  // Row-storage lower bound: sizeof(Tweet) + per-string heap block.
  int64_t row_estimate = 0;
  for (const Tweet& tweet : data.dataset.tweets()) {
    row_estimate += static_cast<int64_t>(sizeof(Tweet));
    if (tweet.text.size() > sizeof(std::string) - 1) {  // heap-allocated
      row_estimate += static_cast<int64_t>(tweet.text.capacity());
    }
  }
  EXPECT_LT(store.MemoryBytes(), row_estimate);
  EXPECT_GT(store.MemoryBytes(), 0);
}

// --- Format versioning: Save writes the v2 snapshot container, Load also
// accepts the legacy v1 (FNV-1a trailer) layout. ---

template <typename T>
void PutLegacyColumn(std::string& out, const std::vector<T>& column) {
  uint64_t count = column.size();
  out.append(reinterpret_cast<const char*>(&count), sizeof(count));
  if (!column.empty()) {
    out.append(reinterpret_cast<const char*>(column.data()),
               column.size() * sizeof(T));
  }
}

/// Bytes of a legacy STIRCOL1 file holding two tweets:
///   (1, 10, 100, gps{37.5, 127.0}, "hi") and (2, 11, 200, plain, "yo").
std::string LegacyV1Bytes() {
  std::string bytes = "STIRCOL1";
  PutLegacyColumn(bytes, std::vector<TweetId>{1, 2});
  PutLegacyColumn(bytes, std::vector<UserId>{10, 11});
  PutLegacyColumn(bytes, std::vector<SimTime>{100, 200});
  PutLegacyColumn(bytes, std::vector<double>{37.5, 0.0});
  PutLegacyColumn(bytes, std::vector<double>{127.0, 0.0});
  PutLegacyColumn(bytes, std::vector<uint64_t>{1});  // GPS bitmap: row 0
  PutLegacyColumn(bytes, std::vector<uint32_t>{0, 2, 4});
  std::string arena = "hiyo";
  uint64_t text_size = arena.size();
  bytes.append(reinterpret_cast<const char*>(&text_size), sizeof(text_size));
  bytes.append(arena);
  uint64_t checksum = Fnv1a64(bytes);
  bytes.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  return bytes;
}

TEST(ColumnStoreTest, SaveWritesV2Magic) {
  TweetColumnStore store;
  store.Append(MakeTweet(1, 1, 1, std::nullopt, "x"));
  std::string path = ::testing::TempDir() + "/stir_v2_magic.col";
  ASSERT_TRUE(store.Save(path).ok());
  std::ifstream in(path, std::ios::binary);
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  EXPECT_EQ(std::string(magic, sizeof(magic)), "STIRCOL2");
  std::remove(path.c_str());
}

TEST(ColumnStoreTest, LoadReadsLegacyV1Format) {
  std::string path = ::testing::TempDir() + "/stir_legacy.col";
  std::string bytes = LegacyV1Bytes();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = TweetColumnStore::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->gps_count(), 1);
  TweetView first = loaded->Get(0);
  EXPECT_EQ(first.id, 1);
  EXPECT_EQ(first.user, 10);
  ASSERT_TRUE(first.gps.has_value());
  EXPECT_DOUBLE_EQ(first.gps->lat, 37.5);
  EXPECT_DOUBLE_EQ(first.gps->lng, 127.0);
  EXPECT_EQ(first.text, "hi");
  TweetView second = loaded->Get(1);
  EXPECT_FALSE(second.gps.has_value());
  EXPECT_EQ(second.text, "yo");
  std::remove(path.c_str());
}

TEST(ColumnStoreTest, LegacyV1ResavesAsV2) {
  std::string path = ::testing::TempDir() + "/stir_legacy_upgrade.col";
  std::string bytes = LegacyV1Bytes();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = TweetColumnStore::Load(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->Save(path).ok());
  auto reloaded = TweetColumnStore::Load(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_EQ(reloaded->size(), 2u);
  EXPECT_EQ(reloaded->Get(0).text, "hi");
  EXPECT_EQ(reloaded->Get(1).text, "yo");
  std::remove(path.c_str());
}

TEST(ColumnStoreTest, LegacyV1CorruptionRejected) {
  std::string path = ::testing::TempDir() + "/stir_legacy_corrupt.col";
  std::string bytes = LegacyV1Bytes();
  bytes[bytes.size() / 2] ^= 0x01;  // body flip: FNV trailer mismatch
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto corrupt = TweetColumnStore::Load(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_TRUE(corrupt.status().IsInvalidArgument());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stir::twitter
