#include "io/corpus.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "io/corpus_reader.h"
#include "twitter/generator.h"

namespace stir::io {
namespace {

std::filesystem::path TempPath(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

/// A small mixed corpus: some users with GPS tweets, some without, one
/// with no tweets at all, empty and duplicate strings in the arena.
twitter::Dataset MakeDataset() {
  twitter::Dataset dataset;
  auto add_user = [&](twitter::UserId id, const std::string& handle,
                      const std::string& profile, int64_t total) {
    twitter::User user;
    user.id = id;
    user.handle = handle;
    user.profile_location = profile;
    user.total_tweets = total;
    dataset.AddUser(user);
  };
  auto add_tweet = [&](twitter::TweetId id, twitter::UserId user,
                       SimTime time, std::optional<geo::LatLng> gps,
                       const std::string& text) {
    twitter::Tweet tweet;
    tweet.id = id;
    tweet.user = user;
    tweet.time = time;
    tweet.gps = gps;
    tweet.text = text;
    dataset.AddTweet(std::move(tweet));
  };
  add_user(7, "alpha", "Seoul Gangnam-gu", 120);
  add_user(3, "beta", "Seoul Gangnam-gu", 5);  // duplicate profile string
  add_user(11, "gamma", "", 40);               // empty profile
  add_user(20, "delta", "Uiwang-si", 0);       // no tweets
  add_tweet(100, 7, 1000, geo::LatLng{37.5, 127.04}, "gps tweet");
  add_tweet(101, 7, 1010, std::nullopt, "");  // empty text
  add_tweet(102, 3, 500, geo::LatLng{37.49, 127.0}, "another");
  add_tweet(103, 11, 2000, std::nullopt, "plain\ttext\nwith bytes");
  add_tweet(104, 7, 1020, geo::LatLng{37.51, 127.05}, "gps tweet");
  return dataset;
}

TEST(CorpusWriterTest, RoundTripIsFieldIdentical) {
  std::filesystem::path path = TempPath("corpus_roundtrip.corpus");
  twitter::Dataset dataset = MakeDataset();
  auto stats = CorpusWriter::WriteDataset(dataset, path.string());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->users, 4);
  EXPECT_EQ(stats->tweets, 5);
  EXPECT_EQ(stats->gps_tweets, 3);
  EXPECT_EQ(stats->total_tweets, 165);

  auto view = CorpusView::Open(path.string());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->user_count(), 4u);
  EXPECT_EQ(view->tweet_count(), 5u);
  EXPECT_EQ(view->gps_tweet_count(), 3);
  EXPECT_EQ(view->total_tweet_count(), 165);

  auto materialized = MaterializeDataset(*view);
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  ASSERT_EQ(materialized->users().size(), dataset.users().size());
  for (size_t i = 0; i < dataset.users().size(); ++i) {
    const twitter::User& a = dataset.users()[i];
    const twitter::User& b = materialized->users()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.handle, b.handle);
    EXPECT_EQ(a.profile_location, b.profile_location);
    EXPECT_EQ(a.total_tweets, b.total_tweets);
  }
  ASSERT_EQ(materialized->tweets().size(), dataset.tweets().size());
  for (size_t i = 0; i < dataset.tweets().size(); ++i) {
    const twitter::Tweet& a = dataset.tweets()[i];
    const twitter::Tweet& b = materialized->tweets()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.user, b.user);
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.gps.has_value(), b.gps.has_value());
    if (a.gps && b.gps) {
      EXPECT_DOUBLE_EQ(a.gps->lat, b.gps->lat);
      EXPECT_DOUBLE_EQ(a.gps->lng, b.gps->lng);
    }
    EXPECT_EQ(a.text, b.text);
  }
  std::filesystem::remove(path);
}

TEST(CorpusWriterTest, CsrCoversInterleavedTweets) {
  // MakeDataset interleaves users 7/3/11, so the writer must emit an
  // explicit CSR permutation (not the grouped fast path) and the view's
  // per-user walk must land on exactly that user's rows.
  std::filesystem::path path = TempPath("corpus_csr.corpus");
  twitter::Dataset dataset = MakeDataset();
  auto stats = CorpusWriter::WriteDataset(dataset, path.string());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats->grouped);

  auto view = CorpusView::Open(path.string());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_FALSE(view->grouped());
  // User row 0 is id 7 with tweet rows {0, 1, 4}.
  ASSERT_EQ(view->user_id(0), 7);
  ASSERT_EQ(view->user_tweet_end(0) - view->user_tweet_begin(0), 3u);
  for (uint64_t pos = view->user_tweet_begin(0);
       pos < view->user_tweet_end(0); ++pos) {
    EXPECT_EQ(view->tweet_user_row(view->user_tweet_row(pos)), 0u);
  }
  // User row 3 is id 20 with no tweets.
  EXPECT_EQ(view->user_id(3), 20);
  EXPECT_EQ(view->user_tweet_begin(3), view->user_tweet_end(3));
  std::filesystem::remove(path);
}

TEST(CorpusWriterTest, GroupedStreamOmitsCsrAndMatchesBatchWrite) {
  // The generator's natural order (each user's tweets contiguous, users
  // in append order) must be detected as grouped, and the streamed file
  // must be byte-identical to the batch WriteDataset of the same data.
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  twitter::DatasetGenerator generator(
      &db, twitter::DatasetGenerator::KoreanConfig(0.01));

  std::filesystem::path streamed = TempPath("corpus_streamed.corpus");
  {
    CorpusWriter writer(streamed.string());
    auto info = generator.GenerateToCorpus(&writer);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    auto stats = writer.Finish();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_TRUE(stats->grouped);
  }

  std::filesystem::path batch = TempPath("corpus_batch.corpus");
  {
    twitter::GeneratedData data = generator.Generate();
    auto stats = CorpusWriter::WriteDataset(data.dataset, batch.string());
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_TRUE(stats->grouped);
  }

  std::ifstream a(streamed, std::ios::binary);
  std::ifstream b(batch, std::ios::binary);
  std::string a_bytes((std::istreambuf_iterator<char>(a)),
                      std::istreambuf_iterator<char>());
  std::string b_bytes((std::istreambuf_iterator<char>(b)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(a_bytes.size(), b_bytes.size());
  EXPECT_TRUE(a_bytes == b_bytes)
      << "streamed and batch corpus files differ";
  std::filesystem::remove(streamed);
  std::filesystem::remove(batch);
}

TEST(CorpusWriterTest, RejectsTweetFromUnknownUser) {
  std::filesystem::path path = TempPath("corpus_unknown_user.corpus");
  CorpusWriter writer(path.string());
  twitter::Tweet tweet;
  tweet.id = 1;
  tweet.user = 42;
  EXPECT_FALSE(writer.AddTweet(tweet).ok());
  std::filesystem::remove(path);
}

class CorpusCorruptionTest : public ::testing::Test {
 protected:
  static std::string Fixture(const char* name) {
    return std::string(STIR_TEST_DATA_DIR) + "/corpus/" + name;
  }
};

TEST_F(CorpusCorruptionTest, CleanFixtureOpens) {
  auto view = CorpusView::Open(Fixture("tiny.corpus"));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_GT(view->user_count(), 0u);
  EXPECT_TRUE(view->grouped());
  EXPECT_TRUE(IsArenaCorpusFile(Fixture("tiny.corpus")));
}

TEST_F(CorpusCorruptionTest, RejectsBadMagic) {
  auto view = CorpusView::Open(Fixture("bad_magic.corpus"));
  EXPECT_FALSE(view.ok());
  EXPECT_FALSE(IsArenaCorpusFile(Fixture("bad_magic.corpus")));
}

TEST_F(CorpusCorruptionTest, RejectsBadCrc) {
  auto view = CorpusView::Open(Fixture("bad_crc.corpus"));
  ASSERT_FALSE(view.ok());
  EXPECT_NE(view.status().ToString().find("CRC"), std::string::npos)
      << view.status().ToString();
}

TEST_F(CorpusCorruptionTest, BadCrcSlipsPastDisabledVerification) {
  // Documents what verify_crc=false trades away: the flipped byte lives
  // in the payload, so structural checks alone may accept the file.
  CorpusViewOptions options;
  options.verify_crc = false;
  auto view = CorpusView::Open(Fixture("bad_crc.corpus"), options);
  // Either outcome is structurally legal; the point is no crash and that
  // the default (verifying) path above rejects it.
  if (view.ok()) EXPECT_GT(view->user_count(), 0u);
}

TEST_F(CorpusCorruptionTest, RejectsTruncation) {
  auto view = CorpusView::Open(Fixture("truncated.corpus"));
  EXPECT_FALSE(view.ok());
}

TEST_F(CorpusCorruptionTest, RejectsMissingFile) {
  auto view = CorpusView::Open(Fixture("no_such.corpus"));
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.status().code(), StatusCode::kIOError);
}

TEST_F(CorpusCorruptionTest, RejectsHeaderSizeMismatch) {
  // Append junk: the header's file_size no longer matches the mapping.
  std::filesystem::path path = TempPath("corpus_grown.corpus");
  std::filesystem::copy_file(
      Fixture("tiny.corpus"), path,
      std::filesystem::copy_options::overwrite_existing);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "trailing garbage";
  }
  auto view = CorpusView::Open(path.string());
  EXPECT_FALSE(view.ok());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace stir::io
