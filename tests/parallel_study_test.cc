// Equivalence and concurrency tests for the sharded parallel study
// pipeline: parallel runs must be bit-identical to serial, and the shared
// ReverseGeocoder must keep its counters and quota exact under contention.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/study.h"
#include "geo/reverse_geocoder.h"
#include "twitter/generator.h"

namespace stir::core {
namespace {

class ParallelStudyTest : public ::testing::Test {
 protected:
  ParallelStudyTest() : db_(geo::AdminDb::KoreanDistricts()) {}

  twitter::GeneratedData Generate(double scale) {
    twitter::DatasetGenerator generator(
        &db_, twitter::DatasetGenerator::KoreanConfig(scale));
    return generator.Generate();
  }

  StudyResult RunWithThreads(const twitter::Dataset& dataset, int threads) {
    StudyConfig options;
    options.threads = threads;
    CorrelationStudy study(&db_, options);
    return study.Run(dataset);
  }

  const geo::AdminDb& db_;
};

void ExpectIdenticalResults(const StudyResult& serial,
                            const StudyResult& parallel, int threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  // Rendered reports must match byte for byte.
  EXPECT_EQ(serial.FunnelString(), parallel.FunnelString());
  EXPECT_EQ(serial.GroupTableString(), parallel.GroupTableString());

  // Funnel counters.
  EXPECT_EQ(serial.funnel.crawled_users, parallel.funnel.crawled_users);
  for (int q = 0; q < 5; ++q) {
    EXPECT_EQ(serial.funnel.quality_counts[q],
              parallel.funnel.quality_counts[q]);
  }
  EXPECT_EQ(serial.funnel.well_defined_users,
            parallel.funnel.well_defined_users);
  EXPECT_EQ(serial.funnel.total_tweets, parallel.funnel.total_tweets);
  EXPECT_EQ(serial.funnel.gps_tweets, parallel.funnel.gps_tweets);
  EXPECT_EQ(serial.funnel.geocode_failures, parallel.funnel.geocode_failures);
  EXPECT_EQ(serial.funnel.final_users, parallel.funnel.final_users);

  // Group table.
  for (int g = 0; g < kNumTopKGroups; ++g) {
    EXPECT_EQ(serial.groups[g].users, parallel.groups[g].users);
    EXPECT_EQ(serial.groups[g].gps_tweets, parallel.groups[g].gps_tweets);
    EXPECT_DOUBLE_EQ(serial.groups[g].user_share,
                     parallel.groups[g].user_share);
    EXPECT_DOUBLE_EQ(serial.groups[g].tweet_share,
                     parallel.groups[g].tweet_share);
    EXPECT_DOUBLE_EQ(serial.groups[g].avg_tweet_locations,
                     parallel.groups[g].avg_tweet_locations);
  }
  EXPECT_DOUBLE_EQ(serial.overall_avg_locations,
                   parallel.overall_avg_locations);

  // Refined users: same order, same tweet regions.
  ASSERT_EQ(serial.refined.size(), parallel.refined.size());
  for (size_t i = 0; i < serial.refined.size(); ++i) {
    EXPECT_EQ(serial.refined[i].user, parallel.refined[i].user);
    EXPECT_EQ(serial.refined[i].profile_region,
              parallel.refined[i].profile_region);
    EXPECT_EQ(serial.refined[i].tweet_regions,
              parallel.refined[i].tweet_regions);
  }

  // Per-user groupings: same order, ranks, and Table II rows.
  ASSERT_EQ(serial.groupings.size(), parallel.groupings.size());
  for (size_t i = 0; i < serial.groupings.size(); ++i) {
    const UserGrouping& a = serial.groupings[i];
    const UserGrouping& b = parallel.groupings[i];
    EXPECT_EQ(a.user, b.user);
    EXPECT_EQ(a.match_rank, b.match_rank);
    EXPECT_EQ(a.group, b.group);
    EXPECT_EQ(a.gps_tweet_count, b.gps_tweet_count);
    EXPECT_EQ(a.matched_tweet_count, b.matched_tweet_count);
    ASSERT_EQ(a.ordered.size(), b.ordered.size());
    for (size_t j = 0; j < a.ordered.size(); ++j) {
      EXPECT_EQ(a.ordered[j].count, b.ordered[j].count);
      EXPECT_TRUE(a.ordered[j].record == b.ordered[j].record)
          << a.ordered[j].ToString() << " vs " << b.ordered[j].ToString();
    }
  }
}

TEST_F(ParallelStudyTest, GoldenEquivalenceAcrossThreadCounts) {
  twitter::GeneratedData data = Generate(0.05);
  StudyResult serial = RunWithThreads(data.dataset, 1);
  ASSERT_GT(serial.final_users, 0);
  for (int threads : {2, 8}) {
    StudyResult parallel = RunWithThreads(data.dataset, threads);
    ExpectIdenticalResults(serial, parallel, threads);
  }
}

// A faulty run — transient errors, retries, degraded-mode salvage — must
// stay bit-identical across thread counts: the fault schedule is keyed on
// the tweet's dataset index, not on arrival order.
TEST_F(ParallelStudyTest, FaultyRunsAreBitIdenticalAcrossThreadCounts) {
  twitter::GeneratedData data = Generate(0.05);
  StudyConfig options;
  options.fault.error_rate = 0.25;
  options.fault.seed = 13;
  options.retry.max_attempts = 2;

  CorrelationStudy serial_study(&db_, options);
  StudyResult serial = serial_study.Run(data.dataset);
  ASSERT_GT(serial.final_users, 0);
  // The run really was faulty.
  EXPECT_TRUE(serial.funnel.fault_injection_enabled);
  EXPECT_GT(serial.funnel.geocode_faulted, 0);
  EXPECT_GT(serial.funnel.geocode_retried, 0);
  EXPECT_GT(serial.funnel.backoff_ms, 0);

  for (int threads : {2, 8}) {
    options.threads = threads;
    CorrelationStudy parallel_study(&db_, options);
    StudyResult parallel = parallel_study.Run(data.dataset);
    ExpectIdenticalResults(serial, parallel, threads);
    // The fault/retry/degradation accounting is part of the guarantee.
    EXPECT_EQ(serial.funnel.geocode_faulted, parallel.funnel.geocode_faulted);
    EXPECT_EQ(serial.funnel.geocode_retried, parallel.funnel.geocode_retried);
    EXPECT_EQ(serial.funnel.geocode_degraded,
              parallel.funnel.geocode_degraded);
    EXPECT_EQ(serial.funnel.backoff_ms, parallel.funnel.backoff_ms);
  }
}

TEST_F(ParallelStudyTest, FaithfulXmlPipelineIsAlsoEquivalent) {
  twitter::GeneratedData data = Generate(0.02);
  StudyConfig options;
  options.refinement.faithful_xml_pipeline = true;
  CorrelationStudy serial_study(&db_, options);
  StudyResult serial = serial_study.Run(data.dataset);
  options.threads = 4;
  CorrelationStudy parallel_study(&db_, options);
  StudyResult parallel = parallel_study.Run(data.dataset);
  ExpectIdenticalResults(serial, parallel, 4);
}

TEST_F(ParallelStudyTest, GroupUsersParallelMatchesSerial) {
  twitter::GeneratedData data = Generate(0.05);
  CorrelationStudy study(&db_);
  StudyResult result = study.Run(data.dataset);
  ASSERT_FALSE(result.refined.empty());
  common::ThreadPool pool(8);
  std::vector<UserGrouping> serial =
      GroupUsers(result.refined, db_, TieBreak::kLexicographic);
  std::vector<UserGrouping> parallel =
      GroupUsers(result.refined, db_, TieBreak::kLexicographic, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].user, parallel[i].user);
    EXPECT_EQ(serial[i].match_rank, parallel[i].match_rank);
    EXPECT_EQ(serial[i].group, parallel[i].group);
  }
}

// Hammers one shared geocoder from many threads: every lookup must
// succeed with the right region, and the hit/miss accounting must balance
// exactly once the threads join.
TEST_F(ParallelStudyTest, GeocoderCounterTotalsSurviveContention) {
  geo::ReverseGeocoder geocoder(&db_);
  constexpr int kThreads = 8;
  constexpr int kLookupsPerThread = 2000;

  // A fixed point set spanning distinct districts (distinct geohash cells).
  Rng rng(99);
  std::vector<std::pair<geo::RegionId, geo::LatLng>> points;
  size_t num_regions = std::min<size_t>(db_.size(), 32);
  for (size_t r = 0; r < num_regions; ++r) {
    auto id = static_cast<geo::RegionId>(r);
    points.emplace_back(id, db_.SamplePointIn(id, rng));
  }

  std::atomic<int64_t> ok{0}, wrong_region{0}, failed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kLookupsPerThread; ++i) {
        const auto& [region, point] = points[(t + i) % points.size()];
        auto result = geocoder.Reverse(point);
        if (!result.ok()) {
          ++failed;
        } else if (result->region != region) {
          ++wrong_region;
        } else {
          ++ok;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(wrong_region.load(), 0);
  EXPECT_EQ(ok.load(), int64_t{kThreads} * kLookupsPerThread);
  EXPECT_EQ(geocoder.num_queries(), int64_t{kThreads} * kLookupsPerThread);
  // Each distinct cell misses at least once; racing first lookups can miss
  // a few extra times, never more than once per thread per cell.
  int64_t misses = geocoder.num_queries() - geocoder.num_cache_hits();
  EXPECT_GE(misses, static_cast<int64_t>(points.size()));
  EXPECT_LE(misses, static_cast<int64_t>(points.size()) * kThreads);
}

// With the cache off, a finite quota must be spent exactly — no
// overshoot, no lost grants — no matter how many threads race for it.
TEST_F(ParallelStudyTest, QuotaEnforcedExactlyUnderContention) {
  geo::ReverseGeocoderOptions options;
  options.enable_cache = false;
  options.quota = 500;
  geo::ReverseGeocoder geocoder(&db_, options);
  constexpr int kThreads = 8;
  constexpr int kLookupsPerThread = 200;  // 1600 attempts for 500 grants

  Rng rng(7);
  geo::LatLng point = db_.SamplePointIn(0, rng);
  std::atomic<int64_t> granted{0}, exhausted{0}, other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kLookupsPerThread; ++i) {
        auto result = geocoder.Reverse(point);
        if (result.ok()) {
          ++granted;
        } else if (result.status().code() == StatusCode::kResourceExhausted) {
          ++exhausted;
        } else {
          ++other;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(granted.load(), options.quota);
  EXPECT_EQ(exhausted.load(),
            int64_t{kThreads} * kLookupsPerThread - options.quota);
  EXPECT_EQ(geocoder.quota_remaining(), 0);
  geocoder.ResetQuota();
  EXPECT_EQ(geocoder.quota_remaining(), options.quota);
  EXPECT_TRUE(geocoder.Reverse(point).ok());
}

}  // namespace
}  // namespace stir::core
