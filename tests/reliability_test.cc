#include "core/reliability.h"

#include <gtest/gtest.h>

namespace stir::core {
namespace {

UserGrouping MakeGrouping(twitter::UserId user, TopKGroup group,
                          int64_t matched, int64_t total) {
  UserGrouping grouping;
  grouping.user = user;
  grouping.group = group;
  grouping.matched_tweet_count = matched;
  grouping.gps_tweet_count = total;
  grouping.match_rank = group == TopKGroup::kNone
                            ? -1
                            : static_cast<int>(group) + 1;
  return grouping;
}

TEST(ReliabilityTest, UserWeightIsSmoothedMatchShare) {
  std::vector<UserGrouping> groupings = {
      MakeGrouping(1, TopKGroup::kTop1, 8, 10),
      MakeGrouping(2, TopKGroup::kNone, 0, 10),
  };
  ReliabilityModel model = ReliabilityModel::FromGroupings(groupings);
  // (8+1)/(10+2) = 0.75 ; (0+1)/(10+2) ~ 0.083.
  EXPECT_NEAR(model.UserWeight(1), 0.75, 1e-9);
  EXPECT_NEAR(model.UserWeight(2), 1.0 / 12.0, 1e-9);
  EXPECT_GT(model.UserWeight(1), model.UserWeight(2));
}

TEST(ReliabilityTest, UnknownUserFallsBackToGlobal) {
  std::vector<UserGrouping> groupings = {
      MakeGrouping(1, TopKGroup::kTop1, 6, 10),
      MakeGrouping(2, TopKGroup::kTop2, 4, 10),
  };
  ReliabilityModel model = ReliabilityModel::FromGroupings(groupings);
  EXPECT_DOUBLE_EQ(model.global_weight(), 0.5);  // 10 matched / 20 total
  EXPECT_DOUBLE_EQ(model.UserWeight(999), 0.5);
}

TEST(ReliabilityTest, GroupWeightsDecreaseWithRank) {
  std::vector<UserGrouping> groupings = {
      MakeGrouping(1, TopKGroup::kTop1, 9, 10),
      MakeGrouping(2, TopKGroup::kTop1, 7, 10),
      MakeGrouping(3, TopKGroup::kTop3, 2, 10),
      MakeGrouping(4, TopKGroup::kNone, 0, 10),
  };
  ReliabilityModel model = ReliabilityModel::FromGroupings(groupings);
  EXPECT_NEAR(model.GroupWeight(TopKGroup::kTop1), 0.8, 1e-9);
  EXPECT_NEAR(model.GroupWeight(TopKGroup::kTop3), 0.2, 1e-9);
  EXPECT_DOUBLE_EQ(model.GroupWeight(TopKGroup::kNone), 0.0);
  EXPECT_DOUBLE_EQ(model.GroupWeight(TopKGroup::kTop5), 0.0);  // empty
}

TEST(ReliabilityTest, SmoothingAlphaAdjustable) {
  std::vector<UserGrouping> groupings = {
      MakeGrouping(1, TopKGroup::kTop1, 1, 1),
  };
  ReliabilityOptions no_smoothing;
  no_smoothing.smoothing_alpha = 0.0;
  ReliabilityModel raw =
      ReliabilityModel::FromGroupings(groupings, no_smoothing);
  EXPECT_DOUBLE_EQ(raw.UserWeight(1), 1.0);
  ReliabilityModel smoothed = ReliabilityModel::FromGroupings(groupings);
  EXPECT_LT(smoothed.UserWeight(1), 1.0);  // pulled toward 0.5
  EXPECT_GT(smoothed.UserWeight(1), 0.5);
}

TEST(ReliabilityTest, EmptyFit) {
  ReliabilityModel model = ReliabilityModel::FromGroupings({});
  EXPECT_EQ(model.num_users(), 0u);
  EXPECT_DOUBLE_EQ(model.global_weight(), 0.0);
  EXPECT_DOUBLE_EQ(model.UserWeight(1), 0.0);
}

TEST(ReliabilityTest, GranularityLevels) {
  std::vector<UserGrouping> groupings = {
      MakeGrouping(1, TopKGroup::kTop1, 9, 10),
      MakeGrouping(2, TopKGroup::kTop1, 7, 10),
      MakeGrouping(3, TopKGroup::kNone, 0, 10),
  };
  ReliabilityModel model = ReliabilityModel::FromGroupings(groupings);
  // Per-user: smoothed individual estimate.
  EXPECT_NEAR(model.WeightFor(1, ReliabilityGranularity::kPerUser),
              10.0 / 12.0, 1e-9);
  // Per-group: the Top-1 aggregate (16/20) for both Top-1 users.
  EXPECT_NEAR(model.WeightFor(1, ReliabilityGranularity::kPerGroup), 0.8,
              1e-9);
  EXPECT_NEAR(model.WeightFor(2, ReliabilityGranularity::kPerGroup), 0.8,
              1e-9);
  EXPECT_DOUBLE_EQ(model.WeightFor(3, ReliabilityGranularity::kPerGroup),
                   0.0);
  // Global: 16/30 for everyone.
  for (twitter::UserId u : {1, 2, 3}) {
    EXPECT_NEAR(model.WeightFor(u, ReliabilityGranularity::kGlobal),
                16.0 / 30.0, 1e-9);
  }
  // Unknown users: global at every granularity.
  for (auto g : {ReliabilityGranularity::kPerUser,
                 ReliabilityGranularity::kPerGroup,
                 ReliabilityGranularity::kGlobal}) {
    EXPECT_NEAR(model.WeightFor(42, g), 16.0 / 30.0, 1e-9);
  }
  EXPECT_EQ(model.GroupOf(1), TopKGroup::kTop1);
  EXPECT_EQ(model.GroupOf(42), TopKGroup::kNone);
}

TEST(ReliabilityTest, GranularityNames) {
  EXPECT_STREQ(
      ReliabilityGranularityToString(ReliabilityGranularity::kPerUser),
      "per-user");
  EXPECT_STREQ(
      ReliabilityGranularityToString(ReliabilityGranularity::kGlobal),
      "global");
}

TEST(ReliabilityTest, WeightsBoundedByConstruction) {
  std::vector<UserGrouping> groupings;
  for (twitter::UserId u = 0; u < 100; ++u) {
    groupings.push_back(MakeGrouping(u, TopKGroup::kTop2, u % 11,
                                     10 + (u % 13)));
  }
  ReliabilityModel model = ReliabilityModel::FromGroupings(groupings);
  for (twitter::UserId u = 0; u < 100; ++u) {
    double w = model.UserWeight(u);
    EXPECT_GT(w, 0.0);
    EXPECT_LT(w, 1.0);
  }
}

}  // namespace
}  // namespace stir::core
