#include "geo/polygon_locator.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace stir::geo {
namespace {

class PolygonLocatorTest : public ::testing::Test {
 protected:
  PolygonLocatorTest()
      : db_(AdminDb::KoreanDistricts()), locator_(&db_) {}
  const AdminDb& db_;
  PolygonLocator locator_;
};

TEST_F(PolygonLocatorTest, CentroidIsInsideOwnFootprint) {
  for (size_t i = 0; i < db_.size(); ++i) {
    auto id = static_cast<RegionId>(i);
    EXPECT_TRUE(locator_.footprint(id).Contains(db_.region(id).centroid))
        << db_.region(id).FullName();
    auto located = locator_.Locate(db_.region(id).centroid);
    ASSERT_TRUE(located.ok());
    EXPECT_EQ(*located, id) << db_.region(id).FullName();
  }
}

TEST_F(PolygonLocatorTest, RejectsInvalidAndOceanPoints) {
  EXPECT_TRUE(locator_.Locate({99.0, 0.0}).status().IsInvalidArgument());
  EXPECT_TRUE(locator_.Locate({20.0, -150.0}).status().IsNotFound());
  EXPECT_TRUE(locator_.Candidates({20.0, -150.0}).empty());
}

TEST_F(PolygonLocatorTest, AgreesWithVoronoiOnSafeRadiusPoints) {
  // SamplePointIn draws within the Voronoi-safe radius; both assignment
  // models must agree there (the safe radius is inside the footprint
  // whenever footprints don't overlap, and ties break by the same
  // nearest-centroid rule).
  Rng rng(1);
  int64_t agree = 0, total = 0;
  for (size_t i = 0; i < db_.size(); ++i) {
    auto id = static_cast<RegionId>(i);
    for (int draw = 0; draw < 5; ++draw) {
      LatLng p = db_.SamplePointIn(id, rng);
      auto voronoi = db_.Locate(p);
      auto polygon = locator_.Locate(p);
      ASSERT_TRUE(voronoi.ok());
      ASSERT_TRUE(polygon.ok());
      ++total;
      agree += (*voronoi == *polygon);
    }
  }
  // Dense metro districts have overlapping footprints; near-total but
  // not perfect agreement is the expected regime.
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.95);
}

TEST_F(PolygonLocatorTest, OverlapResolvedByNearestCentroid) {
  // A point midway between two adjacent Seoul gu lies in both
  // footprints; the locator must pick the closer centroid.
  auto mapo = db_.FindCounty("Seoul", "Mapo-gu");
  auto seodaemun = db_.FindCounty("Seoul", "Seodaemun-gu");
  ASSERT_TRUE(mapo.ok());
  ASSERT_TRUE(seodaemun.ok());
  LatLng near_mapo{37.5670, 126.9100};  // closer to Mapo's centroid
  auto located = locator_.Locate(near_mapo);
  ASSERT_TRUE(located.ok());
  std::vector<RegionId> candidates = locator_.Candidates(near_mapo);
  EXPECT_GE(candidates.size(), 2u);  // dense area: overlapping footprints
  double best = 1e18;
  RegionId want = kInvalidRegion;
  for (RegionId id : candidates) {
    double d = ApproxDistanceKm(near_mapo, db_.region(id).centroid);
    if (d < best) {
      best = d;
      want = id;
    }
  }
  EXPECT_EQ(*located, want);
}

TEST_F(PolygonLocatorTest, WorksOnWorldGazetteer) {
  const AdminDb& world = AdminDb::WorldCities();
  PolygonLocator locator(&world);
  auto tokyo = world.FindCounty("Tokyo", "Tokyo");
  ASSERT_TRUE(tokyo.ok());
  auto located = locator.Locate(world.region(*tokyo).centroid);
  ASSERT_TRUE(located.ok());
  EXPECT_EQ(*located, *tokyo);
}

}  // namespace
}  // namespace stir::geo
