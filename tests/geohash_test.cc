#include "geo/geohash.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace stir::geo {
namespace {

TEST(GeohashTest, KnownVectors) {
  // Reference vectors from the original geohash definition.
  EXPECT_EQ(GeohashEncode({57.64911, 10.40744}, 11), "u4pruydqqvj");
  EXPECT_EQ(GeohashEncode({37.5665, 126.9780}, 5), "wydm9");
}

TEST(GeohashTest, DecodeRecoversCellCenter) {
  LatLng p{37.5665, 126.9780};
  for (int precision : {4, 6, 8, 10}) {
    std::string hash = GeohashEncode(p, precision);
    auto decoded = GeohashDecode(hash);
    ASSERT_TRUE(decoded.ok());
    auto bounds = GeohashDecodeBounds(hash);
    ASSERT_TRUE(bounds.ok());
    EXPECT_TRUE(bounds->Contains(p));
    EXPECT_TRUE(bounds->Contains(*decoded));
  }
}

TEST(GeohashTest, PrecisionShrinksCells) {
  LatLng p{35.1796, 129.0756};
  double previous_span = 1e9;
  for (int precision = 1; precision <= 10; ++precision) {
    auto bounds = GeohashDecodeBounds(GeohashEncode(p, precision));
    ASSERT_TRUE(bounds.ok());
    double span = (bounds->max_lat - bounds->min_lat) +
                  (bounds->max_lng - bounds->min_lng);
    EXPECT_LT(span, previous_span);
    previous_span = span;
  }
}

TEST(GeohashTest, InvalidInputs) {
  EXPECT_TRUE(GeohashDecode("").status().IsInvalidArgument());
  EXPECT_TRUE(GeohashDecode("abia").status().IsInvalidArgument());  // 'a','i'
  EXPECT_TRUE(GeohashDecode("xyz!").status().IsInvalidArgument());
}

TEST(GeohashTest, PrecisionClamped) {
  EXPECT_EQ(GeohashEncode({0, 0}, 0).size(), 1u);
  EXPECT_EQ(GeohashEncode({0, 0}, 99).size(), 18u);
}

TEST(GeohashTest, PropertyRoundTripRandomPoints) {
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    LatLng p{rng.Uniform(-89.9, 89.9), rng.Uniform(-179.9, 179.9)};
    std::string hash = GeohashEncode(p, 9);
    auto decoded = GeohashDecode(hash);
    ASSERT_TRUE(decoded.ok());
    // 9 chars: cell smaller than ~5 m.
    EXPECT_LT(HaversineKm(p, *decoded), 0.01);
    // Prefix property: shorter hash is a prefix of the longer.
    EXPECT_EQ(GeohashEncode(p, 5), hash.substr(0, 5));
  }
}

}  // namespace
}  // namespace stir::geo
