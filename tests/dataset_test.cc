#include "twitter/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace stir::twitter {
namespace {

User MakeUser(UserId id, const std::string& location, int64_t total) {
  User user;
  user.id = id;
  user.handle = "user" + std::to_string(id);
  user.profile_location = location;
  user.total_tweets = total;
  return user;
}

Tweet MakeTweet(TweetId id, UserId user, SimTime time,
                std::optional<geo::LatLng> gps = std::nullopt,
                std::string text = "hello") {
  Tweet tweet;
  tweet.id = id;
  tweet.user = user;
  tweet.time = time;
  tweet.gps = gps;
  tweet.text = std::move(text);
  return tweet;
}

TEST(DatasetTest, AddAndLookup) {
  Dataset dataset;
  dataset.AddUser(MakeUser(1, "Seoul Mapo-gu", 100));
  dataset.AddUser(MakeUser(2, "", 50));
  dataset.AddTweet(MakeTweet(10, 1, 1000, geo::LatLng{37.55, 126.9}));
  dataset.AddTweet(MakeTweet(11, 1, 2000));
  dataset.AddTweet(MakeTweet(12, 2, 1500));

  EXPECT_EQ(dataset.users().size(), 2u);
  EXPECT_EQ(dataset.tweets().size(), 3u);
  EXPECT_EQ(dataset.gps_tweet_count(), 1);
  EXPECT_EQ(dataset.total_tweet_count(), 150);
  ASSERT_NE(dataset.FindUser(1), nullptr);
  EXPECT_EQ(dataset.FindUser(1)->profile_location, "Seoul Mapo-gu");
  EXPECT_EQ(dataset.FindUser(99), nullptr);
  EXPECT_EQ(dataset.TweetIndicesOf(1).size(), 2u);
  EXPECT_EQ(dataset.TweetIndicesOf(2).size(), 1u);
  EXPECT_TRUE(dataset.TweetIndicesOf(99).empty());
}

TEST(DatasetTest, TsvRoundTrip) {
  Dataset dataset;
  dataset.AddUser(MakeUser(1, "Seoul Gangnam-gu", 7));
  dataset.AddUser(MakeUser(2, "my\thome", 3));  // delimiter in field
  dataset.AddTweet(
      MakeTweet(5, 1, 42, geo::LatLng{37.517, 127.047}, "at Gangnam"));
  dataset.AddTweet(MakeTweet(6, 2, 43, std::nullopt, "plain tweet"));

  std::string users_path = ::testing::TempDir() + "/stir_users.tsv";
  std::string tweets_path = ::testing::TempDir() + "/stir_tweets.tsv";
  ASSERT_TRUE(dataset.SaveTsv(users_path, tweets_path).ok());

  auto loaded = Dataset::LoadTsv(users_path, tweets_path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->users().size(), 2u);
  EXPECT_EQ(loaded->tweets().size(), 2u);
  EXPECT_EQ(loaded->FindUser(2)->profile_location, "my\thome");
  EXPECT_EQ(loaded->gps_tweet_count(), 1);
  const Tweet& gps_tweet = loaded->tweets()[0];
  ASSERT_TRUE(gps_tweet.gps.has_value());
  EXPECT_NEAR(gps_tweet.gps->lat, 37.517, 1e-6);
  EXPECT_NEAR(gps_tweet.gps->lng, 127.047, 1e-6);
  EXPECT_EQ(gps_tweet.text, "at Gangnam");

  std::remove(users_path.c_str());
  std::remove(tweets_path.c_str());
}

TEST(DatasetTest, LoadRejectsTweetFromUnknownUser) {
  std::string users_path = ::testing::TempDir() + "/stir_users_bad.tsv";
  std::string tweets_path = ::testing::TempDir() + "/stir_tweets_bad.tsv";
  {
    Dataset dataset;
    dataset.AddUser(MakeUser(1, "x", 1));
    ASSERT_TRUE(dataset.SaveTsv(users_path, tweets_path).ok());
  }
  // Append a tweet from user 999.
  FILE* f = fopen(tweets_path.c_str(), "a");
  ASSERT_NE(f, nullptr);
  fputs("7\t999\t0\t\t\toops\n", f);
  fclose(f);
  auto loaded = Dataset::LoadTsv(users_path, tweets_path);
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
  std::remove(users_path.c_str());
  std::remove(tweets_path.c_str());
}

TEST(DatasetTest, LoadRejectsBadCoordinates) {
  std::string users_path = ::testing::TempDir() + "/stir_users_bad2.tsv";
  std::string tweets_path = ::testing::TempDir() + "/stir_tweets_bad2.tsv";
  {
    Dataset dataset;
    dataset.AddUser(MakeUser(1, "x", 1));
    ASSERT_TRUE(dataset.SaveTsv(users_path, tweets_path).ok());
  }
  FILE* f = fopen(tweets_path.c_str(), "a");
  ASSERT_NE(f, nullptr);
  fputs("7\t1\t0\tnotanumber\t12\toops\n", f);
  fclose(f);
  EXPECT_TRUE(Dataset::LoadTsv(users_path, tweets_path)
                  .status()
                  .IsInvalidArgument());
  std::remove(users_path.c_str());
  std::remove(tweets_path.c_str());
}

/// Writes a TSV pair with every malformed-row shape the lenient loader
/// quarantines: wrong field count, bad ints, duplicate user ids, bad
/// coordinates, and tweets from unknown users.
void WriteMalformedTsvPair(const std::string& users_path,
                           const std::string& tweets_path) {
  FILE* users = fopen(users_path.c_str(), "w");
  ASSERT_NE(users, nullptr);
  fputs("id\thandle\tprofile_location\ttotal_tweets\n", users);
  fputs("1\talice\tSeoul\t10\n", users);
  fputs("2\tbob\tBusan\n", users);              // 3 fields
  fputs("notanid\tcarol\tDaegu\t5\n", users);   // bad id
  fputs("1\tdave\tIncheon\t3\n", users);        // duplicate of user 1
  fputs("4\terin\tGwangju\t7\n", users);
  fclose(users);

  FILE* tweets = fopen(tweets_path.c_str(), "w");
  ASSERT_NE(tweets, nullptr);
  fputs("id\tuser\ttime\tlat\tlng\ttext\n", tweets);
  fputs("10\t1\t100\t37.5\t127.0\tok\n", tweets);
  fputs("11\t1\t200\tnotanumber\t12\tbad coords\n", tweets);
  fputs("12\t999\t300\t\t\tunknown user\n", tweets);
  fputs("13\t4\t400\t\t\tplain ok\n", tweets);
  fputs("14\t4\n", tweets);  // 2 fields
  fclose(tweets);
}

TEST(DatasetTest, LenientLoadQuarantinesMalformedRows) {
  std::string users_path = ::testing::TempDir() + "/stir_users_lenient.tsv";
  std::string tweets_path = ::testing::TempDir() + "/stir_tweets_lenient.tsv";
  WriteMalformedTsvPair(users_path, tweets_path);

  Dataset::TsvLoadOptions lenient;
  lenient.strict = false;
  Dataset::TsvLoadStats stats;
  auto loaded = Dataset::LoadTsv(users_path, tweets_path, lenient, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Users 1 and 4 survive; the 3-field, bad-id, and duplicate rows don't.
  ASSERT_EQ(loaded->users().size(), 2u);
  EXPECT_NE(loaded->FindUser(1), nullptr);
  EXPECT_NE(loaded->FindUser(4), nullptr);
  EXPECT_EQ(loaded->FindUser(1)->handle, "alice");  // duplicate lost
  EXPECT_EQ(stats.quarantined_user_rows, 3);

  // Tweets 10 and 13 survive; bad coords, unknown user, short row don't.
  ASSERT_EQ(loaded->tweets().size(), 2u);
  EXPECT_EQ(loaded->tweets()[0].id, 10);
  EXPECT_EQ(loaded->tweets()[1].id, 13);
  EXPECT_EQ(stats.quarantined_tweet_rows, 3);
  EXPECT_EQ(stats.quarantined(), 6);
}

TEST(DatasetTest, StrictLoadStillFailsFastOnMalformedRows) {
  std::string users_path = ::testing::TempDir() + "/stir_users_strict.tsv";
  std::string tweets_path = ::testing::TempDir() + "/stir_tweets_strict.tsv";
  WriteMalformedTsvPair(users_path, tweets_path);

  // Both the 2-arg overload and explicit strict options fail fast.
  EXPECT_TRUE(Dataset::LoadTsv(users_path, tweets_path)
                  .status()
                  .IsInvalidArgument());
  Dataset::TsvLoadStats stats;
  EXPECT_TRUE(Dataset::LoadTsv(users_path, tweets_path,
                               Dataset::TsvLoadOptions{}, &stats)
                  .status()
                  .IsInvalidArgument());
  std::remove(users_path.c_str());
  std::remove(tweets_path.c_str());
}

TEST(DatasetTest, LenientLoadOnCleanFilesQuarantinesNothing) {
  std::string users_path = ::testing::TempDir() + "/stir_users_clean.tsv";
  std::string tweets_path = ::testing::TempDir() + "/stir_tweets_clean.tsv";
  {
    Dataset dataset;
    dataset.AddUser(MakeUser(1, "Seoul", 2));
    dataset.AddTweet(MakeTweet(10, 1, 100, geo::LatLng{37.5, 127.0}));
    dataset.AddTweet(MakeTweet(11, 1, 200));
    ASSERT_TRUE(dataset.SaveTsv(users_path, tweets_path).ok());
  }
  Dataset::TsvLoadOptions lenient;
  lenient.strict = false;
  Dataset::TsvLoadStats stats;
  auto loaded = Dataset::LoadTsv(users_path, tweets_path, lenient, &stats);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->users().size(), 1u);
  EXPECT_EQ(loaded->tweets().size(), 2u);
  EXPECT_EQ(stats.quarantined(), 0);
  std::remove(users_path.c_str());
  std::remove(tweets_path.c_str());
}

TEST(DatasetDeathTest, DuplicateUserAborts) {
  Dataset dataset;
  dataset.AddUser(MakeUser(1, "x", 1));
  EXPECT_DEATH(dataset.AddUser(MakeUser(1, "y", 2)), "duplicate user");
}

TEST(DatasetDeathTest, TweetFromUnknownUserAborts) {
  Dataset dataset;
  EXPECT_DEATH(dataset.AddTweet(MakeTweet(1, 42, 0)), "unknown user");
}

}  // namespace
}  // namespace stir::twitter
