#include "twitter/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace stir::twitter {
namespace {

User MakeUser(UserId id, const std::string& location, int64_t total) {
  User user;
  user.id = id;
  user.handle = "user" + std::to_string(id);
  user.profile_location = location;
  user.total_tweets = total;
  return user;
}

Tweet MakeTweet(TweetId id, UserId user, SimTime time,
                std::optional<geo::LatLng> gps = std::nullopt,
                std::string text = "hello") {
  Tweet tweet;
  tweet.id = id;
  tweet.user = user;
  tweet.time = time;
  tweet.gps = gps;
  tweet.text = std::move(text);
  return tweet;
}

TEST(DatasetTest, AddAndLookup) {
  Dataset dataset;
  dataset.AddUser(MakeUser(1, "Seoul Mapo-gu", 100));
  dataset.AddUser(MakeUser(2, "", 50));
  dataset.AddTweet(MakeTweet(10, 1, 1000, geo::LatLng{37.55, 126.9}));
  dataset.AddTweet(MakeTweet(11, 1, 2000));
  dataset.AddTweet(MakeTweet(12, 2, 1500));

  EXPECT_EQ(dataset.users().size(), 2u);
  EXPECT_EQ(dataset.tweets().size(), 3u);
  EXPECT_EQ(dataset.gps_tweet_count(), 1);
  EXPECT_EQ(dataset.total_tweet_count(), 150);
  ASSERT_NE(dataset.FindUser(1), nullptr);
  EXPECT_EQ(dataset.FindUser(1)->profile_location, "Seoul Mapo-gu");
  EXPECT_EQ(dataset.FindUser(99), nullptr);
  EXPECT_EQ(dataset.TweetIndicesOf(1).size(), 2u);
  EXPECT_EQ(dataset.TweetIndicesOf(2).size(), 1u);
  EXPECT_TRUE(dataset.TweetIndicesOf(99).empty());
}

TEST(DatasetTest, TsvRoundTrip) {
  Dataset dataset;
  dataset.AddUser(MakeUser(1, "Seoul Gangnam-gu", 7));
  dataset.AddUser(MakeUser(2, "my\thome", 3));  // delimiter in field
  dataset.AddTweet(
      MakeTweet(5, 1, 42, geo::LatLng{37.517, 127.047}, "at Gangnam"));
  dataset.AddTweet(MakeTweet(6, 2, 43, std::nullopt, "plain tweet"));

  std::string users_path = ::testing::TempDir() + "/stir_users.tsv";
  std::string tweets_path = ::testing::TempDir() + "/stir_tweets.tsv";
  ASSERT_TRUE(dataset.SaveTsv(users_path, tweets_path).ok());

  auto loaded = Dataset::LoadTsv(users_path, tweets_path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->users().size(), 2u);
  EXPECT_EQ(loaded->tweets().size(), 2u);
  EXPECT_EQ(loaded->FindUser(2)->profile_location, "my\thome");
  EXPECT_EQ(loaded->gps_tweet_count(), 1);
  const Tweet& gps_tweet = loaded->tweets()[0];
  ASSERT_TRUE(gps_tweet.gps.has_value());
  EXPECT_NEAR(gps_tweet.gps->lat, 37.517, 1e-6);
  EXPECT_NEAR(gps_tweet.gps->lng, 127.047, 1e-6);
  EXPECT_EQ(gps_tweet.text, "at Gangnam");

  std::remove(users_path.c_str());
  std::remove(tweets_path.c_str());
}

TEST(DatasetTest, LoadRejectsTweetFromUnknownUser) {
  std::string users_path = ::testing::TempDir() + "/stir_users_bad.tsv";
  std::string tweets_path = ::testing::TempDir() + "/stir_tweets_bad.tsv";
  {
    Dataset dataset;
    dataset.AddUser(MakeUser(1, "x", 1));
    ASSERT_TRUE(dataset.SaveTsv(users_path, tweets_path).ok());
  }
  // Append a tweet from user 999.
  FILE* f = fopen(tweets_path.c_str(), "a");
  ASSERT_NE(f, nullptr);
  fputs("7\t999\t0\t\t\toops\n", f);
  fclose(f);
  auto loaded = Dataset::LoadTsv(users_path, tweets_path);
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
  std::remove(users_path.c_str());
  std::remove(tweets_path.c_str());
}

TEST(DatasetTest, LoadRejectsBadCoordinates) {
  std::string users_path = ::testing::TempDir() + "/stir_users_bad2.tsv";
  std::string tweets_path = ::testing::TempDir() + "/stir_tweets_bad2.tsv";
  {
    Dataset dataset;
    dataset.AddUser(MakeUser(1, "x", 1));
    ASSERT_TRUE(dataset.SaveTsv(users_path, tweets_path).ok());
  }
  FILE* f = fopen(tweets_path.c_str(), "a");
  ASSERT_NE(f, nullptr);
  fputs("7\t1\t0\tnotanumber\t12\toops\n", f);
  fclose(f);
  EXPECT_TRUE(Dataset::LoadTsv(users_path, tweets_path)
                  .status()
                  .IsInvalidArgument());
  std::remove(users_path.c_str());
  std::remove(tweets_path.c_str());
}

TEST(DatasetDeathTest, DuplicateUserAborts) {
  Dataset dataset;
  dataset.AddUser(MakeUser(1, "x", 1));
  EXPECT_DEATH(dataset.AddUser(MakeUser(1, "y", 2)), "duplicate user");
}

TEST(DatasetDeathTest, TweetFromUnknownUserAborts) {
  Dataset dataset;
  EXPECT_DEATH(dataset.AddTweet(MakeTweet(1, 42, 0)), "unknown user");
}

}  // namespace
}  // namespace stir::twitter
