#include "common/string_util.h"

#include <gtest/gtest.h>

namespace stir {
namespace {

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a#b#c", '#'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a##c", '#'), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", '#'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("#", '#'), (std::vector<std::string>{"", ""}));
}

TEST(SplitAndTrimTest, DropsEmptyAndTrims) {
  EXPECT_EQ(SplitAndTrim(" a / b /  ", '/'),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(SplitAndTrim("  ", '/').empty());
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> pieces = {"1", "Seoul", "Jung-gu"};
  EXPECT_EQ(Split(Join(pieces, "#"), '#'), pieces);
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(TrimTest, RemovesAsciiWhitespaceOnly) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(CaseTest, ToLowerPreservesNonAscii) {
  EXPECT_EQ(ToLower("Seoul GANGNAM-gu"), "seoul gangnam-gu");
  // UTF-8 Korean bytes pass through untouched.
  std::string korean = "\xEC\x84\x9C\xEC\x9A\xB8";  // 서울
  EXPECT_EQ(ToLower(korean), korean);
  EXPECT_EQ(ToUpper("abc"), "ABC");
}

TEST(CaseTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Seoul", "sEOUL"));
  EXPECT_FALSE(EqualsIgnoreCase("Seoul", "Seoul "));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(CaseTest, ContainsIgnoreCase) {
  EXPECT_TRUE(ContainsIgnoreCase("I love Lady GAGA tunes", "lady gaga"));
  EXPECT_FALSE(ContainsIgnoreCase("gag", "gaga"));
  EXPECT_TRUE(ContainsIgnoreCase("anything", ""));
}

TEST(ParseTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64(" -7 ").value(), -7);
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("12abc").has_value());
  EXPECT_FALSE(ParseInt64("1.5").has_value());
}

TEST(ParseTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("37.5665").value(), 37.5665);
  EXPECT_DOUBLE_EQ(ParseDouble("-126.98").value(), -126.98);
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.2.3").has_value());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(ReplaceAllTest, ReplacesEveryOccurrence) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "#"), "a#b#c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // left-to-right
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");   // empty pattern: no-op
}

}  // namespace
}  // namespace stir
