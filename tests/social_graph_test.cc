#include "twitter/social_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace stir::twitter {
namespace {

SocialGraph MakeGraph(int64_t n, uint64_t seed = 1) {
  SocialGraphOptions options;
  options.num_users = n;
  options.mean_following = 8.0;
  Rng rng(seed);
  return SocialGraph::Generate(options, rng);
}

TEST(SocialGraphTest, BasicInvariants) {
  SocialGraph graph = MakeGraph(500);
  EXPECT_EQ(graph.num_users(), 500);
  EXPECT_GT(graph.num_edges(), 500);

  int64_t following_total = 0, follower_total = 0;
  for (UserId u = 0; u < graph.num_users(); ++u) {
    const auto& following = graph.Following(u);
    const auto& followers = graph.Followers(u);
    following_total += static_cast<int64_t>(following.size());
    follower_total += static_cast<int64_t>(followers.size());
    // No self-edges; sorted unique adjacency.
    EXPECT_TRUE(std::is_sorted(following.begin(), following.end()));
    EXPECT_TRUE(
        std::adjacent_find(following.begin(), following.end()) ==
        following.end());
    EXPECT_TRUE(std::find(following.begin(), following.end(), u) ==
                following.end());
  }
  // Edge conservation: every follow edge appears once on each side.
  EXPECT_EQ(following_total, follower_total);
  EXPECT_EQ(following_total, graph.num_edges());
}

TEST(SocialGraphTest, EdgesAreMutuallyConsistent) {
  SocialGraph graph = MakeGraph(300, 2);
  for (UserId u = 0; u < graph.num_users(); ++u) {
    for (UserId v : graph.Following(u)) {
      const auto& followers = graph.Followers(v);
      EXPECT_TRUE(std::binary_search(followers.begin(), followers.end(), u))
          << u << " -> " << v;
    }
  }
}

TEST(SocialGraphTest, DeterministicForSeed) {
  SocialGraph a = MakeGraph(200, 7);
  SocialGraph b = MakeGraph(200, 7);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (UserId u = 0; u < a.num_users(); ++u) {
    EXPECT_EQ(a.Following(u), b.Following(u));
  }
}

TEST(SocialGraphTest, HeavyTailedInDegree) {
  SocialGraph graph = MakeGraph(3000, 3);
  size_t max_followers = 0;
  double total = 0;
  for (UserId u = 0; u < graph.num_users(); ++u) {
    max_followers = std::max(max_followers, graph.Followers(u).size());
    total += static_cast<double>(graph.Followers(u).size());
  }
  double mean = total / static_cast<double>(graph.num_users());
  // Preferential attachment: the hub is far above the mean.
  EXPECT_GT(static_cast<double>(max_followers), mean * 8.0);
}

TEST(SocialGraphTest, MostFollowedUserIsArgmax) {
  SocialGraph graph = MakeGraph(400, 4);
  UserId hub = graph.MostFollowedUser();
  for (UserId u = 0; u < graph.num_users(); ++u) {
    EXPECT_LE(graph.Followers(u).size(), graph.Followers(hub).size());
  }
}

TEST(SocialGraphTest, FromEdgesBuildsExactGraph) {
  SocialGraph graph = SocialGraph::FromEdges(
      4, {{0, 1}, {1, 0}, {2, 1}, {0, 1} /*dup*/, {3, 3} /*self*/});
  EXPECT_EQ(graph.num_users(), 4);
  EXPECT_EQ(graph.num_edges(), 3);
  EXPECT_EQ(graph.Following(0), (std::vector<UserId>{1}));
  EXPECT_EQ(graph.Followers(1), (std::vector<UserId>{0, 2}));
  EXPECT_TRUE(graph.Following(3).empty());
  EXPECT_EQ(graph.MostFollowedUser(), 1);
}

TEST(SocialGraphTest, ReciprocityRoughlyHonored) {
  SocialGraphOptions options;
  options.num_users = 2000;
  options.mean_following = 10.0;
  options.reciprocity = 0.5;
  Rng rng(5);
  SocialGraph graph = SocialGraph::Generate(options, rng);
  int64_t reciprocal = 0, edges = 0;
  for (UserId u = 0; u < graph.num_users(); ++u) {
    for (UserId v : graph.Following(u)) {
      ++edges;
      const auto& back = graph.Following(v);
      reciprocal += std::binary_search(back.begin(), back.end(), u);
    }
  }
  double ratio = static_cast<double>(reciprocal) / static_cast<double>(edges);
  EXPECT_GT(ratio, 0.3);  // both directions counted; ~2*0.5/(1+0.5) ~ 0.66
}

}  // namespace
}  // namespace stir::twitter
