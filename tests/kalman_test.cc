#include "event/kalman.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace stir::event {
namespace {

TEST(KalmanTest, InitializeSetsState) {
  KalmanFilter2D filter;
  EXPECT_FALSE(filter.initialized());
  filter.Initialize({37.5, 127.0}, 1.0);
  EXPECT_TRUE(filter.initialized());
  EXPECT_EQ(filter.state(), (geo::LatLng{37.5, 127.0}));
  EXPECT_DOUBLE_EQ(filter.variance(), 1.0);
}

TEST(KalmanTest, FirstUpdateActsAsInitialize) {
  KalmanFilter2D filter;
  filter.Update({36.0, 128.0}, 0.5);
  EXPECT_TRUE(filter.initialized());
  EXPECT_EQ(filter.state(), (geo::LatLng{36.0, 128.0}));
}

TEST(KalmanTest, UpdateMovesTowardMeasurement) {
  KalmanFilter2D filter;
  filter.Initialize({37.0, 127.0}, 1.0);
  filter.Update({38.0, 128.0}, 1.0);
  // Equal variances: posterior is the midpoint.
  EXPECT_NEAR(filter.state().lat, 37.5, 1e-9);
  EXPECT_NEAR(filter.state().lng, 127.5, 1e-9);
  EXPECT_NEAR(filter.variance(), 0.5, 1e-9);
}

TEST(KalmanTest, NoisyMeasurementMovesLess) {
  KalmanFilter2D a, b;
  a.Initialize({37.0, 127.0}, 1.0);
  b.Initialize({37.0, 127.0}, 1.0);
  a.Update({38.0, 127.0}, 0.1);   // precise measurement
  b.Update({38.0, 127.0}, 10.0);  // noisy measurement
  EXPECT_GT(a.state().lat, b.state().lat);
}

TEST(KalmanTest, VarianceMonotonicallyShrinksWithUpdates) {
  KalmanFilter2D filter;
  filter.Initialize({37.0, 127.0}, 5.0);
  double previous = filter.variance();
  for (int i = 0; i < 10; ++i) {
    filter.Update({37.0, 127.0}, 1.0);
    EXPECT_LT(filter.variance(), previous);
    previous = filter.variance();
  }
}

TEST(KalmanTest, PredictInflatesVariance) {
  KalmanFilter2D filter(0.25);
  filter.Initialize({37.0, 127.0}, 1.0);
  filter.Predict();
  EXPECT_DOUBLE_EQ(filter.variance(), 1.25);
}

TEST(KalmanTest, ConvergesToTrueLocationUnderNoise) {
  Rng rng(3);
  geo::LatLng truth{36.35, 127.38};
  KalmanFilter2D filter;
  for (int i = 0; i < 400; ++i) {
    geo::LatLng measurement{truth.lat + rng.Normal(0.0, 0.2),
                            truth.lng + rng.Normal(0.0, 0.2)};
    filter.Update(measurement, 0.04);  // R = sigma^2
  }
  EXPECT_LT(geo::HaversineKm(filter.state(), truth), 3.0);
  EXPECT_LT(filter.variance(), 0.001);
}

}  // namespace
}  // namespace stir::event
