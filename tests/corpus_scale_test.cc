// Out-of-core corpus layer at volume. Two tiers share this binary:
//
//  * ArenaSmoke — a downscaled 1M-row variant (tens of thousands of
//    users, ~1M total tweets) that runs in seconds and stays in the
//    default ctest sweep, so tier-1 always exercises the streamed
//    writer + columnar study end to end.
//  * ArenaAtScale (ctest -L scale) — the heavyweight lane: hundreds of
//    thousands of users streamed to disk, studied off the mmap, and the
//    result byte-compared against the row-store path. The scale label
//    also runs under the ASan lane (see tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/report.h"
#include "core/study.h"
#include "io/corpus.h"
#include "io/corpus_reader.h"
#include "twitter/generator.h"

namespace stir::io {
namespace {

std::filesystem::path TempPath(const std::string& name) {
  return std::filesystem::temp_directory_path() / name;
}

// The heavyweight suite is opt-in: labels don't exclude tests from a
// plain `ctest` run, so the gate lives in the environment instead
// (STIR_SCALE_TESTS=1 ctest -L scale).
#define STIR_REQUIRE_SCALE_LANE()                                      \
  if (std::getenv("STIR_SCALE_TESTS") == nullptr) {                    \
    GTEST_SKIP() << "set STIR_SCALE_TESTS=1 to run the scale lane";    \
  }

/// Streams a Korean-preset corpus at `scale` to disk, runs the columnar
/// study off the view, and checks it against the in-memory dataset path.
void StreamStudyAndCompare(double scale, int threads,
                           const std::string& tag) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  twitter::DatasetGenerator generator(
      &db, twitter::DatasetGenerator::KoreanConfig(scale));
  std::filesystem::path path = TempPath("corpus_scale_" + tag + ".corpus");

  {
    CorpusWriter writer(path.string());
    auto info = generator.GenerateToCorpus(&writer);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    auto stats = writer.Finish();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ASSERT_TRUE(stats->grouped);
  }

  auto view = CorpusView::Open(path.string());
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  StudyConfig config;
  config.threads = threads;
  core::CorrelationStudy study(&db);
  core::CorrelationStudy threaded(&db, config);

  core::StudyResult from_view = threaded.Run(*view);
  twitter::GeneratedData data = generator.Generate();
  ASSERT_EQ(static_cast<size_t>(view->user_count()),
            data.dataset.users().size());
  core::StudyResult from_dataset = study.Run(data.dataset);

  EXPECT_EQ(from_dataset.FunnelString(), from_view.FunnelString());
  EXPECT_EQ(from_dataset.GroupTableString(), from_view.GroupTableString());
  EXPECT_EQ(core::StudyReportJsonString(from_dataset),
            core::StudyReportJsonString(from_view));
  std::filesystem::remove(path);
}

// Tier-1-safe smoke: ~10k users / ~2M total tweets, a few seconds.
TEST(CorpusScaleSmokeTest, ArenaSmoke) {
  StreamStudyAndCompare(0.2, 4, "smoke");
}

// The heavyweight lane (ctest -L scale): a quarter of the paper's crawl
// streamed out of core and studied in parallel off the mmap.
TEST(CorpusScaleTest, ArenaAtScale) {
  STIR_REQUIRE_SCALE_LANE();
  StreamStudyAndCompare(5.0, 8, "scale");
}

// Page-release hygiene at volume: a grouped corpus walked serially must
// keep working even after every released stride (ReleaseTweetRows is
// advisory, so re-reads after release still return the same bytes).
TEST(CorpusScaleTest, ReleasedPagesRereadConsistently) {
  STIR_REQUIRE_SCALE_LANE();
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  twitter::DatasetGenerator generator(
      &db, twitter::DatasetGenerator::KoreanConfig(0.5));
  std::filesystem::path path = TempPath("corpus_scale_release.corpus");
  {
    CorpusWriter writer(path.string());
    auto info = generator.GenerateToCorpus(&writer);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto view = CorpusView::Open(path.string());
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  int64_t gps_before = 0;
  for (size_t row = 0; row < view->tweet_count(); ++row) {
    if (view->tweet_has_gps(row)) ++gps_before;
  }
  view->ReleaseTweetRows(0, view->tweet_count());
  int64_t gps_after = 0;
  for (size_t row = 0; row < view->tweet_count(); ++row) {
    if (view->tweet_has_gps(row)) ++gps_after;
  }
  EXPECT_EQ(gps_before, gps_after);
  EXPECT_EQ(gps_after, view->gps_tweet_count());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace stir::io
