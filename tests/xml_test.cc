#include "common/xml.h"

#include <gtest/gtest.h>

namespace stir {
namespace {

TEST(XmlTest, EscapeAndUnescapeThroughRoundTrip) {
  XmlNode node("t");
  node.set_text("a < b & c > \"d\" 'e'");
  std::string xml = node.ToString();
  EXPECT_NE(xml.find("&lt;"), std::string::npos);
  auto parsed = ParseXml(xml);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->text(), "a < b & c > \"d\" 'e'");
}

TEST(XmlTest, BuildsYahooShapedResponse) {
  XmlNode root("ResultSet");
  root.AddAttribute("version", "1.0");
  XmlNode& result = root.AddChild("Result");
  XmlNode& location = result.AddChild("location");
  location.AddChild("country").set_text("South Korea");
  location.AddChild("state").set_text("Seoul");
  location.AddChild("county").set_text("Yangcheon-gu");
  location.AddChild("town").set_text("Mok 1-dong");

  std::string xml = root.ToString();
  auto parsed = ParseXml(xml);
  ASSERT_TRUE(parsed.ok());
  const XmlNode& p = **parsed;
  EXPECT_EQ(p.name(), "ResultSet");
  ASSERT_NE(p.FindAttribute("version"), nullptr);
  EXPECT_EQ(*p.FindAttribute("version"), "1.0");
  const XmlNode* loc = p.FindChild("Result")->FindChild("location");
  ASSERT_NE(loc, nullptr);
  EXPECT_EQ(loc->ChildText("state"), "Seoul");
  EXPECT_EQ(loc->ChildText("county"), "Yangcheon-gu");
  EXPECT_EQ(loc->ChildText("missing"), "");
}

TEST(XmlTest, SelfClosingTag) {
  auto parsed = ParseXml("<empty/>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->name(), "empty");
  EXPECT_TRUE((*parsed)->text().empty());
  EXPECT_TRUE((*parsed)->children().empty());
}

TEST(XmlTest, AttributesWithBothQuoteStyles) {
  auto parsed = ParseXml("<a x=\"1\" y='two'/>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*(*parsed)->FindAttribute("x"), "1");
  EXPECT_EQ(*(*parsed)->FindAttribute("y"), "two");
  EXPECT_EQ((*parsed)->FindAttribute("z"), nullptr);
}

TEST(XmlTest, SkipsPrologAndComments) {
  auto parsed = ParseXml(
      "<?xml version=\"1.0\"?>\n<!-- header -->\n<r><!-- mid -->"
      "<c>v</c></r>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->ChildText("c"), "v");
}

TEST(XmlTest, MismatchedCloseTagFails) {
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());
}

TEST(XmlTest, MissingCloseTagFails) {
  EXPECT_FALSE(ParseXml("<a><b></b>").ok());
}

TEST(XmlTest, TrailingContentFails) {
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
}

TEST(XmlTest, CompactModeSingleLine) {
  XmlNode root("r");
  root.AddChild("c").set_text("x");
  std::string compact = root.ToString(-1);
  EXPECT_EQ(compact.find('\n'), std::string::npos);
  EXPECT_TRUE(ParseXml(compact).ok());
}

TEST(XmlTest, DeepNestingRoundTrip) {
  XmlNode root("l0");
  XmlNode* current = &root;
  for (int i = 1; i < 20; ++i) {
    current = &current->AddChild("l" + std::to_string(i));
  }
  current->set_text("bottom");
  auto parsed = ParseXml(root.ToString());
  ASSERT_TRUE(parsed.ok());
  const XmlNode* walker = parsed->get();
  for (int i = 1; i < 20; ++i) {
    walker = walker->FindChild("l" + std::to_string(i));
    ASSERT_NE(walker, nullptr);
  }
  EXPECT_EQ(walker->text(), "bottom");
}

}  // namespace
}  // namespace stir
