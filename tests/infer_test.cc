// stir::infer battery (DESIGN.md §16): strategy math (argmax weights,
// value-determined tie-break, confidence shrinkage and abstention), the
// shared night window, gazetteer text votes, the ground-truth sidecar
// round-trip, the blindness contract (corrupting profile strings and the
// truth sidecar leaves predictions byte-identical), determinism of
// infer_user responses across worker counts and across the three corpus
// formats, and streaming-seal equivalence with the batch build.
// Labelled `infer`; runs in the TSan lane.

#include "infer/home_inferrer.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/study.h"
#include "core/study_config.h"
#include "geo/admin_db.h"
#include "gtest/gtest.h"
#include "infer/eval.h"
#include "infer/inference_index.h"
#include "io/corpus.h"
#include "io/corpus_reader.h"
#include "io/truth_sidecar.h"
#include "serve/server.h"
#include "serve/study_index.h"
#include "stream/engine.h"
#include "twitter/column_store.h"
#include "twitter/dataset.h"
#include "twitter/generator.h"

namespace stir::infer {
namespace {

using geo::AdminDb;

/// Value dump of every evidence field in index order. Two indexes with
/// equal fingerprints answer every infer_user request identically (the
/// strategies are pure functions of this evidence).
std::string Fingerprint(const InferenceIndex& index) {
  std::ostringstream out;
  for (const UserEvidence& user : index.users()) {
    out << 'u' << user.user << ':' << user.tweets << ',' << user.gps_tweets
        << ',' << user.text_votes << '[';
    for (const RegionEvidence& region : user.regions) {
      out << region.region << ':' << region.gps_tweets << ','
          << region.night_gps_tweets << ',' << region.text_votes << ';';
    }
    out << "]\n";
  }
  return out.str();
}

/// Every strategy's full Inference over every user — the decision
/// surface the blindness and determinism tests compare.
std::string Decisions(const InferenceIndex& index, const InferParams& params) {
  std::ostringstream out;
  for (int s = 0; s < kNumStrategies; ++s) {
    auto inferrer = MakeInferrer(static_cast<Strategy>(s), params);
    for (const UserEvidence& user : index.users()) {
      Inference inference = inferrer->Infer(user);
      out << inferrer->name() << '/' << user.user << ':' << inference.decided
          << ',' << inference.district << ',' << inference.confidence << ','
          << inference.evidence << ',' << inference.night_evidence << '\n';
    }
  }
  return out.str();
}

UserEvidence TwoRegionGps(int64_t gps_a, int64_t night_a, int64_t gps_b,
                          int64_t night_b) {
  UserEvidence evidence;
  evidence.user = 7;
  evidence.gps_tweets = gps_a + gps_b;
  evidence.tweets = evidence.gps_tweets;
  RegionEvidence a;
  a.region = 3;
  a.gps_tweets = gps_a;
  a.night_gps_tweets = night_a;
  RegionEvidence b;
  b.region = 9;
  b.gps_tweets = gps_b;
  b.night_gps_tweets = night_b;
  evidence.regions = {a, b};
  return evidence;
}

/// The calibrated score the header documents:
/// (top / total) * (total / (total + prior)).
double ExpectedConfidence(double top, double total, double prior) {
  return (top / total) * (total / (total + prior));
}

TEST(InferStrategyTest, StrategyNamesRoundTrip) {
  for (int s = 0; s < kNumStrategies; ++s) {
    Strategy strategy = static_cast<Strategy>(s);
    Strategy parsed;
    ASSERT_TRUE(StrategyFromString(StrategyToString(strategy), &parsed))
        << StrategyToString(strategy);
    EXPECT_EQ(parsed, strategy);
  }
  Strategy ignored;
  EXPECT_FALSE(StrategyFromString("astral", &ignored));
  EXPECT_FALSE(StrategyFromString("", &ignored));
}

TEST(InferStrategyTest, SpatialPicksGpsModeAndBreaksTiesBySmallerRegion) {
  InferParams params;
  auto spatial = MakeInferrer(Strategy::kSpatial, params);

  Inference mode = spatial->Infer(TwoRegionGps(4, 0, 9, 0));
  ASSERT_TRUE(mode.decided);
  EXPECT_EQ(mode.district, 9);
  EXPECT_DOUBLE_EQ(mode.confidence, ExpectedConfidence(9, 13, 2));

  // Equal weight: the smaller region id wins, on every platform.
  Inference tie = spatial->Infer(TwoRegionGps(5, 0, 5, 0));
  ASSERT_TRUE(tie.decided);
  EXPECT_EQ(tie.district, 3);
}

TEST(InferStrategyTest, DiurnalUpweightsNightTweetsWhereSpatialIsFooled) {
  // The commuter shape: the workplace district (3) out-tweets home (9)
  // by raw count, but home owns the night window.
  UserEvidence commuter = TwoRegionGps(5, 0, 4, 3);
  InferParams params;  // night_weight = 3.

  Inference by_count = MakeInferrer(Strategy::kSpatial, params)->Infer(commuter);
  ASSERT_TRUE(by_count.decided);
  EXPECT_EQ(by_count.district, 3);

  // Diurnal weight: 5 vs 4 + (3-1)*3 = 10.
  Inference by_night = MakeInferrer(Strategy::kDiurnal, params)->Infer(commuter);
  ASSERT_TRUE(by_night.decided);
  EXPECT_EQ(by_night.district, 9);
  EXPECT_EQ(by_night.night_evidence, 3);
  EXPECT_DOUBLE_EQ(by_night.confidence, ExpectedConfidence(10, 15, 2));

  // night_weight = 1 collapses diurnal back onto spatial.
  params.night_weight = 1;
  Inference flat = MakeInferrer(Strategy::kDiurnal, params)->Infer(commuter);
  ASSERT_TRUE(flat.decided);
  EXPECT_EQ(flat.district, 3);
}

TEST(InferStrategyTest, ConfidenceShrinkageAbstainsOnThinEvidence) {
  InferParams params;  // shrinkage_prior = 2, abstain_threshold = 0.4.
  auto spatial = MakeInferrer(Strategy::kSpatial, params);

  // One tweet is a "100% match" before shrinkage; after, 1/3 < 0.4.
  Inference thin = spatial->Infer(TwoRegionGps(1, 0, 0, 0));
  EXPECT_FALSE(thin.decided);
  EXPECT_DOUBLE_EQ(thin.confidence, ExpectedConfidence(1, 1, 2));

  // Ten unanimous tweets clear the bar: 10/12.
  Inference solid = spatial->Infer(TwoRegionGps(10, 0, 0, 0));
  ASSERT_TRUE(solid.decided);
  EXPECT_DOUBLE_EQ(solid.confidence, ExpectedConfidence(10, 10, 2));

  // The threshold is a knob: raise it above that score and the same
  // evidence abstains, with the score it fell short at reported.
  params.abstain_threshold = 0.95;
  Inference gated = MakeInferrer(Strategy::kSpatial, params)
                        ->Infer(TwoRegionGps(10, 0, 0, 0));
  EXPECT_FALSE(gated.decided);
  EXPECT_DOUBLE_EQ(gated.confidence, ExpectedConfidence(10, 10, 2));

  // No evidence of the strategy's kind at all: abstain at confidence 0.
  UserEvidence none;
  none.user = 1;
  Inference empty = spatial->Infer(none);
  EXPECT_FALSE(empty.decided);
  EXPECT_DOUBLE_EQ(empty.confidence, 0.0);
}

TEST(InferStrategyTest, TextStrategyVotesWhereGpsStrategiesAbstain) {
  UserEvidence evidence;
  evidence.user = 5;
  evidence.tweets = 12;
  evidence.text_votes = 9;
  RegionEvidence a;
  a.region = 4;
  a.text_votes = 7;
  RegionEvidence b;
  b.region = 11;
  b.text_votes = 2;
  evidence.regions = {a, b};

  InferParams params;
  Inference text = MakeInferrer(Strategy::kText, params)->Infer(evidence);
  ASSERT_TRUE(text.decided);
  EXPECT_EQ(text.district, 4);
  EXPECT_EQ(text.night_evidence, 0);
  EXPECT_DOUBLE_EQ(text.confidence, ExpectedConfidence(7, 9, 2));

  EXPECT_FALSE(MakeInferrer(Strategy::kSpatial, params)->Infer(evidence).decided);
  EXPECT_FALSE(MakeInferrer(Strategy::kDiurnal, params)->Infer(evidence).decided);
}

TEST(InferStrategyTest, NightWindowIsSharedWithTheGenerator) {
  for (int hour = 0; hour < 24; ++hour) {
    EXPECT_EQ(IsNightHour(hour), hour >= kNightStartHour || hour < kNightEndHour)
        << hour;
  }
  EXPECT_TRUE(IsNightHour(23));
  EXPECT_TRUE(IsNightHour(0));
  EXPECT_FALSE(IsNightHour(12));
}

TEST(EvidenceBuilderTest, CountsNightGpsTweetsViaTheSharedWindow) {
  const AdminDb& db = AdminDb::KoreanDistricts();
  EvidenceBuilder builder(&db);
  const geo::Region& region = db.regions()[0];

  twitter::Tweet noon;
  noon.id = 1;
  noon.user = 42;
  noon.time = 12 * kSecondsPerHour;
  noon.gps = region.centroid;
  builder.AddTweet(noon);

  twitter::Tweet night = noon;
  night.id = 2;
  night.time = 23 * kSecondsPerHour;
  builder.AddTweet(night);

  std::shared_ptr<const InferenceIndex> index = builder.Build();
  const UserEvidence* evidence = index->FindUser(42);
  ASSERT_NE(evidence, nullptr);
  EXPECT_EQ(evidence->gps_tweets, 2);
  ASSERT_EQ(evidence->regions.size(), 1u);
  EXPECT_EQ(evidence->regions[0].region, region.id);
  EXPECT_EQ(evidence->regions[0].gps_tweets, 2);
  EXPECT_EQ(evidence->regions[0].night_gps_tweets, 1);
}

TEST(EvidenceBuilderTest, UnambiguousDistrictMentionsBecomeTextVotes) {
  const AdminDb& db = AdminDb::KoreanDistricts();
  // A county name that names exactly one district in the gazetteer.
  const geo::Region* unique_region = nullptr;
  for (const geo::Region& region : db.regions()) {
    int with_name = 0;
    for (const geo::Region& other : db.regions()) {
      if (other.county == region.county) ++with_name;
    }
    if (with_name == 1) {
      unique_region = &region;
      break;
    }
  }
  ASSERT_NE(unique_region, nullptr) << "gazetteer has no unique county";

  EvidenceBuilder builder(&db);
  twitter::Tweet tweet;
  tweet.id = 1;
  tweet.user = 9;
  tweet.time = 10 * kSecondsPerHour;
  tweet.text = "having lunch in " + unique_region->county + " today";
  builder.AddTweet(tweet);

  std::shared_ptr<const InferenceIndex> index = builder.Build();
  const UserEvidence* evidence = index->FindUser(9);
  ASSERT_NE(evidence, nullptr);
  EXPECT_EQ(evidence->gps_tweets, 0);
  EXPECT_EQ(evidence->text_votes, 1);
  ASSERT_EQ(evidence->regions.size(), 1u);
  EXPECT_EQ(evidence->regions[0].region, unique_region->id);
  EXPECT_EQ(evidence->regions[0].text_votes, 1);
}

TEST(TruthSidecarTest, RoundTripsRecordsThroughDisk) {
  std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "stir_truth_rt";
  std::filesystem::create_directories(dir);
  const std::string corpus = (dir / "corpus.stir").string();
  const std::string path = io::TruthSidecarPath(corpus);
  EXPECT_EQ(path, corpus + ".truth");

  io::TruthRecord first;
  first.user = 12;
  first.archetype = "commuter";
  first.home_state = "Seoul";
  first.home_county = "Mapo-gu";
  first.claimed_state = "Seoul";
  first.claimed_county = "Mapo-gu";
  io::TruthRecord second;
  second.user = 40;
  second.archetype = "relocated";
  second.home_state = "Busan";
  second.home_county = "Haeundae-gu";
  second.claimed_state = "Seoul";
  second.claimed_county = "Gangnam-gu";

  io::TruthSidecarWriter writer(path, /*fsync=*/false);
  writer.Add(first);
  writer.Add(second);
  EXPECT_EQ(writer.record_count(), 2);
  ASSERT_TRUE(writer.Finish().ok());

  auto read = io::ReadTruthSidecar(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->size(), 2u);
  EXPECT_EQ((*read)[0].user, 12);
  EXPECT_EQ((*read)[0].archetype, "commuter");
  EXPECT_EQ((*read)[0].home_county, "Mapo-gu");
  EXPECT_EQ((*read)[1].user, 40);
  EXPECT_EQ((*read)[1].home_state, "Busan");
  EXPECT_EQ((*read)[1].claimed_county, "Gangnam-gu");

  // A file without the magic is rejected, not misread.
  const std::string bogus = (dir / "bogus.truth").string();
  std::ofstream(bogus) << "not a sidecar\n1\t2\t3\n";
  EXPECT_FALSE(io::ReadTruthSidecar(bogus).ok());
}

// ---------------------------------------------------------------------------
// Shared corpus fixture for the heavier determinism / blindness tests.

class InferCorpusTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = &AdminDb::KoreanDistricts();
    twitter::DatasetGeneratorOptions options =
        twitter::DatasetGenerator::KoreanConfig(0.02);
    options.mobility.night_home_bias = 0.65;
    twitter::DatasetGenerator generator(db_, options);
    data_ = new twitter::GeneratedData(generator.Generate());
    ASSERT_GT(data_->dataset.users().size(), 100u);
    index_ = new InferenceIndex(
        InferenceIndex::Build(data_->dataset, *db_));
    ASSERT_FALSE(index_->empty());
  }
  static void TearDownTestSuite() {
    delete index_;
    index_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  static std::filesystem::path FreshDir(const std::string& name) {
    std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
  }

  static const AdminDb* db_;
  static twitter::GeneratedData* data_;
  static InferenceIndex* index_;
};

const AdminDb* InferCorpusTest::db_ = nullptr;
twitter::GeneratedData* InferCorpusTest::data_ = nullptr;
InferenceIndex* InferCorpusTest::index_ = nullptr;

TEST_F(InferCorpusTest, PredictionsAreBlindToProfileStringsAndTruthSidecar) {
  const std::string baseline_evidence = Fingerprint(*index_);
  const std::string baseline_decisions = Decisions(*index_, InferParams{});

  // Corrupt every profile string (the attribute the paper studies and
  // the one attribute inference must never read) and rebuild: the
  // evidence and every decision are byte-identical.
  twitter::Dataset corrupted;
  for (twitter::User user : data_->dataset.users()) {
    user.profile_location = "###corrupted###";
    user.handle = "@@@";
    corrupted.AddUser(std::move(user));
  }
  for (const twitter::Tweet& tweet : data_->dataset.tweets()) {
    corrupted.AddTweet(tweet);
  }
  InferenceIndex from_corrupted = InferenceIndex::Build(corrupted, *db_);
  EXPECT_EQ(Fingerprint(from_corrupted), baseline_evidence);
  EXPECT_EQ(Decisions(from_corrupted, InferParams{}), baseline_decisions);

  // Corrupt the on-disk truth sidecar: evaluation breaks loudly, the
  // inference pipeline does not notice (it never opens the file).
  std::filesystem::path dir = FreshDir("stir_infer_blind");
  const std::string corpus_path = (dir / "corpus.stir").string();
  io::CorpusWriter writer(corpus_path);
  io::TruthSidecarWriter truth(io::TruthSidecarPath(corpus_path),
                               /*fsync=*/false);
  twitter::DatasetGeneratorOptions options =
      twitter::DatasetGenerator::KoreanConfig(0.02);
  options.mobility.night_home_bias = 0.65;
  twitter::DatasetGenerator generator(db_, options);
  ASSERT_TRUE(generator.GenerateToCorpus(&writer, &truth).ok());
  ASSERT_TRUE(writer.Finish().ok());
  ASSERT_TRUE(truth.Finish().ok());
  {
    std::ofstream scribble(io::TruthSidecarPath(corpus_path));
    scribble << "XXXXXXXX scrambled beyond recognition\n";
  }
  EXPECT_FALSE(io::ReadTruthSidecar(io::TruthSidecarPath(corpus_path)).ok());

  io::CorpusSpec spec;
  spec.corpus_path = corpus_path;
  auto reader = io::CorpusReader::Open(spec);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_TRUE(reader->has_view());
  InferenceIndex from_corpus = InferenceIndex::Build(reader->view(), *db_);
  EXPECT_EQ(Fingerprint(from_corpus), baseline_evidence);
  EXPECT_EQ(Decisions(from_corpus, InferParams{}), baseline_decisions);
}

TEST_F(InferCorpusTest, EvidenceIsIdenticalAcrossAllThreeCorpusFormats) {
  std::filesystem::path dir = FreshDir("stir_infer_formats");
  const std::string baseline = Fingerprint(*index_);

  // v1: the TSV interchange pair.
  const std::string users_tsv = (dir / "users.tsv").string();
  const std::string tweets_tsv = (dir / "tweets.tsv").string();
  ASSERT_TRUE(data_->dataset.SaveTsv(users_tsv, tweets_tsv).ok());

  // v2: users TSV + binary tweet column snapshot.
  const std::string tweets_v2 = (dir / "tweets.cols").string();
  ASSERT_TRUE(twitter::TweetColumnStore::FromDataset(data_->dataset)
                  .Save(tweets_v2)
                  .ok());

  // v3: self-contained arena corpus.
  const std::string corpus_v3 = (dir / "corpus.stir").string();
  ASSERT_TRUE(
      io::CorpusWriter::WriteDataset(data_->dataset, corpus_v3).ok());

  struct Case {
    const char* name;
    io::CorpusSpec spec;
    io::CorpusFormat format;
  };
  std::vector<Case> cases(3);
  cases[0].name = "tsv";
  cases[0].spec.users_path = users_tsv;
  cases[0].spec.tweets_path = tweets_tsv;
  cases[0].format = io::CorpusFormat::kTsv;
  cases[1].name = "v2";
  cases[1].spec.users_path = users_tsv;
  cases[1].spec.tweets_path = tweets_v2;
  cases[1].format = io::CorpusFormat::kColumnV2;
  cases[2].name = "v3";
  cases[2].spec.corpus_path = corpus_v3;
  cases[2].format = io::CorpusFormat::kArenaV3;

  for (const Case& c : cases) {
    auto reader = io::CorpusReader::Open(c.spec);
    ASSERT_TRUE(reader.ok()) << c.name << ": " << reader.status().ToString();
    EXPECT_EQ(reader->format(), c.format) << c.name;
    if (reader->has_view()) {
      // The zero-copy path the columnar CLI uses.
      InferenceIndex from_view = InferenceIndex::Build(reader->view(), *db_);
      EXPECT_EQ(Fingerprint(from_view), baseline) << c.name << " (view)";
    }
    auto dataset = reader->Materialize();
    ASSERT_TRUE(dataset.ok()) << c.name;
    InferenceIndex from_rows = InferenceIndex::Build(**dataset, *db_);
    EXPECT_EQ(Fingerprint(from_rows), baseline) << c.name << " (rows)";
  }
}

TEST_F(InferCorpusTest, InferResponsesAreByteIdenticalAcrossWorkerCounts) {
  core::CorrelationStudy study(db_);
  core::StudyResult result = study.Run(data_->dataset);
  serve::StudyIndex study_index = serve::StudyIndex::Build(result, *db_);

  // Every user via every strategy, plus a miss and two typed rejections.
  std::string payload;
  int64_t id = 0;
  const char* strategies[] = {"", "spatial", "diurnal", "text"};
  for (const UserEvidence& user : index_->users()) {
    std::string strategy = strategies[id % 4];
    payload += "{\"v\":1,\"id\":" + std::to_string(id++) +
               ",\"method\":\"infer_user\",\"params\":{\"user\":" +
               std::to_string(user.user) +
               (strategy.empty() ? std::string()
                                 : ",\"strategy\":\"" + strategy + "\"") +
               "}}\n";
  }
  payload += "{\"v\":1,\"id\":900000,\"method\":\"infer_user\","
             "\"params\":{\"user\":987654321}}\n";
  payload += "{\"v\":1,\"id\":900001,\"method\":\"infer_user\","
             "\"params\":{\"user\":1,\"strategy\":\"astral\"}}\n";
  payload += "{\"v\":1,\"id\":900002,\"method\":\"infer_user\"}\n";

  std::string baseline;
  for (int workers : {1, 2, 8}) {
    serve::ServeOptions options;
    options.workers = workers;
    options.infer_index = index_;
    serve::Server server(&study_index, options);
    std::istringstream in(payload);
    std::ostringstream out;
    server.ServeStream(in, out);
    server.Drain();
    if (workers == 1) {
      baseline = out.str();
      ASSERT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(out.str(), baseline) << "workers=" << workers;
    }
  }
}

TEST_F(InferCorpusTest, StreamingSealsMatchBatchBuildsAndStayStable) {
  const std::vector<twitter::User>& users = data_->dataset.users();
  const std::vector<twitter::Tweet>& tweets = data_->dataset.tweets();

  stream::StreamEngine engine(db_, StudyConfig{}, stream::StreamOptions{});
  ASSERT_TRUE(engine.Open().ok());
  for (const twitter::User& user : users) {
    ASSERT_TRUE(engine.AddUser(user).ok());
  }

  // Half-prefix seal == batch build over the same prefix.
  const size_t half = tweets.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(engine.AddTweet(tweets[i], static_cast<int64_t>(i)).ok());
  }
  engine.SealEpoch();
  twitter::Dataset prefix;
  for (const twitter::User& user : users) prefix.AddUser(user);
  for (size_t i = 0; i < half; ++i) prefix.AddTweet(tweets[i]);
  EXPECT_EQ(Fingerprint(*engine.CurrentInferIndex()),
            Fingerprint(InferenceIndex::Build(prefix, *db_)));

  // Full-log seal == the fixture's one-shot batch index; a second seal
  // with nothing ingested republishes the identical evidence.
  for (size_t i = half; i < tweets.size(); ++i) {
    ASSERT_TRUE(engine.AddTweet(tweets[i], static_cast<int64_t>(i)).ok());
  }
  engine.SealEpoch();
  const std::string sealed = Fingerprint(*engine.CurrentInferIndex());
  EXPECT_EQ(sealed, Fingerprint(*index_));
  engine.SealEpoch();
  EXPECT_EQ(Fingerprint(*engine.CurrentInferIndex()), sealed);

  // Any epoch partition (auto-seal every 512 tweets) converges to the
  // same evidence — seal boundaries never leak into the index.
  stream::StreamOptions chunked;
  chunked.epoch_size = 512;
  stream::StreamEngine partitioned(db_, StudyConfig{}, chunked);
  ASSERT_TRUE(partitioned.Open().ok());
  for (const twitter::User& user : users) {
    ASSERT_TRUE(partitioned.AddUser(user).ok());
  }
  for (size_t i = 0; i < tweets.size(); ++i) {
    ASSERT_TRUE(
        partitioned.AddTweet(tweets[i], static_cast<int64_t>(i)).ok());
  }
  partitioned.SealEpoch();
  EXPECT_GT(partitioned.epochs_sealed(), 1);
  EXPECT_EQ(Fingerprint(*partitioned.CurrentInferIndex()), sealed);
}

TEST_F(InferCorpusTest, EvaluationScoresAgainstTruthAndSkipsUnseenUsers) {
  std::vector<io::TruthRecord> truth;
  for (const auto& [user_id, profile] : data_->truth.mobility) {
    io::TruthRecord record;
    record.user = user_id;
    record.archetype = twitter::ArchetypeToString(profile.archetype);
    const geo::Region& home = db_->region(profile.home);
    record.home_state = home.state;
    record.home_county = home.county;
    const geo::Region& claimed = db_->region(profile.claimed);
    record.claimed_state = claimed.state;
    record.claimed_county = claimed.county;
    truth.push_back(std::move(record));
  }
  // A truth row the evidence never saw must be skipped, not scored.
  io::TruthRecord phantom;
  phantom.user = 987654321;
  phantom.archetype = "homebody";
  phantom.home_state = "Seoul";
  phantom.home_county = "Mapo-gu";
  truth.push_back(phantom);

  StrategyEval eval =
      EvaluateStrategy(*index_, truth, Strategy::kDiurnal, InferParams{});
  EXPECT_GT(eval.users, 0);
  EXPECT_LT(eval.users, static_cast<int64_t>(truth.size()));
  EXPECT_EQ(eval.decided + eval.abstained, eval.users);
  EXPECT_LE(eval.correct_district, eval.decided);
  EXPECT_LE(eval.correct_district, eval.correct_province);
  EXPECT_GE(eval.AbstainRate(), 0.0);
  EXPECT_LE(eval.AbstainRate(), 1.0);
  EXPECT_GE(eval.GpsRichAccuracyDistrict(), 0.0);
  EXPECT_LE(eval.gps_rich_users, eval.users);

  // The report renders every strategy without falling over.
  std::vector<StrategyEval> evals;
  for (int s = 0; s < kNumStrategies; ++s) {
    evals.push_back(EvaluateStrategy(*index_, truth, static_cast<Strategy>(s),
                                     InferParams{}));
  }
  std::string report = RenderEvalReport(evals);
  EXPECT_NE(report.find("diurnal"), std::string::npos);
  EXPECT_NE(report.find("abstain"), std::string::npos);
}

}  // namespace
}  // namespace stir::infer
