#include "text/gazetteer_matcher.h"

#include <gtest/gtest.h>

#include "text/normalize.h"

namespace stir::text {
namespace {

class GazetteerMatcherTest : public ::testing::Test {
 protected:
  GazetteerMatcherTest()
      : korean_(&geo::AdminDb::KoreanDistricts()),
        world_(&geo::AdminDb::WorldCities()) {}

  std::vector<PhraseMatch> MatchKorean(const std::string& s) {
    return korean_.Match(Tokenize(s));
  }
  std::vector<PhraseMatch> MatchWorld(const std::string& s) {
    return world_.Match(Tokenize(s));
  }

  GazetteerMatcher korean_;
  GazetteerMatcher world_;
};

TEST_F(GazetteerMatcherTest, CountyAndStateInOneString) {
  auto matches = MatchKorean("Seoul Yangcheon-gu");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].kind, PhraseKind::kState);
  EXPECT_EQ(matches[0].name, "Seoul");
  EXPECT_EQ(matches[1].kind, PhraseKind::kCounty);
  ASSERT_EQ(matches[1].regions.size(), 1u);
}

TEST_F(GazetteerMatcherTest, AmbiguousCountyListsAllRegions) {
  auto matches = MatchKorean("Jung-gu");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].kind, PhraseKind::kCounty);
  EXPECT_EQ(matches[0].regions.size(), 6u);  // six metros have a Jung-gu
}

TEST_F(GazetteerMatcherTest, CountryAlias) {
  auto matches = MatchKorean("Korea");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].kind, PhraseKind::kCountry);
  EXPECT_EQ(matches[0].name, "South Korea");
}

TEST_F(GazetteerMatcherTest, MultiWordPhraseGreedyLongest) {
  auto matches = MatchWorld("Gold Coast Australia");
  ASSERT_GE(matches.size(), 2u);
  EXPECT_EQ(matches[0].kind, PhraseKind::kCounty);
  EXPECT_EQ(matches[0].name, "Gold Coast");
  EXPECT_EQ(matches[0].token_count, 2u);
  EXPECT_EQ(matches[1].kind, PhraseKind::kCountry);
}

TEST_F(GazetteerMatcherTest, NewYorkCityVsState) {
  // "new york" is both a state and a city; the county entry must win.
  auto matches = MatchWorld("New York");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].kind, PhraseKind::kCounty);
}

TEST_F(GazetteerMatcherTest, FuzzyHitOnLongCountyName) {
  auto matches = MatchKorean("Gangnm-gu");  // dropped 'a'
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_TRUE(matches[0].fuzzy);
  EXPECT_EQ(matches[0].name, "Gangnam-gu");
}

TEST_F(GazetteerMatcherTest, NoFuzzyOnShortTokens) {
  // Too short for the fuzzy pool (could hit many things).
  auto matches = MatchKorean("seul");
  EXPECT_TRUE(matches.empty());
}

TEST_F(GazetteerMatcherTest, NoMatchesForNoise) {
  EXPECT_TRUE(MatchKorean("darangland :)").empty());
  EXPECT_TRUE(MatchKorean("my home").empty());
  EXPECT_TRUE(MatchKorean("").empty());
}

TEST_F(GazetteerMatcherTest, EveryCountyNameMatchesItself) {
  // Property over the whole gazetteer: the matcher must recognize each
  // county's own normalized name, and one candidate must be that county.
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  for (const geo::Region& region : db.regions()) {
    auto matches = korean_.Match(Tokenize(region.county));
    ASSERT_FALSE(matches.empty()) << region.FullName();
    EXPECT_EQ(matches[0].kind, PhraseKind::kCounty) << region.FullName();
    bool found = false;
    for (geo::RegionId id : matches[0].regions) found |= (id == region.id);
    EXPECT_TRUE(found) << region.FullName();
  }
}

}  // namespace
}  // namespace stir::text
