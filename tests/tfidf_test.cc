#include "text/tfidf.h"

#include <gtest/gtest.h>

namespace stir::text {
namespace {

TEST(TfIdfTest, EmptyCorpusFinalizes) {
  TfIdf index;
  index.Finalize();
  EXPECT_EQ(index.num_documents(), 0u);
  EXPECT_TRUE(index.TopTerms("nope", 3).status().IsNotFound());
}

TEST(TfIdfTest, TopTermsBeforeFinalizeFails) {
  TfIdf index;
  index.AddDocument("d", {"a"});
  EXPECT_TRUE(index.TopTerms("d", 1).status().IsFailedPrecondition());
}

TEST(TfIdfTest, DistinctiveTermOutranksCommonTerm) {
  TfIdf index;
  index.AddDocument("seoul",
                    {"coffee", "earthquake", "earthquake", "coffee",
                     "coffee"});
  index.AddDocument("busan", {"coffee", "beach", "coffee"});
  index.AddDocument("daegu", {"coffee", "lunch"});
  index.Finalize();
  auto terms = index.TopTerms("seoul", 3);
  ASSERT_TRUE(terms.ok());
  // "earthquake" (2x, unique to this cell) outranks "coffee" (3x but in
  // every document): 1.69 * 1.69 > 2.10 * 1.0 under log-tf/smoothed-idf.
  EXPECT_EQ((*terms)[0].term, "earthquake");
}

TEST(TfIdfTest, IdfOrdering) {
  TfIdf index;
  index.AddDocument("a", {"common", "rare"});
  index.AddDocument("b", {"common"});
  index.AddDocument("c", {"common"});
  index.Finalize();
  EXPECT_GT(index.Idf("rare"), index.Idf("common"));
  EXPECT_GT(index.Idf("unseen"), index.Idf("rare"));
}

TEST(TfIdfTest, RepeatedAddMergesDocument) {
  TfIdf index;
  index.AddDocument("d", {"x"});
  index.AddDocument("d", {"x", "y"});
  index.AddDocument("e", {"z"});
  index.Finalize();
  EXPECT_EQ(index.num_documents(), 2u);
  auto terms = index.TopTerms("d", 10);
  ASSERT_TRUE(terms.ok());
  ASSERT_EQ(terms->size(), 2u);
  // x counted twice in d.
  for (const TermScore& t : *terms) {
    if (t.term == "x") EXPECT_EQ(t.count, 2);
    if (t.term == "y") EXPECT_EQ(t.count, 1);
  }
}

TEST(TfIdfTest, TopKTruncatesAndTieBreaksLexicographically) {
  TfIdf index;
  index.AddDocument("d", {"b", "a", "c"});
  index.AddDocument("other", {"unrelated"});
  index.Finalize();
  auto terms = index.TopTerms("d", 2);
  ASSERT_TRUE(terms.ok());
  ASSERT_EQ(terms->size(), 2u);
  // Equal scores: lexicographic order.
  EXPECT_EQ((*terms)[0].term, "a");
  EXPECT_EQ((*terms)[1].term, "b");
}

TEST(TfIdfTest, ScoreTokensAdHoc) {
  TfIdf index;
  index.AddDocument("d1", {"quake", "city"});
  index.AddDocument("d2", {"city"});
  index.Finalize();
  auto scored = index.ScoreTokens({"quake", "quake", "city"}, 2);
  ASSERT_EQ(scored.size(), 2u);
  EXPECT_EQ(scored[0].term, "quake");
  EXPECT_EQ(scored[0].count, 2);
}

TEST(TfIdfTest, VocabularySize) {
  TfIdf index;
  index.AddDocument("d1", {"a", "b", "a"});
  index.AddDocument("d2", {"b", "c"});
  index.Finalize();
  EXPECT_EQ(index.vocabulary_size(), 3u);
}

}  // namespace
}  // namespace stir::text
