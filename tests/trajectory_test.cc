#include "event/trajectory.h"

#include <gtest/gtest.h>

#include "twitter/generator.h"

namespace stir::event {
namespace {

TEST(TrajectoryKalmanTest, FirstFixInitializes) {
  TrajectoryKalman filter;
  EXPECT_FALSE(filter.initialized());
  filter.Update(100, {35.0, 128.0}, 0.01);
  EXPECT_TRUE(filter.initialized());
  EXPECT_NEAR(filter.position().lat, 35.0, 1e-12);
  EXPECT_DOUBLE_EQ(filter.velocity_lat(), 0.0);
}

TEST(TrajectoryKalmanTest, RecoversConstantVelocity) {
  // Target moves north-east at a fixed rate; noiseless fixes.
  TrajectoryKalman::Options options;
  options.velocity_process_noise = 1e-12;
  TrajectoryKalman filter(options);
  const double vlat = 1e-5, vlng = 2e-5;  // deg/s
  for (int i = 0; i <= 50; ++i) {
    SimTime t = i * 600;
    filter.Update(t, {30.0 + vlat * t, 120.0 + vlng * t}, 1e-6);
  }
  EXPECT_NEAR(filter.velocity_lat(), vlat, vlat * 0.05);
  EXPECT_NEAR(filter.velocity_lng(), vlng, vlng * 0.05);
  // Forecast an hour ahead lands near the true future position.
  SimTime future = 50 * 600 + 3600;
  geo::LatLng forecast = filter.Forecast(future);
  EXPECT_NEAR(forecast.lat, 30.0 + vlat * future, 0.01);
  EXPECT_NEAR(forecast.lng, 120.0 + vlng * future, 0.02);
}

TEST(TrajectoryKalmanTest, SmoothsNoisyTrack) {
  Rng rng(1);
  // Tight process noise: the simulated target really is constant-velocity.
  TrajectoryKalman::Options options;
  options.velocity_process_noise = 1e-13;
  TrajectoryKalman filter(options);
  const double vlat = 2e-5;
  double raw_error = 0.0, filtered_error = 0.0;
  int scored = 0;
  for (int i = 0; i <= 200; ++i) {
    SimTime t = i * 300;
    geo::LatLng truth{25.0 + vlat * t, 130.0};
    geo::LatLng fix{truth.lat + rng.Normal(0, 0.2),
                    truth.lng + rng.Normal(0, 0.2)};
    filter.Update(t, fix, 0.04);
    if (i >= 20) {  // after warm-up
      raw_error += geo::HaversineKm(fix, truth);
      filtered_error += geo::HaversineKm(filter.position(), truth);
      ++scored;
    }
  }
  EXPECT_LT(filtered_error, raw_error * 0.5)
      << "filtered " << filtered_error / scored << " km vs raw "
      << raw_error / scored << " km";
}

TEST(TrajectoryKalmanTest, OutOfOrderFixAborts) {
  TrajectoryKalman filter;
  filter.Update(100, {0, 0}, 1.0);
  EXPECT_DEATH(filter.Update(50, {0, 0}, 1.0), "time-ordered");
}

TEST(MovingEventTest, PositionAdvancesAlongBearing) {
  MovingEventSpec spec;
  spec.start = {33.0, 127.0};
  spec.bearing_deg = 0.0;  // due north
  spec.speed_kmh = 30.0;
  spec.start_time = 0;
  spec.duration_seconds = 10 * kSecondsPerHour;
  geo::LatLng mid = MovingEventPosition(spec, 5 * kSecondsPerHour);
  geo::LatLng end = MovingEventPosition(spec, 10 * kSecondsPerHour);
  EXPECT_GT(mid.lat, spec.start.lat);
  EXPECT_GT(end.lat, mid.lat);
  EXPECT_NEAR(geo::HaversineKm(spec.start, end), 300.0, 3.0);
  // Clamped outside the window.
  EXPECT_EQ(MovingEventPosition(spec, -100).lat, spec.start.lat);
  geo::LatLng past_end = MovingEventPosition(spec, 99 * kSecondsPerHour);
  EXPECT_NEAR(past_end.lat, end.lat, 1e-12);
}

class MovingEventSimTest : public ::testing::Test {
 protected:
  MovingEventSimTest() : db_(geo::AdminDb::KoreanDistricts()) {
    twitter::DatasetGenerator generator(
        &db_, twitter::DatasetGenerator::KoreanConfig(0.05));
    data_ = generator.Generate();
  }
  const geo::AdminDb& db_;
  twitter::GeneratedData data_;
};

TEST_F(MovingEventSimTest, ReportsFollowTheTrack) {
  // A typhoon crossing Korea south-to-north along the west side.
  MovingEventSpec spec;
  spec.start = {34.5, 126.5};
  spec.bearing_deg = 30.0;
  spec.speed_kmh = 35.0;
  spec.start_time = 0;
  spec.duration_seconds = 12 * kSecondsPerHour;
  spec.response_rate = 0.08;
  MovingEventSimulator simulator(&db_, &data_.truth);
  Rng rng(2);
  auto reports = simulator.Simulate(spec, data_.dataset.users(), rng);
  ASSERT_GT(reports.size(), 50u);
  // Time-ordered, and each witness near the eye at report time.
  for (size_t i = 0; i < reports.size(); ++i) {
    if (i > 0) EXPECT_GE(reports[i].time, reports[i - 1].time);
    geo::LatLng eye = MovingEventPosition(spec, reports[i].time);
    double d = geo::HaversineKm(db_.region(reports[i].true_region).centroid,
                                eye);
    EXPECT_LE(d, spec.felt_radius_km + spec.speed_kmh + 30.0);
  }
  // Early reports skew south-west of late reports.
  double early_lat = 0, late_lat = 0;
  size_t quarter = reports.size() / 4;
  for (size_t i = 0; i < quarter; ++i) {
    early_lat += db_.region(reports[i].true_region).centroid.lat;
    late_lat +=
        db_.region(reports[reports.size() - 1 - i].true_region).centroid.lat;
  }
  EXPECT_LT(early_lat / quarter, late_lat / quarter);
}

TEST_F(MovingEventSimTest, EvaluateTrackBeatsNothingAndFailsWithoutGps) {
  MovingEventSpec spec;
  spec.start = {34.5, 126.5};
  spec.bearing_deg = 30.0;
  spec.speed_kmh = 35.0;
  spec.duration_seconds = 24 * kSecondsPerHour;
  spec.response_rate = 0.25;
  MovingEventSimulator simulator(&db_, &data_.truth,
                                 /*event_geotag_boost=*/12.0);
  Rng rng(3);
  auto reports = simulator.Simulate(spec, data_.dataset.users(), rng);
  auto error = EvaluateTrack(spec, reports, /*measurement_sigma_km=*/40.0);
  ASSERT_TRUE(error.ok());
  EXPECT_GT(error->points, 5);
  EXPECT_LT(error->mean_km, 120.0);  // tracks the eye to within felt range

  // Without any GPS fixes the evaluation cannot run.
  std::vector<WitnessReport> no_gps = reports;
  for (auto& report : no_gps) report.gps.reset();
  EXPECT_TRUE(EvaluateTrack(spec, no_gps, 40.0)
                  .status()
                  .IsFailedPrecondition());
}

}  // namespace
}  // namespace stir::event
