#include "geo/reverse_geocoder.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace stir::geo {
namespace {

TEST(ReverseGeocoderTest, StructuredLookup) {
  ReverseGeocoder geocoder(&AdminDb::KoreanDistricts());
  auto result = geocoder.Reverse({37.5170, 126.8666});  // Yangcheon-gu
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->country, "South Korea");
  EXPECT_EQ(result->state, "Seoul");
  EXPECT_EQ(result->county, "Yangcheon-gu");
  EXPECT_FALSE(result->town.empty());
  EXPECT_GE(result->region, 0);
}

TEST(ReverseGeocoderTest, InvalidAndOceanPoints) {
  ReverseGeocoder geocoder(&AdminDb::KoreanDistricts());
  EXPECT_TRUE(geocoder.Reverse({999, 0}).status().IsInvalidArgument());
  EXPECT_TRUE(geocoder.Reverse({20.0, -150.0}).status().IsNotFound());
}

TEST(ReverseGeocoderTest, XmlResponseShapeMatchesPaperFig5) {
  ReverseGeocoder geocoder(&AdminDb::KoreanDistricts());
  auto xml = geocoder.ReverseToXml({37.2636, 127.0286});  // Suwon
  ASSERT_TRUE(xml.ok());
  // The four elements under <location> the paper extracts.
  EXPECT_NE(xml->find("<ResultSet"), std::string::npos);
  EXPECT_NE(xml->find("<country>"), std::string::npos);
  EXPECT_NE(xml->find("<state>"), std::string::npos);
  EXPECT_NE(xml->find("<county>"), std::string::npos);
  EXPECT_NE(xml->find("<town>"), std::string::npos);

  auto parsed = ReverseGeocoder::ParseResponse(*xml);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->state, "Gyeonggi-do");
  EXPECT_EQ(parsed->county, "Suwon-si");
}

TEST(ReverseGeocoderTest, ParseResponseRejectsMalformed) {
  EXPECT_FALSE(ReverseGeocoder::ParseResponse("<wrong/>").ok());
  EXPECT_FALSE(ReverseGeocoder::ParseResponse("<ResultSet/>").ok());
  EXPECT_FALSE(ReverseGeocoder::ParseResponse(
                   "<ResultSet><Result><location><state>Seoul</state>"
                   "</location></Result></ResultSet>")
                   .ok());  // county missing
  EXPECT_FALSE(ReverseGeocoder::ParseResponse("not xml at all").ok());
}

TEST(ReverseGeocoderTest, CacheHitsAccumulate) {
  ReverseGeocoder geocoder(&AdminDb::KoreanDistricts());
  LatLng p{35.8714, 128.6014};  // Daegu Jung-gu
  ASSERT_TRUE(geocoder.Reverse(p).ok());
  ASSERT_TRUE(geocoder.Reverse(p).ok());
  ASSERT_TRUE(geocoder.Reverse(p).ok());
  EXPECT_EQ(geocoder.num_queries(), 3);
  EXPECT_EQ(geocoder.num_cache_hits(), 2);
}

TEST(ReverseGeocoderTest, QuotaExhaustion) {
  ReverseGeocoderOptions options;
  options.quota = 2;
  options.enable_cache = false;
  ReverseGeocoder geocoder(&AdminDb::KoreanDistricts(), options);
  EXPECT_TRUE(geocoder.Reverse({37.50, 127.03}).ok());
  EXPECT_TRUE(geocoder.Reverse({35.18, 129.07}).ok());
  EXPECT_TRUE(
      geocoder.Reverse({36.35, 127.38}).status().IsResourceExhausted());
  geocoder.ResetQuota();
  EXPECT_TRUE(geocoder.Reverse({36.35, 127.38}).ok());
}

TEST(ReverseGeocoderTest, CachedResultsDontSpendQuota) {
  ReverseGeocoderOptions options;
  options.quota = 1;
  ReverseGeocoder geocoder(&AdminDb::KoreanDistricts(), options);
  LatLng p{37.57, 126.98};
  ASSERT_TRUE(geocoder.Reverse(p).ok());
  // Same cell again: served from cache even though quota is spent.
  EXPECT_TRUE(geocoder.Reverse(p).ok());
  EXPECT_EQ(geocoder.quota_remaining(), 0);
}

TEST(ReverseGeocoderTest, XmlRoundTripAgreesWithStructuredPath) {
  ReverseGeocoder geocoder(&AdminDb::KoreanDistricts());
  Rng rng(3);
  const AdminDb& db = AdminDb::KoreanDistricts();
  for (int i = 0; i < 40; ++i) {
    auto id = static_cast<RegionId>(
        rng.UniformInt(0, static_cast<int64_t>(db.size()) - 1));
    LatLng p = db.SamplePointIn(id, rng);
    auto direct = geocoder.Reverse(p);
    ASSERT_TRUE(direct.ok());
    auto xml = geocoder.ReverseToXml(p);
    ASSERT_TRUE(xml.ok());
    auto parsed = ReverseGeocoder::ParseResponse(*xml);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->state, direct->state);
    EXPECT_EQ(parsed->county, direct->county);
    EXPECT_EQ(parsed->town, direct->town);
  }
}

}  // namespace
}  // namespace stir::geo
