// Protocol layer: the strict line-delimited JSON parser and the pure
// request executors. Includes the fuzz-style table test over the
// malformed / truncated / oversized request corpus in
// tests/data/serve_requests/ — every line of a bad_* file must be
// rejected with a well-formed JSON error response, every line of a
// good_* file must parse.

#include "serve/protocol.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/study.h"
#include "geo/admin_db.h"
#include "gtest/gtest.h"
#include "infer/home_inferrer.h"
#include "infer/inference_index.h"
#include "obs/json.h"
#include "serve/study_index.h"
#include "twitter/generator.h"

namespace stir::serve {
namespace {

using geo::AdminDb;
using obs::JsonIsValid;
using obs::JsonParse;
using obs::JsonValue;

constexpr size_t kMaxBytes = 64 * 1024;

class ServeProtocolTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const AdminDb& db = AdminDb::KoreanDistricts();
    twitter::DatasetGenerator generator(
        &db, twitter::DatasetGenerator::KoreanConfig(0.05));
    twitter::GeneratedData data = generator.Generate();
    core::CorrelationStudy study(&db);
    core::StudyResult result = study.Run(data.dataset);
    index_ = new StudyIndex(StudyIndex::Build(result, db));
    infer_index_ = new infer::InferenceIndex(
        infer::InferenceIndex::Build(data.dataset, db));
  }
  static void TearDownTestSuite() {
    delete index_;
    index_ = nullptr;
    delete infer_index_;
    infer_index_ = nullptr;
  }

  static StudyIndex* index_;
  static infer::InferenceIndex* infer_index_;
};

StudyIndex* ServeProtocolTest::index_ = nullptr;
infer::InferenceIndex* ServeProtocolTest::infer_index_ = nullptr;

std::vector<std::string> ReadLines(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

ErrorCode ParsedErrorCode(const std::string& response) {
  JsonValue root;
  EXPECT_TRUE(JsonParse(response, &root)) << response;
  const JsonValue* error = root.Find("error");
  EXPECT_NE(error, nullptr) << response;
  const JsonValue* code = error->Find("code");
  EXPECT_NE(code, nullptr) << response;
  for (int c = 0; c <= static_cast<int>(ErrorCode::kLowConfidence); ++c) {
    if (code->string == ErrorCodeToString(static_cast<ErrorCode>(c))) {
      return static_cast<ErrorCode>(c);
    }
  }
  ADD_FAILURE() << "unknown error code in " << response;
  return ErrorCode::kInternal;
}

// ---------------------------------------------------------------------------
// Corpus table test

TEST_F(ServeProtocolTest, RequestCorpus) {
  std::filesystem::path dir =
      std::filesystem::path(STIR_TEST_DATA_DIR) / "serve_requests";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string stem = entry.path().filename().string();
    const bool expect_good = stem.rfind("good_", 0) == 0;
    const bool expect_bad = stem.rfind("bad_", 0) == 0;
    ASSERT_TRUE(expect_good || expect_bad)
        << "corpus files must be named good_* or bad_*: " << stem;
    ++files;
    int line_number = 0;
    for (const std::string& line : ReadLines(entry.path())) {
      ++line_number;
      ParseOutcome outcome = ParseRequest(line, kMaxBytes);
      if (expect_good) {
        EXPECT_TRUE(outcome.ok)
            << stem << ":" << line_number << ": " << line << " -> "
            << outcome.message;
        // Executing a parsed request never crashes and always renders
        // valid JSON, whatever the index holds. server_stats and
        // append_tweets are scheduler-answered, not index-answered;
        // infer_user routes to the inference executor.
        if (outcome.ok && outcome.request.method != Method::kServerStats &&
            outcome.request.method != Method::kAppendTweets) {
          std::string response =
              outcome.request.method == Method::kInferUser
                  ? ExecuteInferUser(infer_index_, infer::InferParams{},
                                     outcome.request)
                  : ExecuteOnIndex(*index_, outcome.request);
          EXPECT_TRUE(JsonIsValid(response))
              << stem << ":" << line_number << ": " << response;
        }
      } else {
        EXPECT_FALSE(outcome.ok) << stem << ":" << line_number << ": " << line;
        std::string response = ErrorResponse(outcome.has_id, outcome.id,
                                             outcome.code, outcome.message);
        EXPECT_TRUE(JsonIsValid(response))
            << stem << ":" << line_number << ": " << response;
        // The envelope must echo the request id when one was recoverable.
        JsonValue root;
        ASSERT_TRUE(JsonParse(response, &root));
        const JsonValue* id = root.Find("id");
        ASSERT_NE(id, nullptr);
        if (outcome.has_id) {
          EXPECT_EQ(id->integer, outcome.id);
        } else {
          EXPECT_EQ(id->kind, JsonValue::Kind::kNull);
        }
      }
    }
  }
  EXPECT_GE(files, 8) << "corpus directory lost files";
}

// ---------------------------------------------------------------------------
// Parser specifics

TEST_F(ServeProtocolTest, OversizedLineRejectedUnparsed) {
  std::string line = "{\"v\":1,\"id\":3,\"method\":\"topk_summary\"";
  line.append(kMaxBytes, ' ');
  line += "}";
  ParseOutcome outcome = ParseRequest(line, kMaxBytes);
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.code, ErrorCode::kOversized);
  // Too large to parse — the id is NOT echoed even though it's there.
  EXPECT_FALSE(outcome.has_id);
  EXPECT_TRUE(
      JsonIsValid(ErrorResponse(false, -1, outcome.code, outcome.message)));
}

TEST_F(ServeProtocolTest, ErrorCodesAreSpecific) {
  auto code_of = [](std::string_view line) {
    return ParseRequest(line, kMaxBytes).code;
  };
  EXPECT_EQ(code_of("{"), ErrorCode::kParseError);
  EXPECT_EQ(code_of("[]"), ErrorCode::kBadRequest);
  EXPECT_EQ(code_of("{\"v\":9,\"id\":1,\"method\":\"topk_summary\"}"),
            ErrorCode::kBadVersion);
  EXPECT_EQ(code_of("{\"v\":1,\"id\":1,\"method\":\"nope\"}"),
            ErrorCode::kUnknownMethod);
  EXPECT_EQ(code_of("{\"v\":1,\"id\":1,\"method\":\"lookup_user\"}"),
            ErrorCode::kBadRequest);
}

TEST_F(ServeProtocolTest, MalformedRequestEchoesUsableId) {
  ParseOutcome outcome =
      ParseRequest("{\"v\":1,\"id\":77,\"method\":\"nope\"}", kMaxBytes);
  ASSERT_FALSE(outcome.ok);
  EXPECT_TRUE(outcome.has_id);
  EXPECT_EQ(outcome.id, 77);
}

TEST_F(ServeProtocolTest, DefaultsApplied) {
  ParseOutcome outcome = ParseRequest(
      "{\"v\":1,\"id\":1,\"method\":\"lookup_district\","
      "\"params\":{\"state\":\"Seoul\",\"county\":\"Mapo-gu\"}}",
      kMaxBytes);
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.request.limit, kDefaultDistrictLimit);
  EXPECT_EQ(outcome.request.offset, 0);
}

// ---------------------------------------------------------------------------
// Executors

TEST_F(ServeProtocolTest, ExecuteIsDeterministic) {
  Request request;
  request.id = 5;
  request.method = Method::kLookupUser;
  request.user = index_->users().front().user;
  std::string first = ExecuteOnIndex(*index_, request);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(ExecuteOnIndex(*index_, request), first);
  }
  EXPECT_TRUE(JsonIsValid(first));
}

TEST_F(ServeProtocolTest, LookupUserRoundTrip) {
  const UserEntry& entry = index_->users().front();
  Request request;
  request.id = 9;
  request.method = Method::kLookupUser;
  request.user = entry.user;
  JsonValue root;
  ASSERT_TRUE(JsonParse(ExecuteOnIndex(*index_, request), &root));
  EXPECT_EQ(root.Find("id")->integer, 9);
  EXPECT_TRUE(root.Find("ok")->boolean);
  const JsonValue* result = root.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->Find("user")->integer, entry.user);
  EXPECT_EQ(result->Find("gps_tweets")->integer, entry.gps_tweets);
  EXPECT_EQ(result->Find("locations")->elements.size(),
            entry.num_locations);
  ASSERT_NE(result->Find("concentration"), nullptr);
}

TEST_F(ServeProtocolTest, LookupUserNotFound) {
  Request request;
  request.id = 4;
  request.method = Method::kLookupUser;
  request.user = 999'999'999;
  std::string response = ExecuteOnIndex(*index_, request);
  EXPECT_EQ(ParsedErrorCode(response), ErrorCode::kNotFound);
}

TEST_F(ServeProtocolTest, LookupDistrictPaging) {
  // Pick the busiest district so paging has something to page.
  const DistrictEntry* busiest = nullptr;
  for (const DistrictEntry& district : index_->districts()) {
    if (busiest == nullptr || district.num_users > busiest->num_users) {
      busiest = &district;
    }
  }
  ASSERT_NE(busiest, nullptr);
  const std::string& name = index_->name(busiest->name);
  size_t space = name.find(' ');
  ASSERT_NE(space, std::string::npos);
  Request request;
  request.id = 1;
  request.method = Method::kLookupDistrict;
  request.state = name.substr(0, space);
  request.county = name.substr(space + 1);
  request.limit = 1;

  std::vector<int64_t> paged;
  for (int64_t offset = 0; offset < busiest->num_users; ++offset) {
    request.offset = offset;
    JsonValue root;
    ASSERT_TRUE(JsonParse(ExecuteOnIndex(*index_, request), &root));
    const JsonValue* result = root.Find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->Find("returned")->integer, 1);
    ASSERT_EQ(result->Find("user_ids")->elements.size(), 1u);
    paged.push_back(result->Find("user_ids")->elements[0].integer);
  }
  // Page-of-one traversal reproduces the full ascending posting list.
  const twitter::UserId* begin = index_->PostingsBegin(*busiest);
  ASSERT_EQ(paged.size(), static_cast<size_t>(busiest->num_users));
  for (size_t i = 0; i < paged.size(); ++i) {
    EXPECT_EQ(paged[i], begin[i]);
  }
  // Offset past the end is empty, not an error.
  request.offset = busiest->num_users + 10;
  JsonValue root;
  ASSERT_TRUE(JsonParse(ExecuteOnIndex(*index_, request), &root));
  EXPECT_EQ(root.Find("result")->Find("returned")->integer, 0);
}

// ---------------------------------------------------------------------------
// infer_user executor

/// The first user (ascending id) whose diurnal inference lands on the
/// given side of the abstention threshold, or kInvalidUser.
twitter::UserId FindUserByDecision(const infer::InferenceIndex& index,
                                   bool want_decided) {
  std::unique_ptr<infer::HomeInferrer> inferrer =
      infer::MakeInferrer(infer::Strategy::kDiurnal, infer::InferParams{});
  for (const infer::UserEvidence& evidence : index.users()) {
    if (inferrer->Infer(evidence).decided == want_decided) {
      return evidence.user;
    }
  }
  return twitter::kInvalidUser;
}

TEST_F(ServeProtocolTest, InferUserRoundTrip) {
  const twitter::UserId user = FindUserByDecision(*infer_index_, true);
  ASSERT_NE(user, twitter::kInvalidUser);
  Request request;
  request.id = 21;
  request.method = Method::kInferUser;
  request.user = user;
  InferOutcome outcome = InferOutcome::kRejected;
  std::string response =
      ExecuteInferUser(infer_index_, infer::InferParams{}, request, &outcome);
  EXPECT_EQ(outcome, InferOutcome::kDecided);
  JsonValue root;
  ASSERT_TRUE(JsonParse(response, &root));
  EXPECT_EQ(root.Find("id")->integer, 21);
  EXPECT_TRUE(root.Find("ok")->boolean);
  const JsonValue* result = root.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->Find("user")->integer, user);
  EXPECT_EQ(result->Find("strategy")->string, "diurnal");
  EXPECT_FALSE(result->Find("state")->string.empty());
  EXPECT_FALSE(result->Find("county")->string.empty());
  EXPECT_GT(result->Find("evidence")->integer, 0);
  // Responses are pure functions of (index, params, request).
  EXPECT_EQ(ExecuteInferUser(infer_index_, infer::InferParams{}, request),
            response);
}

TEST_F(ServeProtocolTest, InferUserAbstainsWithTypedEnvelope) {
  const twitter::UserId user = FindUserByDecision(*infer_index_, false);
  ASSERT_NE(user, twitter::kInvalidUser);
  Request request;
  request.id = 22;
  request.method = Method::kInferUser;
  request.user = user;
  InferOutcome outcome = InferOutcome::kRejected;
  std::string response =
      ExecuteInferUser(infer_index_, infer::InferParams{}, request, &outcome);
  EXPECT_EQ(outcome, InferOutcome::kAbstained);
  EXPECT_EQ(ParsedErrorCode(response), ErrorCode::kLowConfidence);
}

TEST_F(ServeProtocolTest, InferUserStrategySelection) {
  const twitter::UserId user = FindUserByDecision(*infer_index_, true);
  ASSERT_NE(user, twitter::kInvalidUser);
  Request request;
  request.id = 23;
  request.method = Method::kInferUser;
  request.user = user;
  request.strategy = "spatial";
  std::string response =
      ExecuteInferUser(infer_index_, infer::InferParams{}, request);
  JsonValue root;
  ASSERT_TRUE(JsonParse(response, &root));
  const JsonValue* result = root.Find("result");
  if (result != nullptr) {
    EXPECT_EQ(result->Find("strategy")->string, "spatial");
  } else {
    // Spatial may abstain where diurnal decides; that is still the
    // typed envelope, not a failure.
    EXPECT_EQ(ParsedErrorCode(response), ErrorCode::kLowConfidence);
  }
}

TEST_F(ServeProtocolTest, InferUserNotFound) {
  Request request;
  request.id = 24;
  request.method = Method::kInferUser;
  request.user = 999'999'999;
  InferOutcome outcome = InferOutcome::kRejected;
  std::string response =
      ExecuteInferUser(infer_index_, infer::InferParams{}, request, &outcome);
  EXPECT_EQ(outcome, InferOutcome::kNotFound);
  EXPECT_EQ(ParsedErrorCode(response), ErrorCode::kNotFound);
}

TEST_F(ServeProtocolTest, InferUserRejectedWhenDisabled) {
  Request request;
  request.id = 25;
  request.method = Method::kInferUser;
  request.user = 1;
  InferOutcome outcome = InferOutcome::kDecided;
  std::string response =
      ExecuteInferUser(nullptr, infer::InferParams{}, request, &outcome);
  EXPECT_EQ(outcome, InferOutcome::kRejected);
  EXPECT_EQ(ParsedErrorCode(response), ErrorCode::kBadRequest);
}

TEST_F(ServeProtocolTest, InferUserShedTierSitsBetweenStatsAndLookups) {
  EXPECT_LT(ShedTier(Method::kServerStats), ShedTier(Method::kInferUser));
  EXPECT_LT(ShedTier(Method::kInferUser), ShedTier(Method::kLookupUser));
  EXPECT_LT(ShedTier(Method::kLookupUser), ShedTier(Method::kAppendTweets));
  EXPECT_EQ(ShedTier(Method::kAppendTweets), kNumShedTiers - 1);
}

TEST_F(ServeProtocolTest, AllErrorCodesRenderValidJson) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kLowConfidence); ++c) {
    ErrorCode code = static_cast<ErrorCode>(c);
    EXPECT_TRUE(JsonIsValid(ErrorResponse(true, 1, code, "boom")));
    EXPECT_TRUE(JsonIsValid(ErrorResponse(false, -1, code, "\"quoted\"")));
  }
}

}  // namespace
}  // namespace stir::serve
