#include "text/normalize.h"

#include <gtest/gtest.h>

namespace stir::text {
namespace {

TEST(NormalizeTest, LowercasesAndCollapses) {
  EXPECT_EQ(NormalizeFreeText("  Seoul,   KOREA!! "), "seoul korea");
  EXPECT_EQ(NormalizeFreeText(""), "");
  EXPECT_EQ(NormalizeFreeText("..."), "");
}

TEST(NormalizeTest, KeepsIntraWordHyphen) {
  EXPECT_EQ(NormalizeFreeText("Yangcheon-gu"), "yangcheon-gu");
  EXPECT_EQ(NormalizeFreeText("- dash - art -"), "dash art");
  EXPECT_EQ(NormalizeFreeText("a-b-c"), "a-b-c");
}

TEST(NormalizeTest, PassesThroughUtf8) {
  std::string korean = "\xEC\x84\x9C\xEC\x9A\xB8 Jung-gu";  // "서울 Jung-gu"
  EXPECT_EQ(NormalizeFreeText(korean),
            "\xEC\x84\x9C\xEC\x9A\xB8 jung-gu");
}

TEST(TokenizeTest, SplitsOnNormalizedSpaces) {
  EXPECT_EQ(Tokenize("Seoul, Yangcheon-gu (Korea)"),
            (std::vector<std::string>{"seoul", "yangcheon-gu", "korea"}));
  EXPECT_TRUE(Tokenize("  !!! ").empty());
}

TEST(TokenizeTweetTest, StripsUrlsAndMentionSigils) {
  auto tokens =
      TokenizeTweet("big quake!! @user1 see https://t.co/abc #earthquake");
  EXPECT_EQ(tokens, (std::vector<std::string>{"big", "quake", "user1", "see",
                                              "earthquake"}));
}

TEST(TokenizeTweetTest, KeepsApostrophes) {
  EXPECT_EQ(TokenizeTweet("don't stop"),
            (std::vector<std::string>{"don't", "stop"}));
}

TEST(TokenizeTweetTest, KeepsIntraWordHyphens) {
  EXPECT_EQ(TokenizeTweet("lunch at Yangcheon-gu today"),
            (std::vector<std::string>{"lunch", "at", "yangcheon-gu",
                                      "today"}));
  // Trailing or leading joiners do not stick.
  EXPECT_EQ(TokenizeTweet("well- said -yes"),
            (std::vector<std::string>{"well", "said", "yes"}));
}

TEST(EditDistanceTest, BasicDistances) {
  EXPECT_EQ(BoundedEditDistance("abc", "abc", 3), 0);
  EXPECT_EQ(BoundedEditDistance("abc", "abd", 3), 1);
  EXPECT_EQ(BoundedEditDistance("abc", "ab", 3), 1);
  EXPECT_EQ(BoundedEditDistance("abc", "xbcy", 3), 2);
  EXPECT_EQ(BoundedEditDistance("", "abc", 5), 3);
  EXPECT_EQ(BoundedEditDistance("gangnam", "gangnm", 1), 1);
}

TEST(EditDistanceTest, EarlyExitAboveBound) {
  EXPECT_EQ(BoundedEditDistance("aaaa", "bbbb", 2), 3);  // bound + 1
  EXPECT_EQ(BoundedEditDistance("short", "muchlongerstring", 2), 3);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(BoundedEditDistance("seoul", "busan", 5),
            BoundedEditDistance("busan", "seoul", 5));
}

}  // namespace
}  // namespace stir::text
