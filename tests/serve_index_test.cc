// StudyIndex: the immutable serving snapshot of a StudyResult. These
// tests pin the structural invariants the serving layer's determinism
// rests on: value-determined orderings, exhaustive user coverage,
// ascending duplicate-free postings, and alias-tolerant district lookup.

#include "serve/study_index.h"

#include <algorithm>
#include <string>
#include <vector>

#include "core/study.h"
#include "geo/admin_db.h"
#include "gtest/gtest.h"
#include "twitter/generator.h"

namespace stir::serve {
namespace {

using geo::AdminDb;

/// One shared small Korean study (generation + pipeline is the expensive
/// part; every test reads the same frozen result).
class StudyIndexTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const AdminDb& db = AdminDb::KoreanDistricts();
    twitter::DatasetGenerator generator(
        &db, twitter::DatasetGenerator::KoreanConfig(0.05));
    data_ = new twitter::GeneratedData(generator.Generate());
    core::CorrelationStudy study(&db);
    result_ = new core::StudyResult(study.Run(data_->dataset));
    index_ = new StudyIndex(StudyIndex::Build(*result_, db));
  }
  static void TearDownTestSuite() {
    delete index_;
    index_ = nullptr;
    delete result_;
    result_ = nullptr;
    delete data_;
    data_ = nullptr;
  }

  static twitter::GeneratedData* data_;
  static core::StudyResult* result_;
  static StudyIndex* index_;
};

twitter::GeneratedData* StudyIndexTest::data_ = nullptr;
core::StudyResult* StudyIndexTest::result_ = nullptr;
StudyIndex* StudyIndexTest::index_ = nullptr;

TEST_F(StudyIndexTest, CoversEveryFinalUser) {
  ASSERT_FALSE(index_->empty());
  EXPECT_EQ(index_->user_count(), result_->groupings.size());
  EXPECT_EQ(index_->final_users(), result_->final_users);
  for (const core::UserGrouping& grouping : result_->groupings) {
    const UserEntry* entry = index_->FindUser(grouping.user);
    ASSERT_NE(entry, nullptr) << "user " << grouping.user;
    EXPECT_EQ(entry->user, grouping.user);
    EXPECT_EQ(entry->group, grouping.group);
    EXPECT_EQ(entry->match_rank, grouping.match_rank);
    EXPECT_EQ(entry->gps_tweets, grouping.gps_tweet_count);
    EXPECT_EQ(entry->matched_tweets, grouping.matched_tweet_count);
    EXPECT_EQ(entry->num_locations, grouping.ordered.size());
  }
}

TEST_F(StudyIndexTest, UnknownUserIsNull) {
  EXPECT_EQ(index_->FindUser(-1), nullptr);
  EXPECT_EQ(index_->FindUser(1'000'000'000), nullptr);
}

TEST_F(StudyIndexTest, UsersAreValueOrdered) {
  const std::vector<UserEntry>& users = index_->users();
  for (size_t i = 1; i < users.size(); ++i) {
    EXPECT_LT(users[i - 1].user, users[i].user);
  }
}

TEST_F(StudyIndexTest, LocationsMirrorRankedLists) {
  for (const core::UserGrouping& grouping : result_->groupings) {
    const UserEntry* entry = index_->FindUser(grouping.user);
    ASSERT_NE(entry, nullptr);
    const RankedLocation* location = index_->LocationsBegin(*entry);
    for (const core::MergedLocationString& merged : grouping.ordered) {
      ASSERT_NE(location, index_->LocationsEnd(*entry));
      EXPECT_EQ(index_->name(location->district),
                merged.record.tweet_state + " " + merged.record.tweet_county);
      EXPECT_EQ(location->count, merged.count);
      EXPECT_EQ(location->matched, merged.record.IsMatched());
      ++location;
    }
    EXPECT_EQ(location, index_->LocationsEnd(*entry));
  }
}

TEST_F(StudyIndexTest, PostingsAscendingAndDupFree) {
  ASSERT_GT(index_->district_count(), 0u);
  int64_t postings_total = 0;
  for (const DistrictEntry& district : index_->districts()) {
    const twitter::UserId* begin = index_->PostingsBegin(district);
    const twitter::UserId* end = index_->PostingsEnd(district);
    EXPECT_EQ(end - begin, district.num_users);
    postings_total += district.num_users;
    for (const twitter::UserId* p = begin; p != end; ++p) {
      if (p != begin) EXPECT_LT(*(p - 1), *p);
      EXPECT_NE(index_->FindUser(*p), nullptr);
    }
  }
  // Every (user, district) edge appears exactly once.
  int64_t expected_edges = 0;
  for (const core::UserGrouping& grouping : result_->groupings) {
    expected_edges += static_cast<int64_t>(grouping.ordered.size());
  }
  EXPECT_EQ(postings_total, expected_edges);
}

TEST_F(StudyIndexTest, EveryTweetDistrictIsFindable) {
  for (const core::UserGrouping& grouping : result_->groupings) {
    for (const core::MergedLocationString& merged : grouping.ordered) {
      const DistrictEntry* district = index_->FindDistrict(
          merged.record.tweet_state, merged.record.tweet_county);
      ASSERT_NE(district, nullptr)
          << merged.record.tweet_state << " " << merged.record.tweet_county;
      const twitter::UserId* begin = index_->PostingsBegin(*district);
      const twitter::UserId* end = index_->PostingsEnd(*district);
      EXPECT_TRUE(std::binary_search(begin, end, grouping.user));
    }
  }
}

TEST_F(StudyIndexTest, DistrictLookupIsCaseInsensitive) {
  ASSERT_FALSE(result_->groupings.empty());
  const core::LocationRecord& record =
      result_->groupings.front().ordered.front().record;
  const DistrictEntry* exact =
      index_->FindDistrict(record.tweet_state, record.tweet_county);
  ASSERT_NE(exact, nullptr);
  std::string upper_state = record.tweet_state;
  std::string upper_county = record.tweet_county;
  for (char& c : upper_state) c = static_cast<char>(toupper(c));
  for (char& c : upper_county) c = static_cast<char>(toupper(c));
  EXPECT_EQ(index_->FindDistrict(upper_state, upper_county), exact);
}

TEST_F(StudyIndexTest, DistrictLookupAcceptsHangulAlias) {
  // Find any indexed district the gazetteer has a hangul spelling for.
  bool tested = false;
  for (const core::UserGrouping& grouping : result_->groupings) {
    for (const core::MergedLocationString& merged : grouping.ordered) {
      const char* hangul = geo::AdminDb::HangulCountyName(
          merged.record.tweet_state, merged.record.tweet_county);
      if (hangul == nullptr) continue;
      EXPECT_EQ(index_->FindDistrict(merged.record.tweet_state, hangul),
                index_->FindDistrict(merged.record.tweet_state,
                                     merged.record.tweet_county));
      tested = true;
    }
  }
  EXPECT_TRUE(tested) << "corpus produced no district with a hangul alias";
}

TEST_F(StudyIndexTest, UnknownDistrictIsNull) {
  EXPECT_EQ(index_->FindDistrict("Atlantis", "Downtown"), nullptr);
  EXPECT_EQ(index_->FindDistrict("", ""), nullptr);
}

TEST_F(StudyIndexTest, GroupTableMatchesResult) {
  for (int g = 0; g < core::kNumTopKGroups; ++g) {
    core::TopKGroup group = static_cast<core::TopKGroup>(g);
    EXPECT_EQ(index_->group(group).users, result_->groups[g].users);
    EXPECT_EQ(index_->group(group).gps_tweets, result_->groups[g].gps_tweets);
  }
  EXPECT_EQ(index_->funnel().crawled_users, result_->funnel.crawled_users);
  EXPECT_DOUBLE_EQ(index_->overall_avg_locations(),
                   result_->overall_avg_locations);
}

TEST_F(StudyIndexTest, RebuildIsStructurallyIdentical) {
  const AdminDb& db = AdminDb::KoreanDistricts();
  StudyIndex again = StudyIndex::Build(*result_, db);
  EXPECT_EQ(again.user_count(), index_->user_count());
  EXPECT_EQ(again.district_count(), index_->district_count());
  EXPECT_EQ(again.MemoryBytes(), index_->MemoryBytes());
  ASSERT_EQ(again.districts().size(), index_->districts().size());
  for (size_t i = 0; i < again.districts().size(); ++i) {
    EXPECT_EQ(again.name(again.districts()[i].name),
              index_->name(index_->districts()[i].name));
    EXPECT_EQ(again.districts()[i].num_users,
              index_->districts()[i].num_users);
    EXPECT_EQ(again.districts()[i].gps_tweets,
              index_->districts()[i].gps_tweets);
  }
}

TEST_F(StudyIndexTest, IncompleteStudyYieldsEmptyIndex) {
  core::StudyResult incomplete = *result_;
  incomplete.incomplete = true;
  StudyIndex index =
      StudyIndex::Build(incomplete, AdminDb::KoreanDistricts());
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.user_count(), 0u);
  EXPECT_EQ(index.district_count(), 0u);
}

TEST_F(StudyIndexTest, MemoryBytesIsPositiveAndStable) {
  EXPECT_GT(index_->MemoryBytes(), 0);
  EXPECT_EQ(index_->MemoryBytes(), index_->MemoryBytes());
}

}  // namespace
}  // namespace stir::serve
