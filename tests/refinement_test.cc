#include "core/refinement.h"

#include <gtest/gtest.h>

#include "twitter/dataset.h"

namespace stir::core {
namespace {

class RefinementTest : public ::testing::Test {
 protected:
  RefinementTest()
      : db_(geo::AdminDb::KoreanDistricts()),
        parser_(&db_),
        geocoder_(&db_) {}

  twitter::User MakeUser(twitter::UserId id, const std::string& location,
                         int64_t total = 10) {
    twitter::User user;
    user.id = id;
    user.handle = "u" + std::to_string(id);
    user.profile_location = location;
    user.total_tweets = total;
    return user;
  }

  twitter::Tweet GpsTweet(twitter::TweetId id, twitter::UserId user,
                          const geo::LatLng& gps) {
    twitter::Tweet tweet;
    tweet.id = id;
    tweet.user = user;
    tweet.time = id;
    tweet.gps = gps;
    tweet.text = "t";
    return tweet;
  }

  const geo::AdminDb& db_;
  text::LocationParser parser_;
  geo::ReverseGeocoder geocoder_;
};

TEST_F(RefinementTest, FunnelCountsEveryQualityClass) {
  twitter::Dataset dataset;
  dataset.AddUser(MakeUser(1, "Seoul Mapo-gu"));        // well-defined
  dataset.AddUser(MakeUser(2, ""));                     // empty
  dataset.AddUser(MakeUser(3, "Earth"));                // vague
  dataset.AddUser(MakeUser(4, "Korea"));                // insufficient
  dataset.AddUser(MakeUser(5, "Jung-gu"));              // ambiguous
  dataset.AddUser(MakeUser(6, "Busan Haeundae-gu"));    // well-defined
  dataset.AddTweet(GpsTweet(1, 1, {37.5663, 126.9019}));  // Mapo-gu
  // User 6 has no GPS tweets -> drops at the second gate.

  FunnelStats funnel;
  RefinementPipeline pipeline(&parser_, &geocoder_);
  std::vector<RefinedUser> refined = pipeline.Run(dataset, &funnel);

  EXPECT_EQ(funnel.crawled_users, 6);
  EXPECT_EQ(funnel.quality_counts[static_cast<int>(
                text::LocationQuality::kEmpty)],
            1);
  EXPECT_EQ(funnel.quality_counts[static_cast<int>(
                text::LocationQuality::kVague)],
            1);
  EXPECT_EQ(funnel.quality_counts[static_cast<int>(
                text::LocationQuality::kInsufficient)],
            1);
  EXPECT_EQ(funnel.quality_counts[static_cast<int>(
                text::LocationQuality::kAmbiguous)],
            1);
  EXPECT_EQ(funnel.well_defined_users, 2);
  EXPECT_EQ(funnel.final_users, 1);
  ASSERT_EQ(refined.size(), 1u);
  EXPECT_EQ(refined[0].user, 1);
  EXPECT_EQ(db_.region(refined[0].profile_region).county, "Mapo-gu");
  ASSERT_EQ(refined[0].tweet_regions.size(), 1u);
  EXPECT_EQ(db_.region(refined[0].tweet_regions[0]).county, "Mapo-gu");
}

TEST_F(RefinementTest, GeocodeFailuresCountedNotFatal) {
  twitter::Dataset dataset;
  dataset.AddUser(MakeUser(1, "Seoul Mapo-gu"));
  dataset.AddTweet(GpsTweet(1, 1, {37.5663, 126.9019}));  // fine
  dataset.AddTweet(GpsTweet(2, 1, {20.0, -150.0}));       // mid-Pacific

  FunnelStats funnel;
  RefinementPipeline pipeline(&parser_, &geocoder_);
  std::vector<RefinedUser> refined = pipeline.Run(dataset, &funnel);
  EXPECT_EQ(funnel.geocode_failures, 1);
  ASSERT_EQ(refined.size(), 1u);
  EXPECT_EQ(refined[0].tweet_regions.size(), 1u);
}

TEST_F(RefinementTest, UserWithOnlyUnGeocodableTweetsDrops) {
  twitter::Dataset dataset;
  dataset.AddUser(MakeUser(1, "Seoul Mapo-gu"));
  dataset.AddTweet(GpsTweet(1, 1, {20.0, -150.0}));
  FunnelStats funnel;
  RefinementPipeline pipeline(&parser_, &geocoder_);
  EXPECT_TRUE(pipeline.Run(dataset, &funnel).empty());
  EXPECT_EQ(funnel.well_defined_users, 1);
  EXPECT_EQ(funnel.final_users, 0);
}

TEST_F(RefinementTest, FaithfulXmlPipelineMatchesStructuredPath) {
  twitter::Dataset dataset;
  dataset.AddUser(MakeUser(1, "Gyeonggi-do Uiwang-si"));
  Rng rng(4);
  auto uiwang = db_.FindCounty("Gyeonggi-do", "Uiwang-si");
  ASSERT_TRUE(uiwang.ok());
  for (twitter::TweetId t = 0; t < 10; ++t) {
    dataset.AddTweet(GpsTweet(t, 1, db_.SamplePointIn(*uiwang, rng)));
  }

  RefinementOptions faithful;
  faithful.faithful_xml_pipeline = true;
  geo::ReverseGeocoder geocoder_a(&db_), geocoder_b(&db_);
  RefinementPipeline structured(&parser_, &geocoder_a);
  RefinementPipeline xml(&parser_, &geocoder_b, faithful);

  FunnelStats fa, fb;
  auto a = structured.Run(dataset, &fa);
  auto b = xml.Run(dataset, &fb);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].tweet_regions, b[0].tweet_regions);
  EXPECT_EQ(fa.final_users, fb.final_users);
}

TEST_F(RefinementTest, NullFunnelPointerAccepted) {
  twitter::Dataset dataset;
  dataset.AddUser(MakeUser(1, "Seoul Mapo-gu"));
  dataset.AddTweet(GpsTweet(1, 1, {37.5663, 126.9019}));
  RefinementPipeline pipeline(&parser_, &geocoder_);
  EXPECT_EQ(pipeline.Run(dataset, nullptr).size(), 1u);
}

TEST_F(RefinementTest, TotalTweetsPreservedOnRefinedUsers) {
  twitter::Dataset dataset;
  dataset.AddUser(MakeUser(1, "Seoul Mapo-gu", 1234));
  dataset.AddTweet(GpsTweet(1, 1, {37.5663, 126.9019}));
  RefinementPipeline pipeline(&parser_, &geocoder_);
  auto refined = pipeline.Run(dataset, nullptr);
  ASSERT_EQ(refined.size(), 1u);
  EXPECT_EQ(refined[0].total_tweets, 1234);
}

}  // namespace
}  // namespace stir::core
