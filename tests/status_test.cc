#include "common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace stir {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesRoundTripThroughToString) {
  struct Case {
    Status status;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("x"), "InvalidArgument"},
      {Status::NotFound("x"), "NotFound"},
      {Status::AlreadyExists("x"), "AlreadyExists"},
      {Status::OutOfRange("x"), "OutOfRange"},
      {Status::FailedPrecondition("x"), "FailedPrecondition"},
      {Status::ResourceExhausted("x"), "ResourceExhausted"},
      {Status::Unavailable("x"), "Unavailable"},
      {Status::IOError("x"), "IOError"},
      {Status::Internal("x"), "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(c.status.ToString(), std::string(c.name) + ": x");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::OutOfRange("too big");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsOutOfRange());
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOnlyValueMovesOut) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  STIR_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  *out = value * 2;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(5, &out).ok());
  EXPECT_EQ(out, 10);
  Status failed = UseAssignOrReturn(-1, &out);
  EXPECT_TRUE(failed.IsInvalidArgument());
  EXPECT_EQ(out, 10);  // untouched on failure
}

Status UseReturnIfError(bool fail) {
  STIR_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_TRUE(UseReturnIfError(true).IsInternal());
}

}  // namespace
}  // namespace stir
