#include "geo/latlng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace stir::geo {
namespace {

TEST(LatLngTest, Validity) {
  EXPECT_TRUE((LatLng{0, 0}).IsValid());
  EXPECT_TRUE((LatLng{-90, 180}).IsValid());
  EXPECT_FALSE((LatLng{90.01, 0}).IsValid());
  EXPECT_FALSE((LatLng{0, -180.01}).IsValid());
  EXPECT_FALSE((LatLng{NAN, 0}).IsValid());
  EXPECT_FALSE((LatLng{0, INFINITY}).IsValid());
}

TEST(LatLngTest, ToStringSixDecimals) {
  EXPECT_EQ((LatLng{37.5665, 126.978}).ToString(), "37.566500,126.978000");
}

TEST(HaversineTest, KnownDistances) {
  // Seoul City Hall to Busan City Hall: ~325 km.
  LatLng seoul{37.5665, 126.9780};
  LatLng busan{35.1796, 129.0756};
  EXPECT_NEAR(HaversineKm(seoul, busan), 325.0, 8.0);
  // Zero distance.
  EXPECT_DOUBLE_EQ(HaversineKm(seoul, seoul), 0.0);
  // One degree of latitude is ~111.2 km anywhere.
  EXPECT_NEAR(HaversineKm({0, 0}, {1, 0}), 111.2, 0.5);
  EXPECT_NEAR(HaversineKm({50, 10}, {51, 10}), 111.2, 0.5);
}

TEST(HaversineTest, SymmetricAndTriangleLike) {
  LatLng a{37.5, 127.0}, b{35.2, 129.1}, c{36.3, 127.4};
  EXPECT_DOUBLE_EQ(HaversineKm(a, b), HaversineKm(b, a));
  EXPECT_LE(HaversineKm(a, b), HaversineKm(a, c) + HaversineKm(c, b) + 1e-9);
}

TEST(ApproxDistanceTest, CloseToHaversineAtCityScale) {
  LatLng center{37.5665, 126.9780};
  LatLng targets[] = {{37.60, 127.02}, {37.49, 126.90}, {37.57, 126.99}};
  for (const LatLng& t : targets) {
    double exact = HaversineKm(center, t);
    double approx = ApproxDistanceKm(center, t);
    EXPECT_NEAR(approx, exact, exact * 0.005 + 0.01);
  }
}

TEST(DestinationTest, InvertsHaversine) {
  LatLng origin{37.5665, 126.9780};
  for (double bearing : {0.0, 45.0, 90.0, 180.0, 270.0, 359.0}) {
    for (double distance : {0.5, 5.0, 50.0, 300.0}) {
      LatLng dest = Destination(origin, bearing, distance);
      EXPECT_TRUE(dest.IsValid());
      EXPECT_NEAR(HaversineKm(origin, dest), distance, distance * 0.001 + 1e-6)
          << "bearing=" << bearing << " distance=" << distance;
    }
  }
}

TEST(DestinationTest, NorthIncreasesLatitude) {
  LatLng origin{10, 20};
  LatLng north = Destination(origin, 0.0, 100.0);
  EXPECT_GT(north.lat, origin.lat);
  EXPECT_NEAR(north.lng, origin.lng, 1e-9);
  LatLng east = Destination(origin, 90.0, 100.0);
  EXPECT_GT(east.lng, origin.lng);
}

TEST(BoundingBoxTest, EmptyAndExtend) {
  BoundingBox box;
  EXPECT_TRUE(box.IsEmpty());
  EXPECT_FALSE(box.Contains({0, 0}));
  box.Extend({10, 20});
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_TRUE(box.Contains({10, 20}));
  box.Extend({-5, 30});
  EXPECT_TRUE(box.Contains({0, 25}));
  EXPECT_FALSE(box.Contains({0, 31}));
  EXPECT_EQ(box.Center().lat, 2.5);
  EXPECT_EQ(box.Center().lng, 25.0);
}

TEST(BoundingBoxTest, Expanded) {
  BoundingBox box;
  box.Extend({10, 10});
  BoundingBox bigger = box.Expanded(1.0);
  EXPECT_TRUE(bigger.Contains({10.9, 9.1}));
  EXPECT_FALSE(bigger.Contains({11.1, 10}));
}

}  // namespace
}  // namespace stir::geo
