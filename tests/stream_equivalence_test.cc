// Differential batch-equivalence harness for the incremental stream
// engine (DESIGN.md §12). The headline invariant under test: for ANY
// epoch partition of the same tweet log and ANY thread count, the final
// streamed index answers every index-served protocol method
// byte-identically to the index the one-shot batch study builds. Also
// covers fault-injected equivalence, RCU snapshot consistency for
// generation-pinned readers during swaps, and a concurrent
// appender/querier hammer (a TSan target — build with
// -DSTIR_SANITIZE=thread).

#include "stream/engine.h"

#include <atomic>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/study.h"
#include "core/study_config.h"
#include "geo/admin_db.h"
#include "gtest/gtest.h"
#include "obs/json.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/study_index.h"
#include "twitter/generator.h"

namespace stir::stream {
namespace {

using geo::AdminDb;
using obs::JsonParse;
using obs::JsonValue;

class StreamEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = &AdminDb::KoreanDistricts();
    twitter::DatasetGenerator generator(
        db_, twitter::DatasetGenerator::KoreanConfig(0.02));
    data_ = new twitter::GeneratedData(generator.Generate());
    ASSERT_GT(data_->dataset.tweets().size(), 100u);

    core::CorrelationStudy study(db_);
    core::StudyResult result = study.Run(data_->dataset);
    batch_index_ =
        new serve::StudyIndex(serve::StudyIndex::Build(result, *db_));
    ASSERT_FALSE(batch_index_->empty());

    requests_ = new std::vector<serve::Request>(
        ProtocolRequests(*batch_index_));
    expected_ = new std::vector<std::string>();
    expected_->reserve(requests_->size());
    for (const serve::Request& request : *requests_) {
      expected_->push_back(serve::ExecuteOnIndex(*batch_index_, request));
    }
  }
  static void TearDownTestSuite() {
    delete expected_;
    delete requests_;
    delete batch_index_;
    delete data_;
    expected_ = nullptr;
    requests_ = nullptr;
    batch_index_ = nullptr;
    data_ = nullptr;
  }

  /// Every index-served request the protocol can express against this
  /// index: each user (+ one absent), each district (+ paging variants
  /// and one absent), and the topk summary.
  static std::vector<serve::Request> ProtocolRequests(
      const serve::StudyIndex& index) {
    std::vector<serve::Request> requests;
    int64_t id = 0;
    for (const serve::UserEntry& entry : index.users()) {
      serve::Request request;
      request.id = ++id;
      request.method = serve::Method::kLookupUser;
      request.user = entry.user;
      requests.push_back(request);
    }
    {
      serve::Request missing;
      missing.id = ++id;
      missing.method = serve::Method::kLookupUser;
      missing.user = 1'000'000'000;
      requests.push_back(missing);
    }
    for (const serve::DistrictEntry& entry : index.districts()) {
      const std::string& name = index.name(entry.name);
      size_t space = name.find(' ');
      if (space == std::string::npos) {
        ADD_FAILURE() << "district name without a state: " << name;
        continue;
      }
      serve::Request request;
      request.id = ++id;
      request.method = serve::Method::kLookupDistrict;
      request.state = name.substr(0, space);
      request.county = name.substr(space + 1);
      requests.push_back(request);
      request.id = ++id;
      request.limit = 2;
      request.offset = 1;
      requests.push_back(request);
    }
    {
      serve::Request missing;
      missing.id = ++id;
      missing.method = serve::Method::kLookupDistrict;
      missing.state = "Atlantis";
      missing.county = "Deep-gu";
      requests.push_back(missing);
    }
    serve::Request topk;
    topk.id = ++id;
    topk.method = serve::Method::kTopkSummary;
    requests.push_back(topk);
    return requests;
  }

  /// Ingests the full corpus: users in dataset order, tweets in dataset
  /// order with their dataset indices as fault keys (the batch study's
  /// fault schedule). `seal_each` optionally seals after single tweets.
  static void IngestAll(StreamEngine* engine) {
    for (const twitter::User& user : data_->dataset.users()) {
      ASSERT_TRUE(engine->AddUser(user).ok());
    }
    const std::vector<twitter::Tweet>& tweets = data_->dataset.tweets();
    for (size_t i = 0; i < tweets.size(); ++i) {
      ASSERT_TRUE(
          engine->AddTweet(tweets[i], static_cast<int64_t>(i)).ok());
    }
  }

  /// The whole point: the streamed index answers every request with the
  /// exact bytes the batch index produced.
  static void ExpectBatchEquivalent(
      const std::shared_ptr<const serve::StudyIndex>& index,
      const std::string& label) {
    ASSERT_NE(index, nullptr);
    for (size_t i = 0; i < requests_->size(); ++i) {
      EXPECT_EQ(serve::ExecuteOnIndex(*index, (*requests_)[i]),
                (*expected_)[i])
          << label << ", request " << i;
      if (HasFailure()) return;
    }
  }

  static const AdminDb* db_;
  static twitter::GeneratedData* data_;
  static serve::StudyIndex* batch_index_;
  static std::vector<serve::Request>* requests_;
  static std::vector<std::string>* expected_;
};

const AdminDb* StreamEquivalenceTest::db_ = nullptr;
twitter::GeneratedData* StreamEquivalenceTest::data_ = nullptr;
serve::StudyIndex* StreamEquivalenceTest::batch_index_ = nullptr;
std::vector<serve::Request>* StreamEquivalenceTest::requests_ = nullptr;
std::vector<std::string>* StreamEquivalenceTest::expected_ = nullptr;

// ---------------------------------------------------------------------------
// The partition × thread-count grid

TEST_F(StreamEquivalenceTest, EpochSizeGridMatchesBatch) {
  // Size 1 (a seal per tweet), a prime, a power of two, and all-in-one
  // (0 auto-seals never; the final manual seal is the only epoch).
  const int64_t kEpochSizes[] = {1, 7, 16, 0};
  const int kThreads[] = {1, 2, 8};
  for (int64_t epoch_size : kEpochSizes) {
    for (int threads : kThreads) {
      StudyConfig config;
      config.threads = threads;
      StreamOptions options;
      options.epoch_size = epoch_size;
      StreamEngine engine(db_, config, options);
      ASSERT_TRUE(engine.Open().ok());
      IngestAll(&engine);
      engine.SealEpoch();
      std::string label = "epoch_size=" + std::to_string(epoch_size) +
                          " threads=" + std::to_string(threads);
      if (epoch_size == 1) {
        // Every tweet sealed an epoch; the trailing seal was a no-op.
        EXPECT_EQ(engine.epochs_sealed(),
                  static_cast<int64_t>(data_->dataset.tweets().size()))
            << label;
      }
      EXPECT_EQ(engine.generation(), engine.epochs_sealed()) << label;
      EXPECT_EQ(engine.pending_tweets(), 0) << label;
      ExpectBatchEquivalent(engine.CurrentIndex(), label);
      if (HasFailure()) return;
    }
  }
}

TEST_F(StreamEquivalenceTest, SeededRandomPartitionsMatchBatch) {
  // Eight seeded random partitions: seal after each tweet with
  // probability ~1/8, thread count cycling through {1, 2, 8}.
  const int kThreads[] = {1, 2, 8};
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    std::mt19937_64 rng(seed);
    StudyConfig config;
    config.threads = kThreads[seed % 3];
    StreamEngine engine(db_, config, StreamOptions{});
    ASSERT_TRUE(engine.Open().ok());
    for (const twitter::User& user : data_->dataset.users()) {
      ASSERT_TRUE(engine.AddUser(user).ok());
    }
    const std::vector<twitter::Tweet>& tweets = data_->dataset.tweets();
    for (size_t i = 0; i < tweets.size(); ++i) {
      ASSERT_TRUE(
          engine.AddTweet(tweets[i], static_cast<int64_t>(i)).ok());
      if (rng() % 8 == 0) engine.SealEpoch();
    }
    engine.SealEpoch();
    ExpectBatchEquivalent(engine.CurrentIndex(),
                          "seed=" + std::to_string(seed));
    if (HasFailure()) return;
  }
}

TEST_F(StreamEquivalenceTest, FaultScheduleMatchesBatch) {
  // With fault injection armed, the dataset-index fault keys must charge
  // the streamed run the exact per-tweet fault/retry schedule of the
  // batch study — funnel counters included.
  StudyConfig faulty;
  faulty.fault.error_rate = 0.3;
  faulty.fault.seed = 99;
  faulty.retry.max_attempts = 2;

  core::CorrelationStudy study(db_, faulty);
  core::StudyResult batch = study.Run(data_->dataset);
  serve::StudyIndex batch_faulty = serve::StudyIndex::Build(batch, *db_);

  for (int64_t epoch_size : {1, 13}) {
    StreamOptions options;
    options.epoch_size = epoch_size;
    StreamEngine engine(db_, faulty, options);
    ASSERT_TRUE(engine.Open().ok());
    IngestAll(&engine);
    engine.SealEpoch();
    std::shared_ptr<const serve::StudyIndex> index = engine.CurrentIndex();
    ASSERT_NE(index, nullptr);
    std::string label = "faulty epoch_size=" + std::to_string(epoch_size);
    for (const serve::Request& request : *requests_) {
      EXPECT_EQ(serve::ExecuteOnIndex(*index, request),
                serve::ExecuteOnIndex(batch_faulty, request))
          << label;
      if (HasFailure()) return;
    }
    EXPECT_EQ(index->funnel().geocode_faulted,
              batch_faulty.funnel().geocode_faulted)
        << label;
    EXPECT_EQ(index->funnel().geocode_retried,
              batch_faulty.funnel().geocode_retried)
        << label;
  }
}

// ---------------------------------------------------------------------------
// RCU snapshot consistency

TEST_F(StreamEquivalenceTest, PinnedReadersSeeConsistentSnapshots) {
  // A reader that pinned generation G keeps answering from G's bytes
  // while appends seal new generations underneath it — the RCU contract.
  StreamOptions stream_options;
  stream_options.epoch_size = 1;
  StreamEngine engine(db_, StudyConfig{}, stream_options);
  ASSERT_TRUE(engine.Open().ok());
  IngestAll(&engine);
  engine.SealEpoch();

  serve::ServeOptions serve_options;
  serve_options.stream = &engine;
  serve::Server server(engine.CurrentIndex(), engine.generation(),
                       serve_options);
  engine.AttachScheduler(&server.scheduler());

  int64_t pinned_generation = -1;
  std::shared_ptr<const serve::StudyIndex> pinned =
      server.scheduler().PinIndex(&pinned_generation);
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned_generation, engine.generation());
  const size_t users_before = pinned->user_count();

  // Appends (each sealing an epoch at size 1) swap fresh generations in.
  for (int i = 0; i < 3; ++i) {
    std::string line =
        "{\"v\":1,\"id\":" + std::to_string(100 + i) +
        ",\"method\":\"append_tweets\",\"params\":{\"users\":[{\"id\":" +
        std::to_string(7'000'000 + i) +
        ",\"location\":\"Seoul Mapo-gu\",\"total_tweets\":1}],"
        "\"tweets\":[{\"id\":" +
        std::to_string(8'000'000 + i) + ",\"user\":" +
        std::to_string(7'000'000 + i) +
        ",\"time\":1,\"lat\":37.55,\"lng\":126.94,\"text\":\"x\"}]}}";
    std::string response = server.SubmitLine(line).get();
    JsonValue root;
    ASSERT_TRUE(JsonParse(response, &root)) << response;
    const JsonValue* ok = root.Find("ok");
    ASSERT_NE(ok, nullptr);
    EXPECT_TRUE(ok->boolean) << response;
  }

  // The pinned snapshot is untouched: same bytes as the batch index it
  // was proven equal to, same user count.
  EXPECT_EQ(pinned->user_count(), users_before);
  ExpectBatchEquivalent(pinned, "pinned snapshot");

  // A fresh pin sees the post-append world: newer generation, more users.
  int64_t fresh_generation = -1;
  std::shared_ptr<const serve::StudyIndex> fresh =
      server.scheduler().PinIndex(&fresh_generation);
  EXPECT_GT(fresh_generation, pinned_generation);
  EXPECT_EQ(fresh->user_count(), users_before + 3);
  EXPECT_NE(fresh->FindUser(7'000'002), nullptr);
  server.Drain();
}

// ---------------------------------------------------------------------------
// Concurrent appenders + queriers (TSan target)

TEST_F(StreamEquivalenceTest, AppendQueryHammer) {
  StreamOptions stream_options;
  stream_options.epoch_size = 16;
  StreamEngine engine(db_, StudyConfig{}, stream_options);
  ASSERT_TRUE(engine.Open().ok());
  IngestAll(&engine);
  engine.SealEpoch();

  serve::ServeOptions serve_options;
  serve_options.workers = 4;
  serve_options.queue_capacity = 4096;
  serve_options.stream = &engine;
  serve::Server server(engine.CurrentIndex(), engine.generation(),
                       serve_options);
  engine.AttachScheduler(&server.scheduler());

  constexpr int kQueriers = 4;
  constexpr int kAppenders = 2;
  constexpr int kPerThread = 60;
  const twitter::UserId probe = batch_index_->users()[0].user;
  std::atomic<int64_t> ok_responses{0};

  std::vector<std::thread> threads;
  threads.reserve(kQueriers + kAppenders);
  for (int t = 0; t < kQueriers; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        int64_t id = t * kPerThread + i;
        std::string line =
            i % 2 == 0
                ? "{\"v\":1,\"id\":" + std::to_string(id) +
                      ",\"method\":\"lookup_user\",\"params\":{\"user\":" +
                      std::to_string(probe) + "}}"
                : "{\"v\":1,\"id\":" + std::to_string(id) +
                      ",\"method\":\"index_info\"}";
        std::string response = server.SubmitLine(line).get();
        JsonValue root;
        ASSERT_TRUE(JsonParse(response, &root)) << response;
        const JsonValue* ok = root.Find("ok");
        ASSERT_NE(ok, nullptr) << response;
        if (ok->boolean) ok_responses.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < kAppenders; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        int64_t uid = 9'000'000 + t * kPerThread + i;
        std::string line =
            "{\"v\":1,\"id\":" + std::to_string(1'000 + uid) +
            ",\"method\":\"append_tweets\",\"params\":{\"users\":[{\"id\":" +
            std::to_string(uid) +
            ",\"location\":\"Seoul Mapo-gu\",\"total_tweets\":1}],"
            "\"tweets\":[{\"id\":" +
            std::to_string(uid + 1'000'000) + ",\"user\":" +
            std::to_string(uid) +
            ",\"time\":9,\"lat\":37.55,\"lng\":126.94,\"text\":\"h\"}]}}";
        std::string response = server.SubmitLine(line).get();
        JsonValue root;
        ASSERT_TRUE(JsonParse(response, &root)) << response;
        const JsonValue* ok = root.Find("ok");
        ASSERT_NE(ok, nullptr) << response;
        EXPECT_TRUE(ok->boolean) << response;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  server.Drain();

  // Every append landed: the engine grew by exactly the appended rows,
  // every query got a well-formed answer, and the final generation
  // matches the seal count.
  EXPECT_EQ(ok_responses.load(), kQueriers * kPerThread);
  EXPECT_EQ(engine.ingested_users(),
            static_cast<int64_t>(data_->dataset.users().size()) +
                kAppenders * kPerThread);
  EXPECT_EQ(engine.generation(), engine.epochs_sealed());
  engine.SealEpoch();  // flush the sub-epoch tail before counting
  std::shared_ptr<const serve::StudyIndex> index = engine.CurrentIndex();
  EXPECT_EQ(index->user_count(),
            batch_index_->user_count() + kAppenders * kPerThread);
}

}  // namespace
}  // namespace stir::stream
