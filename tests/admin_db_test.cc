#include "geo/admin_db.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"

namespace stir::geo {
namespace {

TEST(AdminDbTest, KoreanGazetteerShape) {
  const AdminDb& db = AdminDb::KoreanDistricts();
  EXPECT_EQ(db.states().size(), 17u);  // 17 first-level si/do
  EXPECT_GE(db.size(), 150u);
  EXPECT_EQ(db.CountiesInState("Seoul").size(), 25u);   // 25 gu
  EXPECT_EQ(db.CountiesInState("Busan").size(), 16u);
  EXPECT_EQ(db.CountiesInState("Gyeonggi-do").size(), 31u);
}

TEST(AdminDbTest, FindCountyExactAndCaseInsensitive) {
  const AdminDb& db = AdminDb::KoreanDistricts();
  auto id = db.FindCounty("Seoul", "Yangcheon-gu");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(db.region(*id).FullName(), "Seoul Yangcheon-gu");
  EXPECT_TRUE(db.FindCounty("sEOUL", "yangcheon-GU").ok());
  EXPECT_TRUE(db.FindCounty("Seoul", "Nosuchplace-gu").status().IsNotFound());
  EXPECT_TRUE(db.FindCounty("Atlantis", "Jung-gu").status().IsNotFound());
}

TEST(AdminDbTest, AliasResolvesToCanonicalRegion) {
  const AdminDb& db = AdminDb::KoreanDistricts();
  // The paper's own spelling of the district.
  auto via_alias = db.FindCounty("Seoul", "Yangchun-gu");
  auto canonical = db.FindCounty("Seoul", "Yangcheon-gu");
  ASSERT_TRUE(via_alias.ok());
  ASSERT_TRUE(canonical.ok());
  EXPECT_EQ(*via_alias, *canonical);
}

TEST(AdminDbTest, FindCountyAnyStateAmbiguity) {
  const AdminDb& db = AdminDb::KoreanDistricts();
  // "Jung-gu" exists in Seoul, Busan, Daegu, Incheon, Daejeon, Ulsan.
  EXPECT_TRUE(db.FindCountyAnyState("Jung-gu").status().IsAlreadyExists());
  // "Uiwang-si" is unique.
  auto unique = db.FindCountyAnyState("Uiwang-si");
  ASSERT_TRUE(unique.ok());
  EXPECT_EQ(db.region(*unique).state, "Gyeonggi-do");
  EXPECT_TRUE(db.FindCountyAnyState("Gotham").status().IsNotFound());
}

TEST(AdminDbTest, RegionIdsAreDenseAndSelfConsistent) {
  const AdminDb& db = AdminDb::KoreanDistricts();
  for (size_t i = 0; i < db.size(); ++i) {
    const Region& region = db.region(static_cast<RegionId>(i));
    EXPECT_EQ(region.id, static_cast<RegionId>(i));
    EXPECT_TRUE(region.centroid.IsValid());
    EXPECT_GT(region.radius_km, 0.0);
    EXPECT_GT(region.safe_radius_km, 0.0);
    EXPECT_LE(region.safe_radius_km, region.radius_km + 1e-9);
    EXPECT_FALSE(region.state.empty());
    EXPECT_FALSE(region.county.empty());
  }
}

TEST(AdminDbTest, LocateCentroidReturnsOwnRegion) {
  const AdminDb& db = AdminDb::KoreanDistricts();
  for (size_t i = 0; i < db.size(); ++i) {
    auto id = static_cast<RegionId>(i);
    auto located = db.Locate(db.region(id).centroid);
    ASSERT_TRUE(located.ok()) << db.region(id).FullName();
    EXPECT_EQ(*located, id) << db.region(id).FullName();
  }
}

TEST(AdminDbTest, LocateRejectsOceanAndInvalid) {
  const AdminDb& db = AdminDb::KoreanDistricts();
  // Middle of the Pacific.
  EXPECT_TRUE(db.Locate({20.0, -150.0}).status().IsNotFound());
  EXPECT_TRUE(db.Locate({91.0, 0.0}).status().IsInvalidArgument());
}

TEST(AdminDbTest, SamplePointInLocatesBack) {
  const AdminDb& db = AdminDb::KoreanDistricts();
  Rng rng(99);
  // Property over every region: sampled activity points always reverse-
  // geocode to the region they were sampled from (the Voronoi-safe
  // radius guarantee the generator/analysis consistency rests on).
  for (size_t i = 0; i < db.size(); ++i) {
    auto id = static_cast<RegionId>(i);
    for (int draw = 0; draw < 10; ++draw) {
      LatLng p = db.SamplePointIn(id, rng);
      ASSERT_TRUE(p.IsValid());
      auto located = db.Locate(p);
      ASSERT_TRUE(located.ok());
      EXPECT_EQ(*located, id) << db.region(id).FullName();
    }
  }
}

TEST(AdminDbTest, HangulLookups) {
  const AdminDb& db = AdminDb::KoreanDistricts();
  // Static name tables.
  EXPECT_STREQ(AdminDb::HangulStateName("Seoul"), "서울");
  EXPECT_STREQ(AdminDb::HangulCountyName("Seoul", "Mapo-gu"), "마포구");
  EXPECT_EQ(AdminDb::HangulStateName("Atlantis"), nullptr);
  EXPECT_EQ(AdminDb::HangulCountyName("Busan", "Jung-gu"), nullptr);
  // Hangul county aliases resolve through FindCounty.
  auto via_hangul = db.FindCounty("Seoul", "마포구");
  auto canonical = db.FindCounty("Seoul", "Mapo-gu");
  ASSERT_TRUE(via_hangul.ok());
  ASSERT_TRUE(canonical.ok());
  EXPECT_EQ(*via_hangul, *canonical);
}

TEST(AdminDbTest, WorldCitiesBasics) {
  const AdminDb& db = AdminDb::WorldCities();
  EXPECT_GE(db.size(), 60u);
  auto nyc = db.FindCounty("New York", "New York");
  ASSERT_TRUE(nyc.ok());
  auto via_alias = db.FindCounty("New York", "NYC");
  ASSERT_TRUE(via_alias.ok());
  EXPECT_EQ(*nyc, *via_alias);
  auto gold_coast = db.FindCountyAnyState("Gold Coast");
  ASSERT_TRUE(gold_coast.ok());
  EXPECT_EQ(db.region(*gold_coast).country, "Australia");
}

TEST(AdminDbTest, StateCountyPairsUnique) {
  for (const AdminDb* db :
       {&AdminDb::KoreanDistricts(), &AdminDb::WorldCities()}) {
    std::set<std::string> seen;
    for (const Region& region : db->regions()) {
      EXPECT_TRUE(seen.insert(region.state + "|" + region.county).second)
          << "duplicate " << region.FullName();
    }
  }
}

TEST(AdminDbTest, CoverageContainsAllCentroids) {
  const AdminDb& db = AdminDb::KoreanDistricts();
  BoundingBox coverage = db.Coverage();
  for (const Region& region : db.regions()) {
    EXPECT_TRUE(coverage.Contains(region.centroid));
  }
  // Korea is roughly lat 33..38.6, lng 124.5..131.
  EXPECT_GT(coverage.min_lat, 32.0);
  EXPECT_LT(coverage.max_lat, 39.5);
}

}  // namespace
}  // namespace stir::geo
