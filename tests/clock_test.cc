#include "common/clock.h"

#include <gtest/gtest.h>

namespace stir {
namespace {

TEST(SimClockTest, AdvanceAndSet) {
  SimClock clock;
  EXPECT_EQ(clock.Now(), 0);
  clock.Advance(90);
  EXPECT_EQ(clock.Now(), 90);
  clock.Set(10);
  EXPECT_EQ(clock.Now(), 10);
  SimClock offset(100);
  EXPECT_EQ(offset.Now(), 100);
}

TEST(ClockTest, HourOfDay) {
  EXPECT_EQ(HourOfDay(0), 0);
  EXPECT_EQ(HourOfDay(3 * kSecondsPerHour + 59), 3);
  EXPECT_EQ(HourOfDay(kSecondsPerDay), 0);
  EXPECT_EQ(HourOfDay(kSecondsPerDay + 13 * kSecondsPerHour), 13);
  // Negative timestamps wrap correctly.
  EXPECT_EQ(HourOfDay(-1), 23);
}

TEST(ClockTest, DayIndex) {
  EXPECT_EQ(DayIndex(0), 0);
  EXPECT_EQ(DayIndex(kSecondsPerDay - 1), 0);
  EXPECT_EQ(DayIndex(kSecondsPerDay), 1);
  EXPECT_EQ(DayIndex(10 * kSecondsPerDay + 5), 10);
  EXPECT_EQ(DayIndex(-1), -1);
  EXPECT_EQ(DayIndex(-kSecondsPerDay), -1);
}

TEST(ClockTest, FormatSimTime) {
  EXPECT_EQ(FormatSimTime(0), "d0 00:00:00");
  EXPECT_EQ(FormatSimTime(kSecondsPerDay + kSecondsPerHour + 61),
            "d1 01:01:01");
}

}  // namespace
}  // namespace stir
