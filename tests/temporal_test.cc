#include "core/temporal.h"

#include <gtest/gtest.h>

#include "twitter/generator.h"

namespace stir::core {
namespace {

twitter::Dataset DatasetWithHours(const std::vector<int>& hours) {
  twitter::Dataset dataset;
  twitter::User user;
  user.id = 1;
  user.handle = "u1";
  user.total_tweets = static_cast<int64_t>(hours.size());
  dataset.AddUser(user);
  twitter::TweetId id = 1;
  for (int hour : hours) {
    twitter::Tweet tweet;
    tweet.id = id++;
    tweet.user = 1;
    tweet.time = hour * kSecondsPerHour + 120;
    tweet.text = "x";
    dataset.AddTweet(tweet);
  }
  return dataset;
}

TEST(TemporalTest, SharesSumToOneAndPeakTroughCorrect) {
  twitter::Dataset dataset = DatasetWithHours({9, 9, 9, 21, 21, 3});
  auto profile = ComputePostingProfile(dataset);
  ASSERT_TRUE(profile.ok());
  double total = 0.0;
  for (double p : profile->hour_share) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(profile->PeakHour(), 9);
  EXPECT_EQ(profile->tweet_count, 6);
  EXPECT_NEAR(profile->hour_share[21], 2.0 / 6.0, 1e-12);
}

TEST(TemporalTest, EmptyDatasetFails) {
  twitter::Dataset empty;
  EXPECT_TRUE(ComputePostingProfile(empty).status().IsInvalidArgument());
}

TEST(TemporalTest, EntropyBounds) {
  // Single-hour profile: zero entropy.
  auto concentrated =
      ComputePostingProfile(DatasetWithHours({5, 5, 5, 5}));
  ASSERT_TRUE(concentrated.ok());
  EXPECT_DOUBLE_EQ(concentrated->EntropyBits(), 0.0);
  // All 24 hours evenly: log2(24).
  std::vector<int> flat;
  for (int h = 0; h < 24; ++h) flat.push_back(h);
  auto uniform = ComputePostingProfile(DatasetWithHours(flat));
  ASSERT_TRUE(uniform.ok());
  EXPECT_NEAR(uniform->EntropyBits(), std::log2(24.0), 1e-12);
}

TEST(TemporalTest, UserProfileAndDistance) {
  twitter::Dataset dataset = DatasetWithHours({8, 8, 20});
  auto user_profile = ComputeUserPostingProfile(dataset, 1);
  ASSERT_TRUE(user_profile.ok());
  EXPECT_EQ(user_profile->tweet_count, 3);
  EXPECT_TRUE(
      ComputeUserPostingProfile(dataset, 99).status().IsNotFound());

  auto whole = ComputePostingProfile(dataset);
  ASSERT_TRUE(whole.ok());
  // Single-user dataset: per-user profile == corpus profile.
  EXPECT_DOUBLE_EQ(ProfileDistance(*user_profile, *whole), 0.0);

  auto other = ComputePostingProfile(DatasetWithHours({2, 2, 2}));
  ASSERT_TRUE(other.ok());
  EXPECT_DOUBLE_EQ(ProfileDistance(*whole, *other), 2.0);  // disjoint
}

TEST(TemporalTest, RecoverGeneratorDiurnalCycle) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  auto config = twitter::DatasetGenerator::KoreanConfig(0.05);
  config.plain_tweet_sample = 0.01;
  twitter::DatasetGenerator generator(&db, config);
  auto data = generator.Generate();
  auto profile = ComputePostingProfile(data.dataset);
  ASSERT_TRUE(profile.ok());
  // Evening peak, small-hours trough, clearly non-uniform.
  int peak = profile->PeakHour();
  EXPECT_GE(peak, 17);
  EXPECT_LE(peak, 23);
  int trough = profile->TroughHour();
  EXPECT_GE(trough, 1);
  EXPECT_LE(trough, 6);
  EXPECT_LT(profile->EntropyBits(), std::log2(24.0) - 0.1);
  std::string rendered = profile->ToString();
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 24);
}

}  // namespace
}  // namespace stir::core
