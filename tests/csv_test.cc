#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace stir {
namespace {

TEST(CsvTest, FormatPlainRow) {
  EXPECT_EQ(FormatCsvRow({"a", "b", "c"}), "a,b,c");
  EXPECT_EQ(FormatCsvRow({}), "");
  EXPECT_EQ(FormatCsvRow({""}), "");
}

TEST(CsvTest, QuotesFieldsWithSpecials) {
  EXPECT_EQ(FormatCsvRow({"a,b", "c"}), "\"a,b\",c");
  EXPECT_EQ(FormatCsvRow({"say \"hi\""}), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(FormatCsvRow({"line\nbreak"}), "\"line\nbreak\"");
}

TEST(CsvTest, ParsePlainRow) {
  auto row = ParseCsvRow("a,b,,d");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*row, (std::vector<std::string>{"a", "b", "", "d"}));
}

TEST(CsvTest, ParseQuotedRow) {
  auto row = ParseCsvRow("\"a,b\",\"say \"\"hi\"\"\"");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*row, (std::vector<std::string>{"a,b", "say \"hi\""}));
}

TEST(CsvTest, UnterminatedQuoteFails) {
  EXPECT_TRUE(ParseCsvRow("\"abc").status().IsInvalidArgument());
}

TEST(CsvTest, RoundTripArbitraryFields) {
  std::vector<std::string> fields = {"plain", "with,comma", "with\"quote",
                                     "", "tab\tinside"};
  auto parsed = ParseCsvRow(FormatCsvRow(fields));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, fields);
}

TEST(CsvTest, TsvDelimiterRoundTrip) {
  CsvOptions tsv;
  tsv.delimiter = '\t';
  std::vector<std::string> fields = {"a", "b\tc", "d,e"};
  auto parsed = ParseCsvRow(FormatCsvRow(fields, tsv), tsv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, fields);
}

TEST(CsvTest, ParseDocumentSkipsBlankLinesAndCr) {
  auto rows = ParseCsv("a,b\r\n\nc,d\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/stir_csv_test.csv";
  std::vector<std::vector<std::string>> rows = {{"h1", "h2"},
                                                {"v,1", "v\"2\""}};
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, rows);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_TRUE(
      ReadCsvFile("/nonexistent/dir/file.csv").status().IsIOError());
}

}  // namespace
}  // namespace stir
