#include "text/location_parser.h"

#include <gtest/gtest.h>

namespace stir::text {
namespace {

class LocationParserTest : public ::testing::Test {
 protected:
  LocationParserTest() : parser_(&geo::AdminDb::KoreanDistricts()) {}
  ParsedLocation Parse(const std::string& s) { return parser_.Parse(s); }
  const geo::AdminDb& db() { return parser_.db(); }
  LocationParser parser_;
};

TEST_F(LocationParserTest, WellDefinedStateCounty) {
  ParsedLocation p = Parse("Seoul Yangcheon-gu");
  ASSERT_EQ(p.quality, LocationQuality::kWellDefined);
  EXPECT_EQ(db().region(p.region).FullName(), "Seoul Yangcheon-gu");
}

TEST_F(LocationParserTest, CountyCommaStateForm) {
  ParsedLocation p = Parse("Yangcheon-gu, Seoul");
  ASSERT_EQ(p.quality, LocationQuality::kWellDefined);
  EXPECT_EQ(db().region(p.region).county, "Yangcheon-gu");
}

TEST_F(LocationParserTest, UniqueCountyAloneIsWellDefined) {
  ParsedLocation p = Parse("Uiwang-si");
  ASSERT_EQ(p.quality, LocationQuality::kWellDefined);
  EXPECT_EQ(db().region(p.region).state, "Gyeonggi-do");
}

TEST_F(LocationParserTest, AmbiguousCountyAlone) {
  ParsedLocation p = Parse("Jung-gu");
  EXPECT_EQ(p.quality, LocationQuality::kAmbiguous);
  EXPECT_EQ(p.candidates.size(), 6u);
}

TEST_F(LocationParserTest, StateDisambiguatesCounty) {
  ParsedLocation p = Parse("Busan Jung-gu");
  ASSERT_EQ(p.quality, LocationQuality::kWellDefined);
  EXPECT_EQ(db().region(p.region).FullName(), "Busan Jung-gu");
}

TEST_F(LocationParserTest, GpsCoordinatesResolve) {
  ParsedLocation p = Parse("37.517000, 126.866600");
  ASSERT_EQ(p.quality, LocationQuality::kWellDefined);
  EXPECT_TRUE(p.from_gps);
  EXPECT_EQ(db().region(p.region).county, "Yangcheon-gu");
  // Space-separated form too.
  EXPECT_EQ(Parse("35.1796 129.0756").quality,
            LocationQuality::kWellDefined);
}

TEST_F(LocationParserTest, GpsOutsideCoverageIsVague) {
  EXPECT_EQ(Parse("20.0, -150.0").quality, LocationQuality::kVague);
}

TEST_F(LocationParserTest, StateOnlyInsufficient) {
  EXPECT_EQ(Parse("Seoul").quality, LocationQuality::kInsufficient);
  EXPECT_EQ(Parse("Gyeonggi-do").quality, LocationQuality::kInsufficient);
}

TEST_F(LocationParserTest, CountryOnlyInsufficient) {
  EXPECT_EQ(Parse("Korea").quality, LocationQuality::kInsufficient);
  EXPECT_EQ(Parse("South Korea").quality, LocationQuality::kInsufficient);
  EXPECT_EQ(Parse("Seoul, Korea").quality, LocationQuality::kInsufficient);
}

TEST_F(LocationParserTest, VagueAndEmpty) {
  EXPECT_EQ(Parse("").quality, LocationQuality::kEmpty);
  EXPECT_EQ(Parse("   ").quality, LocationQuality::kEmpty);
  EXPECT_EQ(Parse("Earth").quality, LocationQuality::kVague);
  EXPECT_EQ(Parse("my home").quality, LocationQuality::kVague);
  EXPECT_EQ(Parse("darangland :)").quality, LocationQuality::kVague);
  EXPECT_EQ(Parse("404 not found").quality, LocationQuality::kVague);
}

TEST_F(LocationParserTest, TwoDistinctPlacesAreAmbiguous) {
  ParsedLocation p = Parse("Seoul Mapo-gu / Busan Haeundae-gu");
  ASSERT_EQ(p.quality, LocationQuality::kAmbiguous);
  EXPECT_EQ(p.candidates.size(), 2u);
}

TEST_F(LocationParserTest, ForeignPlusResolvablePieceResolves) {
  // "Gold Coast Australia" is invisible to the Korean gazetteer; the
  // other piece resolves uniquely, so the parser keeps it.
  ParsedLocation p = Parse("Gold Coast Australia / Seoul Mapo-gu");
  ASSERT_EQ(p.quality, LocationQuality::kWellDefined);
  EXPECT_EQ(db().region(p.region).county, "Mapo-gu");
}

TEST_F(LocationParserTest, MultiPieceAmbiguousCountyStaysAmbiguous) {
  ParsedLocation p = Parse("Gold Coast Australia / Jung-gu");
  EXPECT_EQ(p.quality, LocationQuality::kAmbiguous);
}

TEST_F(LocationParserTest, FuzzyTypoRecovery) {
  ParsedLocation p = Parse("Seoul Gangnm-gu");
  ASSERT_EQ(p.quality, LocationQuality::kWellDefined);
  EXPECT_TRUE(p.fuzzy);
  EXPECT_EQ(db().region(p.region).county, "Gangnam-gu");
}

TEST_F(LocationParserTest, CaseAndPunctuationInsensitive) {
  ParsedLocation p = Parse("  seoul,, MAPO-GU!  ");
  ASSERT_EQ(p.quality, LocationQuality::kWellDefined);
  EXPECT_EQ(db().region(p.region).county, "Mapo-gu");
}

TEST_F(LocationParserTest, HangulStateCountyParses) {
  // The paper's Fig. 3 shows Korean-script profile locations.
  ParsedLocation p = Parse("서울 마포구");
  ASSERT_EQ(p.quality, LocationQuality::kWellDefined);
  EXPECT_EQ(db().region(p.region).FullName(), "Seoul Mapo-gu");
}

TEST_F(LocationParserTest, HangulCountyAloneParses) {
  ParsedLocation p = Parse("양천구");
  ASSERT_EQ(p.quality, LocationQuality::kWellDefined);
  EXPECT_EQ(db().region(p.region).county, "Yangcheon-gu");
}

TEST_F(LocationParserTest, HangulStateAloneInsufficient) {
  EXPECT_EQ(Parse("서울").quality, LocationQuality::kInsufficient);
  EXPECT_EQ(Parse("경기도").quality, LocationQuality::kInsufficient);
}

TEST_F(LocationParserTest, MixedScriptParses) {
  ParsedLocation p = Parse("서울 Gangnam-gu");
  ASSERT_EQ(p.quality, LocationQuality::kWellDefined);
  EXPECT_EQ(db().region(p.region).county, "Gangnam-gu");
}

TEST_F(LocationParserTest, QualityToString) {
  EXPECT_STREQ(LocationQualityToString(LocationQuality::kWellDefined),
               "well-defined");
  EXPECT_STREQ(LocationQualityToString(LocationQuality::kVague), "vague");
}

// Property: every county in the gazetteer parses to itself when written
// as "State County" — the generator's kStateCounty style must always
// survive refinement.
class ParseAllCountiesTest : public ::testing::TestWithParam<int> {};

TEST_P(ParseAllCountiesTest, StateCountyFormAlwaysWellDefined) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  LocationParser parser(&db);
  int stride = GetParam();
  for (size_t i = 0; i < db.size(); i += static_cast<size_t>(stride)) {
    const geo::Region& region = db.region(static_cast<geo::RegionId>(i));
    ParsedLocation p = parser.Parse(region.state + " " + region.county);
    ASSERT_EQ(p.quality, LocationQuality::kWellDefined)
        << region.FullName();
    EXPECT_EQ(p.region, region.id) << region.FullName();
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, ParseAllCountiesTest, ::testing::Values(1));

}  // namespace
}  // namespace stir::text
