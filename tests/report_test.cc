#include "core/report.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/csv.h"
#include "common/string_util.h"
#include "twitter/generator.h"

namespace stir::core {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  ReportTest() : db_(geo::AdminDb::KoreanDistricts()) {
    twitter::DatasetGenerator generator(
        &db_, twitter::DatasetGenerator::KoreanConfig(0.05));
    data_ = generator.Generate();
    CorrelationStudy study(&db_);
    result_ = study.Run(data_.dataset);
  }

  const geo::AdminDb& db_;
  twitter::GeneratedData data_;
  StudyResult result_;
};

TEST_F(ReportTest, WritesThreeConsistentCsvs) {
  std::string dir = ::testing::TempDir();
  ASSERT_TRUE(WriteStudyReportCsv(result_, dir).ok());

  auto funnel = ReadCsvFile(dir + "/funnel.csv");
  ASSERT_TRUE(funnel.ok());
  ASSERT_EQ(funnel->size(), 11u);  // header + 10 stages
  EXPECT_EQ((*funnel)[0], (std::vector<std::string>{"stage", "value"}));
  EXPECT_EQ((*funnel)[1][1],
            StrFormat("%lld",
                      static_cast<long long>(result_.funnel.crawled_users)));

  auto groups = ReadCsvFile(dir + "/groups.csv");
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->size(), 1u + kNumTopKGroups);
  int64_t users_total = 0;
  for (size_t i = 1; i < groups->size(); ++i) {
    users_total += *ParseInt64((*groups)[i][1]);
  }
  EXPECT_EQ(users_total, result_.final_users);

  auto users = ReadCsvFile(dir + "/users.csv");
  ASSERT_TRUE(users.ok());
  EXPECT_EQ(users->size(), 1u + result_.groupings.size());
  // Per-user rows carry valid group names and positive GPS counts.
  for (size_t i = 1; i < users->size(); ++i) {
    const auto& row = (*users)[i];
    ASSERT_EQ(row.size(), 6u);
    EXPECT_GT(*ParseInt64(row[3]), 0);  // gps_tweets
  }

  for (const char* name : {"/funnel.csv", "/groups.csv", "/users.csv"}) {
    std::remove((dir + name).c_str());
  }
}

TEST_F(ReportTest, FailsOnMissingDirectory) {
  EXPECT_TRUE(WriteStudyReportCsv(result_, "/nonexistent/report/dir")
                  .IsIOError());
}

TEST_F(ReportTest, HistogramCoversAllFinalUsers) {
  std::string rendered = RenderGpsTweetHistogram(result_, 8);
  EXPECT_NE(rendered.find("GPS tweets per final user"), std::string::npos);
  // 8 bucket rows.
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 9);
}

}  // namespace
}  // namespace stir::core
