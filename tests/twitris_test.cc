#include "event/twitris.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace stir::event {
namespace {

class TwitrisTest : public ::testing::Test {
 protected:
  TwitrisTest() : db_(geo::AdminDb::KoreanDistricts()) {}

  void AddUser(twitter::UserId id, const std::string& location) {
    twitter::User user;
    user.id = id;
    user.handle = "u" + std::to_string(id);
    user.profile_location = location;
    user.total_tweets = 10;
    dataset_.AddUser(user);
  }

  void AddTweet(twitter::UserId user, SimTime time, const std::string& text,
                std::optional<geo::LatLng> gps = std::nullopt) {
    twitter::Tweet tweet;
    tweet.id = next_id_++;
    tweet.user = user;
    tweet.time = time;
    tweet.text = text;
    tweet.gps = gps;
    dataset_.AddTweet(tweet);
  }

  const geo::AdminDb& db_;
  twitter::Dataset dataset_;
  twitter::TweetId next_id_ = 1;
};

TEST_F(TwitrisTest, GroupsByDayAndState) {
  AddUser(1, "Seoul Mapo-gu");
  geo::LatLng seoul{37.5663, 126.9019};
  geo::LatLng busan{35.1631, 129.1636};
  for (int i = 0; i < 5; ++i) {
    AddTweet(1, 100 + i, "coffee morning subway", seoul);
    AddTweet(1, kSecondsPerDay + 100 + i, "beach festival fireworks", busan);
  }
  TwitrisOptions options;
  options.min_tweets_per_cell = 3;
  options.use_profile_fallback = false;
  TwitrisSummarizer summarizer(&db_, options);
  auto summaries = summarizer.Summarize(dataset_);
  ASSERT_TRUE(summaries.ok());
  ASSERT_EQ(summaries->size(), 2u);
  EXPECT_EQ((*summaries)[0].day, 0);
  EXPECT_EQ((*summaries)[0].state, "Seoul");
  EXPECT_EQ((*summaries)[1].day, 1);
  EXPECT_EQ((*summaries)[1].state, "Busan");
}

TEST_F(TwitrisTest, TopTermsAreDistinctive) {
  AddUser(1, "Seoul Mapo-gu");
  geo::LatLng seoul{37.5663, 126.9019};
  geo::LatLng busan{35.1631, 129.1636};
  for (int i = 0; i < 8; ++i) {
    AddTweet(1, 100 + i, "lunch traffic earthquake", seoul);
    AddTweet(1, 200 + i, "lunch traffic festival", busan);
  }
  TwitrisOptions options;
  options.top_k_terms = 1;
  options.use_profile_fallback = false;
  TwitrisSummarizer summarizer(&db_, options);
  auto summaries = summarizer.Summarize(dataset_);
  ASSERT_TRUE(summaries.ok());
  ASSERT_EQ(summaries->size(), 2u);
  // The shared background words lose to the cell-specific term.
  for (const auto& cell : *summaries) {
    ASSERT_EQ(cell.top_terms.size(), 1u);
    if (cell.state == "Seoul") {
      EXPECT_EQ(cell.top_terms[0].term, "earthquake");
    } else {
      EXPECT_EQ(cell.top_terms[0].term, "festival");
    }
  }
}

TEST_F(TwitrisTest, ProfileFallbackAssignsUnGeotaggedTweets) {
  AddUser(1, "Seoul Mapo-gu");
  AddUser(2, "Earth");  // unparseable: tweets can never be assigned
  for (int i = 0; i < 5; ++i) {
    AddTweet(1, 100 + i, "morning coffee subway");  // no GPS
    AddTweet(2, 100 + i, "lost tweets");            // no GPS, no profile
  }
  TwitrisOptions options;
  options.min_tweets_per_cell = 1;
  TwitrisSummarizer summarizer(&db_, options);
  auto summaries = summarizer.Summarize(dataset_);
  ASSERT_TRUE(summaries.ok());
  ASSERT_EQ(summaries->size(), 1u);
  EXPECT_EQ((*summaries)[0].state, "Seoul");
  EXPECT_EQ((*summaries)[0].tweet_count, 5);
}

TEST_F(TwitrisTest, GpsBeatsProfileWhenBothAvailable) {
  AddUser(1, "Seoul Mapo-gu");
  geo::LatLng busan{35.1631, 129.1636};
  for (int i = 0; i < 4; ++i) {
    AddTweet(1, 100 + i, "haeundae beach", busan);  // GPS says Busan
  }
  TwitrisOptions options;
  options.min_tweets_per_cell = 1;
  TwitrisSummarizer summarizer(&db_, options);
  auto summaries = summarizer.Summarize(dataset_);
  ASSERT_TRUE(summaries.ok());
  ASSERT_EQ(summaries->size(), 1u);
  EXPECT_EQ((*summaries)[0].state, "Busan");
}

TEST_F(TwitrisTest, MinTweetsPerCellFilters) {
  AddUser(1, "Seoul Mapo-gu");
  geo::LatLng seoul{37.5663, 126.9019};
  AddTweet(1, 100, "lonely tweet", seoul);
  TwitrisOptions options;
  options.min_tweets_per_cell = 3;
  options.use_profile_fallback = false;
  TwitrisSummarizer summarizer(&db_, options);
  auto summaries = summarizer.Summarize(dataset_);
  ASSERT_TRUE(summaries.ok());
  EXPECT_TRUE(summaries->empty());
}

}  // namespace
}  // namespace stir::event
