// RequestScheduler + Server front-ends: micro-batching, backpressure,
// graceful drain, and the serving determinism guarantee. The hammer
// tests are the TSan targets — many clients against one scheduler, with
// the invariant that no response is ever lost or duplicated.

#include "serve/scheduler.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "core/study.h"
#include "geo/admin_db.h"
#include "gtest/gtest.h"
#include "net/epoll_server.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "serve/study_index.h"
#include "twitter/generator.h"

namespace stir::serve {
namespace {

using geo::AdminDb;
using obs::JsonParse;
using obs::JsonValue;

class ServeSchedulerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const AdminDb& db = AdminDb::KoreanDistricts();
    twitter::DatasetGenerator generator(
        &db, twitter::DatasetGenerator::KoreanConfig(0.05));
    twitter::GeneratedData data = generator.Generate();
    core::CorrelationStudy study(&db);
    core::StudyResult result = study.Run(data.dataset);
    index_ = new StudyIndex(StudyIndex::Build(result, db));
    ASSERT_FALSE(index_->empty());
  }
  static void TearDownTestSuite() {
    delete index_;
    index_ = nullptr;
  }

  /// A request stream cycling through every method plus malformed lines.
  static std::vector<std::string> MixedStream(int64_t count,
                                              int64_t id_base = 0) {
    std::vector<std::string> lines;
    lines.reserve(count);
    for (int64_t i = 0; i < count; ++i) {
      int64_t id = id_base + i;
      std::string line;
      switch (i % 6) {
        case 0:
          line = "{\"v\":1,\"id\":" + std::to_string(id) +
                 ",\"method\":\"topk_summary\"}";
          break;
        case 1:
          line = "{\"v\":1,\"id\":" + std::to_string(id) +
                 ",\"method\":\"lookup_user\",\"params\":{\"user\":" +
                 std::to_string(
                     index_->users()[i % index_->user_count()].user) +
                 "}}";
          break;
        case 2:
          line = "{\"v\":1,\"id\":" + std::to_string(id) +
                 ",\"method\":\"lookup_user\",\"params\":{\"user\":999999}}";
          break;
        case 3:
          line = "{\"v\":1,\"id\":" + std::to_string(id) +
                 ",\"method\":\"server_stats\"}";
          break;
        case 4:
          line = "{\"v\":1,\"id\":" + std::to_string(id) +
                 ",\"method\":\"lookup_district\",\"params\":"
                 "{\"state\":\"Seoul\",\"county\":\"Gangnam-gu\"}}";
          break;
        case 5:
          line = "this line is not json (" + std::to_string(id) + ")";
          break;
      }
      lines.push_back(std::move(line));
    }
    return lines;
  }

  static StudyIndex* index_;
};

StudyIndex* ServeSchedulerTest::index_ = nullptr;

int64_t ResponseId(const std::string& response) {
  JsonValue root;
  if (!JsonParse(response, &root)) return -2;
  const JsonValue* id = root.Find("id");
  if (id == nullptr) return -2;
  if (id->kind == JsonValue::Kind::kNull) return -1;
  return id->integer;
}

std::string ResponseErrorCode(const std::string& response) {
  JsonValue root;
  if (!JsonParse(response, &root)) return "<unparseable>";
  const JsonValue* error = root.Find("error");
  if (error == nullptr) return "";
  return error->Find("code")->string;
}

// ---------------------------------------------------------------------------
// Multi-client hammer: the TSan target.

TEST_F(ServeSchedulerTest, HammerNoLostOrDuplicatedResponses) {
  constexpr int kClients = 8;
  constexpr int64_t kPerClient = 200;
  ServeOptions options;
  options.workers = 4;
  options.max_batch_size = 8;
  options.queue_capacity = 10'000;  // Wide enough that nothing is rejected.
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  RequestScheduler scheduler(index_, options);

  std::atomic<int64_t> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Non-overlapping id ranges per client: a duplicated or crossed
      // response would surface as an id mismatch in *some* client.
      std::vector<std::string> lines = MixedStream(kPerClient, c * 100'000);
      std::vector<std::future<std::string>> futures;
      futures.reserve(lines.size());
      for (const std::string& line : lines) {
        futures.push_back(scheduler.SubmitLine(line));
      }
      for (int64_t i = 0; i < kPerClient; ++i) {
        std::string response = futures[i].get();
        int64_t expected = c * 100'000 + i;
        // Malformed lines (i % 6 == 5) answer with id:null.
        if (i % 6 == 5) expected = -1;
        if (ResponseId(response) != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  scheduler.Drain();

  EXPECT_EQ(mismatches.load(), 0);
  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.received, kClients * kPerClient);
  EXPECT_EQ(stats.rejected_overload, 0);
  EXPECT_EQ(stats.rejected_shutdown, 0);
  // The admission-ordered partition is exact.
  EXPECT_EQ(stats.received, stats.admitted + stats.stats_served +
                                stats.parse_errors + stats.rejected_overload +
                                stats.rejected_shutdown);
  int64_t method_total = 0;
  for (int m = 0; m < kNumMethods; ++m) method_total += stats.method_counts[m];
  EXPECT_EQ(method_total, stats.admitted + stats.stats_served);
  // The metrics mirror agrees with every response delivered exactly once.
  obs::MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_EQ(snapshot.counter("serve.responses"), stats.received);
  EXPECT_EQ(snapshot.counter("serve.requests.received"), stats.received);
  EXPECT_EQ(snapshot.gauge("serve.queue_depth"), 0);
}

// ---------------------------------------------------------------------------
// Determinism: identical streams -> byte-identical responses, any workers.

TEST_F(ServeSchedulerTest, ByteIdenticalAcrossWorkerCounts) {
  std::vector<std::string> lines = MixedStream(300);
  common::FaultInjectorOptions fault_options;
  fault_options.error_rate = 0.2;
  fault_options.seed = 7;

  auto run = [&](int workers) {
    ServeOptions options;
    options.workers = workers;
    options.max_batch_size = 16;
    common::FaultInjector injector(fault_options);
    options.fault_injector = &injector;
    RequestScheduler scheduler(index_, options);
    std::vector<std::future<std::string>> futures;
    futures.reserve(lines.size());
    for (const std::string& line : lines) {
      futures.push_back(scheduler.SubmitLine(line));
    }
    std::string all;
    for (std::future<std::string>& future : futures) {
      all += future.get();
      all += '\n';
    }
    scheduler.Drain();
    return all;
  };

  std::string serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
  // The injected faults actually fired (and deterministically so).
  EXPECT_NE(serial.find("\"unavailable\""), std::string::npos);
}

TEST_F(ServeSchedulerTest, ServeStreamIsDeterministic) {
  std::vector<std::string> lines = MixedStream(120);
  std::string input;
  for (const std::string& line : lines) {
    input += line;
    input += '\n';
  }
  auto run = [&](int workers) {
    ServeOptions options;
    options.workers = workers;
    Server server(index_, options);
    std::istringstream in(input);
    std::ostringstream out;
    EXPECT_EQ(server.ServeStream(in, out),
              static_cast<int64_t>(lines.size()));
    server.Drain();
    return out.str();
  };
  std::string serial = run(1);
  EXPECT_EQ(run(4), serial);
}

// ---------------------------------------------------------------------------
// Backpressure and shutdown.

TEST_F(ServeSchedulerTest, OverloadIsExplicitRejectionNeverHang) {
  ServeOptions options;
  options.workers = 1;
  options.queue_capacity = 4;
  // A large batch target plus a long linger parks the single worker, so
  // the queue deterministically fills while we submit.
  options.max_batch_size = 1024;
  options.batch_linger_us = 30'000'000;
  RequestScheduler scheduler(index_, options);

  constexpr int64_t kTotal = 50;
  std::vector<std::future<std::string>> futures;
  for (int64_t i = 0; i < kTotal; ++i) {
    futures.push_back(scheduler.SubmitLine(
        "{\"v\":1,\"id\":" + std::to_string(i) +
        ",\"method\":\"topk_summary\"}"));
  }
  // Drain wakes the lingering worker; every future must still be
  // answered (the graceful-drain side of the contract).
  scheduler.Drain();

  int64_t overloaded = 0;
  int64_t served = 0;
  for (std::future<std::string>& future : futures) {
    std::string code = ResponseErrorCode(future.get());
    if (code == "overloaded") {
      ++overloaded;
    } else if (code.empty()) {
      ++served;
    } else {
      ADD_FAILURE() << "unexpected error code " << code;
    }
  }
  SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.admitted, options.queue_capacity);
  EXPECT_EQ(served, stats.admitted);
  EXPECT_EQ(overloaded, kTotal - stats.admitted);
  EXPECT_EQ(stats.rejected_overload, overloaded);
}

TEST_F(ServeSchedulerTest, DrainRejectsLateRequestsAndIsIdempotent) {
  ServeOptions options;
  options.workers = 2;
  RequestScheduler scheduler(index_, options);
  std::future<std::string> before = scheduler.SubmitLine(
      "{\"v\":1,\"id\":1,\"method\":\"topk_summary\"}");
  scheduler.Drain();
  scheduler.Drain();  // Idempotent.
  EXPECT_EQ(ResponseErrorCode(before.get()), "");
  std::future<std::string> after = scheduler.SubmitLine(
      "{\"v\":1,\"id\":2,\"method\":\"topk_summary\"}");
  EXPECT_EQ(ResponseErrorCode(after.get()), "shutting_down");
  EXPECT_TRUE(scheduler.draining());
  EXPECT_EQ(scheduler.stats().rejected_shutdown, 1);
}

TEST_F(ServeSchedulerTest, StatsRequestIsAnsweredAtAdmission) {
  ServeOptions options;
  options.workers = 1;
  RequestScheduler scheduler(index_, options);
  std::future<std::string> stats_future = scheduler.SubmitLine(
      "{\"v\":1,\"id\":0,\"method\":\"server_stats\"}");
  // Ready immediately — no batch wait.
  EXPECT_EQ(stats_future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  JsonValue root;
  ASSERT_TRUE(JsonParse(stats_future.get(), &root));
  const JsonValue* counters = root.Find("result")->Find("counters");
  ASSERT_NE(counters, nullptr);
  // Admission-ordered: the stats request sees itself as received.
  EXPECT_EQ(counters->Find("received")->integer, 1);
  EXPECT_EQ(counters->Find("stats_served")->integer, 1);
  EXPECT_EQ(root.Find("result")->Find("index")->Find("users")->integer,
            static_cast<int64_t>(index_->user_count()));
  scheduler.Drain();
}

// ---------------------------------------------------------------------------
// TCP front-end: multi-connection round trip over loopback (the epoll
// event loop; the full adversarial battery lives in net_server_test).

TEST_F(ServeSchedulerTest, TcpMultiClientRoundTrip) {
  ServeOptions options;
  options.workers = 4;
  Server server(index_, options);
  net::NetOptions net_options;
  net_options.max_pipeline = 16;
  net::EpollServer tcp(&server, net_options);
  ASSERT_TRUE(tcp.Listen(0).ok()) << "cannot bind loopback";
  ASSERT_GT(tcp.port(), 0);
  ASSERT_TRUE(tcp.Start().ok());

  constexpr int kClients = 4;
  constexpr int64_t kPerClient = 50;
  std::atomic<int64_t> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) {
        failures.fetch_add(1000);
        return;
      }
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(tcp.port());
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0) {
        failures.fetch_add(1000);
        ::close(fd);
        return;
      }
      std::string batch;
      for (int64_t i = 0; i < kPerClient; ++i) {
        batch += "{\"v\":1,\"id\":" + std::to_string(c * 1000 + i) +
                 ",\"method\":\"topk_summary\"}\n";
      }
      size_t sent = 0;
      while (sent < batch.size()) {
        ssize_t n = ::send(fd, batch.data() + sent, batch.size() - sent,
                           MSG_NOSIGNAL);
        if (n <= 0) {
          failures.fetch_add(1000);
          ::close(fd);
          return;
        }
        sent += static_cast<size_t>(n);
      }
      ::shutdown(fd, SHUT_WR);
      std::string received;
      char buf[4096];
      for (;;) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        received.append(buf, static_cast<size_t>(n));
      }
      ::close(fd);
      // Responses must come back in request order, one per request.
      int64_t next = 0;
      size_t start = 0;
      while (start < received.size()) {
        size_t newline = received.find('\n', start);
        if (newline == std::string::npos) break;
        int64_t id =
            ResponseId(received.substr(start, newline - start));
        if (id != c * 1000 + next) {
          failures.fetch_add(1);
        }
        ++next;
        start = newline + 1;
      }
      if (next != kPerClient) failures.fetch_add(1);
    });
  }
  for (std::thread& t : clients) t.join();
  tcp.Stop();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(tcp.stats().accepted, kClients);
  EXPECT_EQ(server.stats().received, kClients * kPerClient);
}

}  // namespace
}  // namespace stir::serve
