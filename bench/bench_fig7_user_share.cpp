// Fig. 7 (paper §IV): number (share) of users per Top-k group. Paper
// claims: Top-1+Top-2 hold "more than 40%" of users — "nearly half of
// all users post tweets in their hometown" — while ~30% of users have no
// tweet at all from their profile district (None).

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace stir;
  double scale = bench::ScaleFromArgs(argc, argv, 1.0);
  bench::PrintHeader("Fig. 7 — number of users in each group",
                     "Top-1 dominant; Top-1+Top-2 ~ half; None ~ 30%");
  bench::StudyRun run = bench::RunKoreanStudy(scale);
  const core::StudyResult& result = run.result;

  std::printf("%-8s %8s %9s   histogram\n", "group", "users", "share");
  for (int g = 0; g < core::kNumTopKGroups; ++g) {
    int bar = static_cast<int>(result.groups[g].user_share * 100.0);
    std::printf("%-8s %8lld %8.2f%%   %s\n",
                core::TopKGroupToString(static_cast<core::TopKGroup>(g)),
                static_cast<long long>(result.groups[g].users),
                result.groups[g].user_share * 100.0,
                std::string(static_cast<size_t>(bar), '#').c_str());
  }
  std::printf("final users: %lld\n\n",
              static_cast<long long>(result.final_users));

  const core::GroupStats* groups = result.groups;
  double top12 = groups[0].user_share + groups[1].user_share;
  double none = groups[static_cast<int>(core::TopKGroup::kNone)].user_share;
  bool ok = true;
  std::printf("shape checks:\n");
  ok &= bench::Check(groups[0].user_share > 0.30,
                     "Top-1 is the dominant group (>30%)");
  ok &= bench::Check(top12 > 0.42 && top12 < 0.68,
                     "Top-1 + Top-2 ~ half of users (paper: 'more than "
                     "40%' / 'nearly half')");
  ok &= bench::Check(none > 0.22 && none < 0.40,
                     "None ~ 30% (paper: 'about 30% ... do not have any "
                     "tweets in their locations')");
  ok &= bench::Check(groups[1].user_share > groups[2].user_share &&
                         groups[2].user_share > groups[3].user_share,
                     "monotone decline Top-2 > Top-3 > Top-4");
  return ok ? 0 : 1;
}
