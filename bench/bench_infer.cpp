// bench_infer: accuracy + latency gate for the stir::infer subsystem
// (DESIGN.md §16).
//
// Generates a Korean-preset corpus (default scale 0.2, about 10.4k
// users) with the diurnal signal enabled (night_home_bias 0.65 — night-
// window tweets are posted from home with that probability), infers
// every user's home district from tweet evidence alone, and scores the
// three strategies against the generator's ground truth. The gates:
//
//   - the diurnal strategy reaches >= 0.80 accuracy@district on the
//     GPS-rich slice (users with >= 5 located GPS tweets), and
//   - it beats plain spatial clustering on the same seed (strictly more
//     correct GPS-rich predictions), because up-weighting night tweets
//     recovers homes that daytime activity (commuting) drowns out;
//
// then drives `infer_user` through the in-process serve front end with
// pipelined clients and gates p99 latency. --json writes the combined
// accuracy + latency snapshot (checked in as BENCH_infer.json).
//
// Usage: bench_infer [scale] [--json <path>] [--clients N] [--requests N]
//                    [--night-home-bias P]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "infer/eval.h"
#include "infer/home_inferrer.h"
#include "infer/inference_index.h"
#include "io/truth_sidecar.h"
#include "serve/server.h"
#include "serve/study_index.h"

namespace stir::bench {
namespace {

struct Args {
  double scale = 0.2;  ///< ~10.4k users: the accuracy-gate corpus size.
  std::string json_path;
  int clients = 4;
  int requests_per_client = 4000;
  double night_home_bias = 0.65;
};

bool ParseBenchArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--json") {
      const char* value = next();
      if (value == nullptr) return false;
      args->json_path = value;
    } else if (arg == "--clients") {
      const char* value = next();
      if (value == nullptr) return false;
      args->clients = std::max(1, std::atoi(value));
    } else if (arg == "--requests") {
      const char* value = next();
      if (value == nullptr) return false;
      args->requests_per_client = std::max(1, std::atoi(value));
    } else if (arg == "--night-home-bias") {
      const char* value = next();
      if (value == nullptr) return false;
      args->night_home_bias = std::atof(value);
    } else if (!arg.empty() && arg[0] != '-') {
      double scale = std::atof(argv[i]);
      if (scale > 0.0) args->scale = scale;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

/// The in-memory equivalent of the ground-truth sidecar: one name-keyed
/// record per generated user, resolved through the generator's own
/// gazetteer (exactly what GenerateToCorpus streams into the sidecar).
std::vector<io::TruthRecord> TruthFromGenerated(
    const twitter::GroundTruth& truth, const geo::AdminDb& db) {
  std::vector<io::TruthRecord> records;
  records.reserve(truth.mobility.size());
  for (const auto& [user, profile] : truth.mobility) {
    io::TruthRecord record;
    record.user = user;
    record.archetype = twitter::ArchetypeToString(profile.archetype);
    const geo::Region& home = db.region(profile.home);
    record.home_state = home.state;
    record.home_county = home.county;
    const geo::Region& claimed = db.region(profile.claimed);
    record.claimed_state = claimed.state;
    record.claimed_county = claimed.county;
    records.push_back(std::move(record));
  }
  return records;
}

/// A deterministic per-client infer_user script over users that actually
/// have evidence, mixing the default (diurnal) strategy with explicit
/// spatial/text requests the way a consumer sweeping strategies would.
std::vector<std::string> BuildInferScript(const infer::InferenceIndex& index,
                                          int client, int count) {
  std::vector<std::string> script;
  script.reserve(static_cast<size_t>(count));
  Rng rng(2000 + client);
  const auto& users = index.users();
  const int64_t id_base = static_cast<int64_t>(client) * 1'000'000;
  for (int i = 0; i < count; ++i) {
    const auto& evidence = users[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(users.size()) - 1))];
    const int64_t id = id_base + i;
    const int64_t roll = rng.UniformInt(0, 99);
    if (roll < 70) {
      script.push_back(StrFormat(
          "{\"v\":1,\"id\":%lld,\"method\":\"infer_user\","
          "\"params\":{\"user\":%lld}}",
          static_cast<long long>(id),
          static_cast<long long>(evidence.user)));
    } else {
      const char* strategy = roll < 90 ? "spatial" : "text";
      script.push_back(StrFormat(
          "{\"v\":1,\"id\":%lld,\"method\":\"infer_user\","
          "\"params\":{\"user\":%lld,\"strategy\":\"%s\"}}",
          static_cast<long long>(id),
          static_cast<long long>(evidence.user), strategy));
    }
  }
  return script;
}

struct InferLoadResult {
  double seconds = 0.0;
  int64_t requests = 0;
  int64_t decided = 0;    ///< "ok":true responses with a district.
  int64_t abstained = 0;  ///< Typed `low_confidence` envelopes.
  int64_t errors = 0;     ///< Anything else (should be zero).
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Pipelined client threads against the in-process server; both decided
/// answers and low_confidence abstentions are successful outcomes and
/// both enter the latency sample (a client pays for the abstention too).
InferLoadResult RunInferLoad(
    serve::Server& server,
    const std::vector<std::vector<std::string>>& scripts, size_t window) {
  using Clock = std::chrono::steady_clock;
  struct Inflight {
    std::future<std::string> future;
    Clock::time_point submitted;
  };
  const size_t clients = scripts.size();
  std::vector<std::vector<int64_t>> latencies(clients);
  std::vector<int64_t> decided(clients, 0);
  std::vector<int64_t> abstained(clients, 0);
  std::vector<int64_t> errors(clients, 0);
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      auto& mine = latencies[c];
      mine.reserve(scripts[c].size());
      std::deque<Inflight> inflight;
      auto drain_one = [&] {
        std::string response = inflight.front().future.get();
        mine.push_back(std::chrono::duration_cast<std::chrono::microseconds>(
                           Clock::now() - inflight.front().submitted)
                           .count());
        if (response.find("\"ok\":true") != std::string::npos) {
          ++decided[c];
        } else if (response.find("\"code\":\"low_confidence\"") !=
                   std::string::npos) {
          ++abstained[c];
        } else {
          ++errors[c];
        }
        inflight.pop_front();
      };
      for (const std::string& line : scripts[c]) {
        if (inflight.size() >= window) drain_one();
        inflight.push_back({server.SubmitLine(line), Clock::now()});
      }
      while (!inflight.empty()) drain_one();
    });
  }
  while (ready.load() < static_cast<int>(clients)) {
    std::this_thread::yield();
  }
  const auto start = Clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  const auto stop = Clock::now();

  InferLoadResult result;
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(stop - start)
          .count();
  std::vector<int64_t> all;
  for (size_t c = 0; c < clients; ++c) {
    result.requests += static_cast<int64_t>(scripts[c].size());
    result.decided += decided[c];
    result.abstained += abstained[c];
    result.errors += errors[c];
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
  }
  std::sort(all.begin(), all.end());
  if (!all.empty()) {
    result.p50_us = static_cast<double>(all[all.size() / 2]);
    result.p99_us = static_cast<double>(all[(all.size() * 99) / 100]);
  }
  return result;
}

BenchJsonEntry AccuracyEntry(const infer::StrategyEval& eval,
                             double seconds) {
  BenchJsonEntry entry;
  entry.name = StrFormat("infer/accuracy/strategy:%s",
                         infer::StrategyToString(eval.strategy));
  entry.iterations = eval.users;
  entry.ns_per_op =
      eval.users > 0 ? seconds * 1e9 / static_cast<double>(eval.users) : 0.0;
  entry.extra = {{"decided", static_cast<double>(eval.decided)},
                 {"abstained", static_cast<double>(eval.abstained)},
                 {"gps_rich_users", static_cast<double>(eval.gps_rich_users)}};
  entry.accuracy = {
      {"accuracy_district", eval.AccuracyDistrict()},
      {"accuracy_province", eval.AccuracyProvince()},
      {"gps_rich_accuracy_district", eval.GpsRichAccuracyDistrict()},
      {"gps_rich_accuracy_province", eval.GpsRichAccuracyProvince()},
      {"abstain_rate", eval.AbstainRate()}};
  return entry;
}

int Main(int argc, char** argv) {
  Args args;
  if (!ParseBenchArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: bench_infer [scale] [--json <path>] [--clients N] "
                 "[--requests N] [--night-home-bias P]\n");
    return 2;
  }
  PrintHeader("bench_infer — home-location inference accuracy + latency",
              "Tweet-evidence-only home prediction scored against "
              "generator ground truth, plus infer_user serving latency "
              "(DESIGN.md section 16).");

  std::printf("generating corpus (Korean preset, scale %.2f, "
              "night_home_bias %.2f)...\n",
              args.scale, args.night_home_bias);
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  twitter::DatasetGeneratorOptions options =
      twitter::DatasetGenerator::KoreanConfig(args.scale);
  options.mobility.night_home_bias = args.night_home_bias;
  twitter::DatasetGenerator generator(&db, options);
  twitter::GeneratedData data = generator.Generate();
  const std::vector<io::TruthRecord> truth =
      TruthFromGenerated(data.truth, db);

  const auto build_start = std::chrono::steady_clock::now();
  infer::InferenceIndex infer_index =
      infer::InferenceIndex::Build(data.dataset, db);
  const double build_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - build_start)
          .count();
  std::printf("dataset users=%zu  evidence index: %zu users, %lld bytes, "
              "built in %.3fs\n\n",
              data.dataset.users().size(), infer_index.user_count(),
              static_cast<long long>(infer_index.MemoryBytes()),
              build_seconds);

  // --- Accuracy gates ----------------------------------------------------
  infer::InferParams params;
  std::vector<infer::StrategyEval> evals;
  std::vector<BenchJsonEntry> json_entries;
  for (int s = 0; s < infer::kNumStrategies; ++s) {
    const auto eval_start = std::chrono::steady_clock::now();
    evals.push_back(infer::EvaluateStrategy(
        infer_index, truth, static_cast<infer::Strategy>(s), params));
    const double eval_seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - eval_start)
            .count();
    json_entries.push_back(AccuracyEntry(evals.back(), eval_seconds));
  }
  std::printf("%s\n", infer::RenderEvalReport(evals).c_str());

  const infer::StrategyEval& spatial = evals[0];
  const infer::StrategyEval& diurnal = evals[1];
  const infer::StrategyEval& text = evals[2];
  bool ok = true;
  ok &= Check(diurnal.gps_rich_users >= 100 || args.scale < 0.2,
              "GPS-rich slice is large enough to gate on (>= 100 users)");
  ok &= Check(diurnal.GpsRichAccuracyDistrict() >= 0.80,
              "diurnal strategy reaches 0.80 accuracy@district on the "
              "GPS-rich slice");
  ok &= Check(diurnal.gps_rich_correct_district >
                  spatial.gps_rich_correct_district,
              "diurnal beats plain spatial clustering on the same seed "
              "(more correct GPS-rich homes)");
  ok &= Check(diurnal.AccuracyProvince() >= diurnal.AccuracyDistrict(),
              "province accuracy dominates district accuracy (sanity)");
  ok &= Check(text.decided > 0 && text.AccuracyProvince() >= 0.5,
              "the text fallback decides some users at usable province "
              "accuracy");

  // --- infer_user serving latency ----------------------------------------
  std::printf("\ninfer_user serving latency (%d clients, %d requests "
              "each):\n",
              args.clients, args.requests_per_client);
  core::CorrelationStudy study(&db);
  core::StudyResult study_result = study.Run(data.dataset);
  serve::StudyIndex study_index =
      serve::StudyIndex::Build(study_result, db);
  serve::ServeOptions serve_options;
  serve_options.workers = 4;
  serve_options.max_batch_size = 16;
  serve_options.batch_linger_us = 200;
  serve_options.queue_capacity = 4096;
  serve_options.infer_index = &infer_index;
  serve::Server server(&study_index, serve_options);

  std::vector<std::vector<std::string>> scripts;
  for (int c = 0; c < args.clients; ++c) {
    scripts.push_back(
        BuildInferScript(infer_index, c, args.requests_per_client));
  }
  InferLoadResult load = RunInferLoad(server, scripts, /*window=*/64);
  server.Drain();
  std::printf("  requests=%lld decided=%lld abstained=%lld req/s=%.0f "
              "p50_us=%.0f p99_us=%.0f\n",
              static_cast<long long>(load.requests),
              static_cast<long long>(load.decided),
              static_cast<long long>(load.abstained),
              static_cast<double>(load.requests) / load.seconds, load.p50_us,
              load.p99_us);
  ok &= Check(load.errors == 0,
              "every infer_user response is decided or the typed "
              "low_confidence envelope");
  ok &= Check(load.decided > 0 && load.abstained > 0,
              "the load exercises both decided and abstained outcomes");
  // The latency gate: an inference lookup is an O(evidence) argmax over
  // a pinned immutable index — p99 must stay in interactive territory
  // even with pipelined load and batching linger.
  ok &= Check(load.p99_us <= 10'000.0,
              "infer_user p99 stays at or under 10 ms under load");

  BenchJsonEntry latency_entry;
  latency_entry.name = "infer/latency/infer_user";
  latency_entry.iterations = load.requests;
  latency_entry.ns_per_op =
      load.seconds * 1e9 / static_cast<double>(load.requests);
  latency_entry.extra = {
      {"requests_per_second",
       static_cast<double>(load.requests) / load.seconds},
      {"p50_us", load.p50_us},
      {"p99_us", load.p99_us},
      {"decided", static_cast<double>(load.decided)},
      {"abstained", static_cast<double>(load.abstained)}};
  latency_entry.accuracy = {
      {"gps_rich_accuracy_district", diurnal.GpsRichAccuracyDistrict()},
      {"abstain_rate", diurnal.AbstainRate()}};
  json_entries.push_back(std::move(latency_entry));

  if (!args.json_path.empty()) {
    if (WriteBenchJson(args.json_path, json_entries)) {
      std::printf("\nwrote %s\n", args.json_path.c_str());
    } else {
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace stir::bench

int main(int argc, char** argv) { return stir::bench::Main(argc, argv); }
