// Data-collection funnel (paper §III.B + slide 1): crawled users ->
// well-defined profile locations -> GPS-tagged tweets -> final study
// sample. The paper's absolute numbers (digits partially lost to OCR;
// see EXPERIMENTS.md): 52,200 crawled; ~30,000 well-defined; ~11.1M
// tweets; ~2x,xxx GPS tweets; ~1,0xx final users.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace stir;
  double scale = bench::ScaleFromArgs(argc, argv, 1.0);
  bench::PrintHeader("Funnel — §III.B refinement pipeline",
                     "paper-reported vs measured at the same crawl scale");
  bench::StudyRun run = bench::RunKoreanStudy(scale);
  const core::FunnelStats& funnel = run.result.funnel;

  auto scaled = [&](double paper_value) { return paper_value * scale; };
  std::printf("%-28s %14s %14s\n", "stage", "paper(@scale)", "measured");
  std::printf("%-28s %14.0f %14lld\n", "crawled users", scaled(52200),
              static_cast<long long>(funnel.crawled_users));
  std::printf("%-28s %14.0f %14lld\n", "well-defined profiles",
              scaled(30000),
              static_cast<long long>(funnel.well_defined_users));
  std::printf("%-28s %14.0f %14lld\n", "total tweets", scaled(11139920),
              static_cast<long long>(funnel.total_tweets));
  std::printf("%-28s %14s %14lld\n", "GPS-tagged tweets", "~2x,xxx*scale",
              static_cast<long long>(funnel.gps_tweets));
  std::printf("%-28s %14.0f %14lld\n", "final users", scaled(1046),
              static_cast<long long>(funnel.final_users));
  std::printf("\ncrawl cost: %lld follower-list requests, %.1f simulated "
              "hours\n\n",
              static_cast<long long>(run.data.crawl_requests),
              static_cast<double>(run.data.crawl_elapsed_seconds) / 3600.0);

  double crawled = static_cast<double>(funnel.crawled_users);
  bool ok = true;
  std::printf("shape checks:\n");
  ok &= bench::Check(
      funnel.well_defined_users > 0.50 * crawled &&
          funnel.well_defined_users < 0.70 * crawled,
      "well-defined share ~57% of crawl (paper 52.2k -> ~30k)");
  ok &= bench::Check(funnel.final_users > 0.010 * crawled &&
                         funnel.final_users < 0.045 * crawled,
                     "final users ~2% of crawl (paper ~1k of 52.2k)");
  ok &= bench::Check(
      static_cast<double>(funnel.gps_tweets) <
          0.01 * static_cast<double>(funnel.total_tweets),
      "GPS tweets are <1% of the corpus (the 'lack of GPS' problem)");
  ok &= bench::Check(funnel.geocode_failures <
                         funnel.gps_tweets / 20 + 1,
                     "reverse geocoding failures are rare");
  std::printf("\n%s", run.result.FunnelString().c_str());
  return ok ? 0 : 1;
}
