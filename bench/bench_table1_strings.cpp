// Table I (paper §III.B): example per-tweet location strings
// "user#state_p#county_p#state_t#county_t". Reconstructs the paper's own
// example rows from live pipeline objects and prints live strings from a
// generated corpus.

#include "bench_util.h"
#include "core/location_string.h"

int main(int argc, char** argv) {
  using stir::core::LocationRecord;
  stir::bench::PrintHeader(
      "Table I — example strings for location information",
      "paper rows rebuilt through LocationRecord, plus live corpus rows");

  // The paper's printed rows (user ids partially OCR-lost; we use the
  // recoverable digits 123.. / 71..).
  struct Row {
    long long user;
    const char* ps;
    const char* pc;
    const char* ts;
    const char* tc;
  };
  const Row paper_rows[] = {
      {123, "Seoul", "Yangcheon-gu", "Seoul", "Seodaemun-gu"},
      {123, "Seoul", "Yangcheon-gu", "Seoul", "Jung-gu"},
      {123, "Seoul", "Yangcheon-gu", "Seoul", "Jung-gu"},
      {71, "Gyeonggi-do", "Uiwang-si", "Gyeonggi-do", "Uiwang-si"},
      {71, "Gyeonggi-do", "Uiwang-si", "Gyeonggi-do", "Uiwang-si"},
      {71, "Gyeonggi-do", "Uiwang-si", "Gyeonggi-do", "Seongnam-si"},
  };
  std::printf("paper example rows (Table I), re-rendered:\n");
  bool round_trip_ok = true;
  for (const Row& row : paper_rows) {
    LocationRecord record;
    record.user = row.user;
    record.profile_state = row.ps;
    record.profile_county = row.pc;
    record.tweet_state = row.ts;
    record.tweet_county = row.tc;
    std::string rendered = record.ToString();
    std::printf("  %s\n", rendered.c_str());
    auto parsed = LocationRecord::FromString(rendered);
    round_trip_ok &= parsed.ok() && *parsed == record;
  }

  double scale = stir::bench::ScaleFromArgs(argc, argv, 0.2);
  stir::bench::StudyRun run = stir::bench::RunKoreanStudy(scale);
  std::printf("\nlive rows from the synthetic corpus (scale %.2f):\n", scale);
  int printed = 0;
  for (const auto& grouping : run.result.groupings) {
    for (const auto& merged : grouping.ordered) {
      for (int i = 0; i < merged.count && printed < 6; ++i) {
        std::printf("  %s\n", merged.record.ToString().c_str());
        ++printed;
      }
    }
    if (printed >= 6) break;
  }

  std::printf("\nshape checks:\n");
  bool ok = stir::bench::Check(round_trip_ok,
                               "paper rows round-trip through "
                               "LocationRecord::FromString");
  ok &= stir::bench::Check(printed == 6, "live pipeline produced strings");
  return ok ? 0 : 1;
}
