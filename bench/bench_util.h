#ifndef STIR_BENCH_BENCH_UTIL_H_
#define STIR_BENCH_BENCH_UTIL_H_

// Shared helpers for the reproduction benches. Each bench binary
// regenerates one table or figure of the paper and prints paper-reported
// values (where legible in the source text) next to measured ones, with a
// PASS/CHECK verdict on the qualitative shape.

#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/study.h"
#include "geo/admin_db.h"
#include "obs/json.h"
#include "twitter/generator.h"

namespace stir::bench {

/// High-water-mark resident set of this process in bytes (ru_maxrss is
/// kilobytes on Linux). The out-of-core acceptance gate compares this
/// against the on-disk corpus size.
inline int64_t CurrentPeakRssBytes() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;
}

/// Scale for dataset generation: 1.0 = the paper's 52,200-user crawl.
/// Benches default to full scale (about a second of generation) and
/// accept an override as argv[1].
inline double ScaleFromArgs(int argc, char** argv, double fallback = 1.0) {
  if (argc > 1) {
    double scale = std::atof(argv[1]);
    if (scale > 0.0) return scale;
  }
  return fallback;
}

struct StudyRun {
  twitter::GeneratedData data;
  core::StudyResult result;
};

/// Generates the Korean-preset corpus and runs the full study.
inline StudyRun RunKoreanStudy(double scale) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  twitter::DatasetGenerator generator(
      &db, twitter::DatasetGenerator::KoreanConfig(scale));
  StudyRun run{generator.Generate(), {}};
  core::CorrelationStudy study(&db);
  run.result = study.Run(run.data.dataset);
  return run;
}

/// Generates the Lady-Gaga-preset corpus (world gazetteer) and runs the
/// study.
inline StudyRun RunLadyGagaStudy(double scale) {
  const geo::AdminDb& db = geo::AdminDb::WorldCities();
  twitter::DatasetGenerator generator(
      &db, twitter::DatasetGenerator::LadyGagaConfig(scale));
  StudyRun run{generator.Generate(), {}};
  core::CorrelationStudy study(&db);
  run.result = study.Run(run.data.dataset);
  return run;
}

/// One PASS/CHECK line for a shape assertion.
inline bool Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "CHECK", what);
  return ok;
}

/// One measured configuration for the machine-readable `--json` output
/// shared by the load benches: name, iteration count, and nanoseconds per
/// operation, plus free-form numeric extras (latency quantiles and the
/// like).
struct BenchJsonEntry {
  std::string name;
  int64_t iterations = 0;
  double ns_per_op = 0.0;
  std::vector<std::pair<std::string, double>> extra;
  /// Accuracy-style ratios (written as a nested `"accuracy"` object with
  /// 4-decimal precision, so quality gates live in the same snapshot as
  /// the latency numbers — BENCH_infer.json pairs p99 with
  /// accuracy@district this way).
  std::vector<std::pair<std::string, double>> accuracy;
};

/// Writes `{"benchmarks":[{"name":...,"iterations":...,"ns_per_op":...,
/// "accuracy":{...}?}],
/// "process":{"peak_rss_bytes":...,"mapped_bytes_peak":...}}` to `path`.
/// `mapped_bytes_peak` is the caller's high-water mark of mmapped corpus
/// bytes (CorpusView::bytes_mapped; 0 for benches that never map one).
/// Returns false (with a message on stderr) when the file cannot be
/// written.
inline bool WriteBenchJson(const std::string& path,
                           const std::vector<BenchJsonEntry>& entries,
                           int64_t mapped_bytes_peak = 0) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("benchmarks");
  w.BeginArray();
  for (const BenchJsonEntry& entry : entries) {
    w.BeginObject();
    w.Key("name");
    w.String(entry.name);
    w.Key("iterations");
    w.Int(entry.iterations);
    w.Key("ns_per_op");
    w.FixedDouble(entry.ns_per_op, 1);
    for (const auto& [key, value] : entry.extra) {
      w.Key(key);
      w.FixedDouble(value, 3);
    }
    if (!entry.accuracy.empty()) {
      w.Key("accuracy");
      w.BeginObject();
      for (const auto& [key, value] : entry.accuracy) {
        w.Key(key);
        w.FixedDouble(value, 4);
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("process");
  w.BeginObject();
  w.Key("peak_rss_bytes");
  w.Int(CurrentPeakRssBytes());
  w.Key("mapped_bytes_peak");
  w.Int(mapped_bytes_peak);
  w.EndObject();
  w.EndObject();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

inline void PrintHeader(const char* experiment, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("==============================================================\n");
}

}  // namespace stir::bench

#endif  // STIR_BENCH_BENCH_UTIL_H_
