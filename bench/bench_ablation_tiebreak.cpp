// Ablation (DESIGN.md §5): the paper never says how equal-count strings
// are ordered in Table II. If the Top-k shares moved under a different
// tie rule, the groups would partly be artifacts of an unstated choice.
// Runs the identical study under lexicographic vs reverse-lexicographic
// tie-breaking and diffs Fig. 7.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace stir;
  double scale = bench::ScaleFromArgs(argc, argv, 1.0);
  bench::PrintHeader("Ablation — Table II tie-break rule",
                     "lexicographic vs reverse-lexicographic tie order");

  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  twitter::DatasetGenerator generator(
      &db, twitter::DatasetGenerator::KoreanConfig(scale));
  twitter::GeneratedData data = generator.Generate();

  StudyConfig lex_options;
  lex_options.tie_break = core::TieBreak::kLexicographic;
  StudyConfig rev_options;
  rev_options.tie_break = core::TieBreak::kReverseLexicographic;
  core::StudyResult lex =
      core::CorrelationStudy(&db, lex_options).Run(data.dataset);
  core::StudyResult rev =
      core::CorrelationStudy(&db, rev_options).Run(data.dataset);

  // Users whose group flips under the other tie rule.
  int64_t flipped = 0;
  for (size_t i = 0; i < lex.groupings.size(); ++i) {
    flipped += (lex.groupings[i].group != rev.groupings[i].group);
  }

  std::printf("%-8s %12s %12s %8s\n", "group", "lex%", "revlex%", "delta");
  double max_delta = 0.0;
  for (int g = 0; g < core::kNumTopKGroups; ++g) {
    double a = lex.groups[g].user_share * 100.0;
    double b = rev.groups[g].user_share * 100.0;
    max_delta = std::max(max_delta, std::fabs(a - b));
    std::printf("%-8s %11.2f%% %11.2f%% %+7.2f\n",
                core::TopKGroupToString(static_cast<core::TopKGroup>(g)), a,
                b, b - a);
  }
  std::printf("\nusers whose group flips under the other tie rule: %lld of "
              "%lld\n\n",
              static_cast<long long>(flipped),
              static_cast<long long>(lex.final_users));

  bool ok = true;
  std::printf("shape checks:\n");
  ok &= bench::Check(lex.final_users == rev.final_users,
                     "tie rule cannot change the study sample");
  ok &= bench::Check(max_delta < 2.0,
                     "group shares move <2 points under the other rule");
  // Individual users flip readily (with ~20 GPS tweets, equal counts are
  // common), but the flips cancel in aggregate — the interesting finding
  // of this ablation.
  ok &= bench::Check(
      static_cast<double>(flipped) <
          0.15 * static_cast<double>(std::max<int64_t>(1, lex.final_users)),
      "fewer than 15% of users are tie-sensitive individually");
  // None membership is tie-independent by construction (a matched string
  // either exists or not).
  ok &= bench::Check(
      lex.group(core::TopKGroup::kNone).users ==
          rev.group(core::TopKGroup::kNone).users,
      "None group is exactly invariant to tie order");
  return ok ? 0 : 1;
}
