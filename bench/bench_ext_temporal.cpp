// Extension bench — temporal posting behaviour (the research group's
// companion analysis): hour-of-day posting profile of the synthetic
// Korean corpus, and whether the *spatially* reliable and unreliable
// user groups differ *temporally* (they shouldn't much: geotagging
// habits, not schedules, separate them).

#include "bench_util.h"
#include "core/reliability.h"
#include "core/temporal.h"

int main(int argc, char** argv) {
  using namespace stir;
  double scale = bench::ScaleFromArgs(argc, argv, 0.3);
  bench::PrintHeader("Extension — posting-hour profile",
                     "diurnal cycle of the corpus; Top-1 vs None users");

  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  auto config = twitter::DatasetGenerator::KoreanConfig(scale);
  config.plain_tweet_sample = 0.01;  // a text-dense corpus for profiles
  twitter::DatasetGenerator generator(&db, config);
  twitter::GeneratedData data = generator.Generate();
  core::CorrelationStudy study(&db);
  core::StudyResult result = study.Run(data.dataset);

  auto whole = core::ComputePostingProfile(data.dataset);
  if (!whole.ok()) {
    std::printf("profile failed: %s\n", whole.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", whole->ToString().c_str());
  std::printf("peak %02d:00, trough %02d:00, entropy %.2f bits "
              "(flat would be %.2f)\n\n",
              whole->PeakHour(), whole->TroughHour(), whole->EntropyBits(),
              std::log2(24.0));

  // Aggregate hourly profiles of Top-1 vs None users (GPS tweets only,
  // via the study's per-user tweet indices).
  auto group_profile = [&](core::TopKGroup group) {
    twitter::Dataset subset;
    for (const core::UserGrouping& grouping : result.groupings) {
      if (grouping.group != group) continue;
      subset.AddUser(*data.dataset.FindUser(grouping.user));
      for (size_t index : data.dataset.TweetIndicesOf(grouping.user)) {
        subset.AddTweet(data.dataset.tweets()[index]);
      }
    }
    return core::ComputePostingProfile(subset);
  };
  auto top1 = group_profile(core::TopKGroup::kTop1);
  auto none = group_profile(core::TopKGroup::kNone);

  bool ok = true;
  std::printf("shape checks:\n");
  ok &= bench::Check(whole->PeakHour() >= 17 && whole->PeakHour() <= 23,
                     "evening posting peak (generator's diurnal cycle "
                     "recovered)");
  ok &= bench::Check(whole->TroughHour() >= 1 && whole->TroughHour() <= 6,
                     "small-hours trough");
  if (top1.ok() && none.ok()) {
    double distance = core::ProfileDistance(*top1, *none);
    std::printf("L1 distance Top-1 vs None hourly profiles: %.3f\n",
                distance);
    ok &= bench::Check(distance < 0.35,
                       "spatially reliable and unreliable users keep "
                       "similar schedules");
  } else {
    ok &= bench::Check(false, "group profiles computable");
  }
  return ok ? 0 : 1;
}
