// Sensitivity sweep: how the reproduced Fig. 7 responds to the two
// assumptions the paper's data cannot pin down — the share of relocated
// users (the None driver) and the geotagger fraction (the funnel
// driver). The qualitative conclusions must be stable across the
// plausible range; the sweep shows which paper numbers constrain which
// generator knobs.

#include "bench_util.h"

namespace {

stir::core::StudyResult RunWith(double relocated, double geotagger,
                                double scale) {
  const stir::geo::AdminDb& db = stir::geo::AdminDb::KoreanDistricts();
  auto config = stir::twitter::DatasetGenerator::KoreanConfig(scale);
  // Shift mass between relocated and homebody, keeping the rest fixed.
  double delta = relocated - config.mobility.frac_relocated;
  config.mobility.frac_relocated = relocated;
  config.mobility.frac_homebody -= delta;
  config.geotagger_fraction = geotagger;
  stir::twitter::DatasetGenerator generator(&db, config);
  auto data = generator.Generate();
  stir::core::CorrelationStudy study(&db);
  return study.Run(data.dataset);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stir;
  double scale = bench::ScaleFromArgs(argc, argv, 0.3);
  bench::PrintHeader("Sensitivity — generator assumptions vs Fig. 7",
                     "sweeping relocated share and geotagger fraction");

  const double relocated_values[] = {0.08, 0.15, 0.25};
  const double geotagger_values[] = {0.02, 0.035, 0.08};

  std::printf("%-12s %-12s | %8s %8s %8s %10s\n", "relocated", "geotaggers",
              "Top-1%", "None%", "final", "avg_loc");
  double none_by_relocated[3] = {};
  double top1_min = 1.0, top1_max = 0.0;
  bool always_top1_dominant = true;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t g = 0; g < 3; ++g) {
      core::StudyResult result =
          RunWith(relocated_values[r], geotagger_values[g], scale);
      double top1 = result.groups[0].user_share;
      double none =
          result.groups[static_cast<int>(core::TopKGroup::kNone)].user_share;
      if (g == 1) none_by_relocated[r] = none;
      top1_min = std::min(top1_min, top1);
      top1_max = std::max(top1_max, top1);
      for (int k = 1; k < core::kNumTopKGroups - 1; ++k) {
        always_top1_dominant &=
            top1 >= result.groups[k].user_share;
      }
      std::printf("%-12.2f %-12.3f | %7.1f%% %7.1f%% %8lld %10.2f\n",
                  relocated_values[r], geotagger_values[g], top1 * 100.0,
                  none * 100.0, static_cast<long long>(result.final_users),
                  result.overall_avg_locations);
    }
  }
  std::printf("\n");

  bool ok = true;
  std::printf("shape checks:\n");
  ok &= bench::Check(
      none_by_relocated[0] < none_by_relocated[1] &&
          none_by_relocated[1] < none_by_relocated[2],
      "None share rises monotonically with the relocated share "
      "(the knob the paper's ~30% pins down)");
  ok &= bench::Check(always_top1_dominant,
                     "Top-1 stays the largest Top-k group across the "
                     "entire sweep");
  ok &= bench::Check(top1_max - top1_min < 0.25,
                     "Top-1 share stays within a 25-point band");
  return ok ? 0 : 1;
}
