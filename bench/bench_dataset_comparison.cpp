// Slide figures 4+5 (STIR talk deck): the Korean crawl vs the "Lady
// Gaga" Search/Streaming-API dataset, side by side — users per group and
// average tweet locations per group. The topical global fanbase shows
// weaker profile-location locality: smaller Top-1, larger None, more
// distinct tweet districts per user.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace stir;
  double scale = bench::ScaleFromArgs(argc, argv, 1.0);
  bench::PrintHeader(
      "Slides 4+5 — Korean dataset vs Lady Gaga dataset",
      "user share and avg tweet locations per group, both corpora");

  bench::StudyRun korean = bench::RunKoreanStudy(scale);
  bench::StudyRun gaga = bench::RunLadyGagaStudy(scale);

  std::printf("dataset sizes: Korean %zu users / %lld tweets; Lady Gaga "
              "%zu users / %lld tweets\n\n",
              korean.data.dataset.users().size(),
              static_cast<long long>(korean.data.dataset.total_tweet_count()),
              gaga.data.dataset.users().size(),
              static_cast<long long>(gaga.data.dataset.total_tweet_count()));

  std::printf("%-8s | %12s %12s | %12s %12s\n", "group", "KR user%",
              "GAGA user%", "KR avg_loc", "GAGA avg_loc");
  for (int g = 0; g < core::kNumTopKGroups; ++g) {
    std::printf("%-8s | %11.2f%% %11.2f%% | %12.2f %12.2f\n",
                core::TopKGroupToString(static_cast<core::TopKGroup>(g)),
                korean.result.groups[g].user_share * 100.0,
                gaga.result.groups[g].user_share * 100.0,
                korean.result.groups[g].avg_tweet_locations,
                gaga.result.groups[g].avg_tweet_locations);
  }
  std::printf("final users: KR %lld, GAGA %lld\n\n",
              static_cast<long long>(korean.result.final_users),
              static_cast<long long>(gaga.result.final_users));

  int none = static_cast<int>(core::TopKGroup::kNone);
  bool ok = true;
  std::printf("shape checks:\n");
  ok &= bench::Check(gaga.result.groups[0].user_share <
                         korean.result.groups[0].user_share,
                     "Lady Gaga Top-1 share below Korean Top-1 share");
  ok &= bench::Check(gaga.result.groups[none].user_share >
                         korean.result.groups[none].user_share,
                     "Lady Gaga None share above Korean None share");
  ok &= bench::Check(korean.result.groups[0].user_share > 0.30,
                     "Korean Top-1 stays dominant");
  ok &= bench::Check(gaga.result.final_users > 50,
                     "Lady Gaga study sample is non-trivial");
  return ok ? 0 : 1;
}
