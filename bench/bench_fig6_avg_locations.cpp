// Fig. 6 (paper §IV): average number of distinct tweet districts per
// Top-k group. Paper-legible anchors: Top-1 ~ 3.4 districts, counts
// increase with k, None ~ 2.5 districts, overall average ~ 3 ("they have
// 3 major spots for posting tweets").

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace stir;
  double scale = bench::ScaleFromArgs(argc, argv, 1.0);
  bench::PrintHeader(
      "Fig. 6 — average number of tweet locations in each group",
      "series shape: rising with k; None low (~2.5); Top-1 ~3.4");
  bench::StudyRun run = bench::RunKoreanStudy(scale);
  const core::StudyResult& result = run.result;

  std::printf("%-8s %8s %16s\n", "group", "users", "avg_locations");
  for (int g = 0; g < core::kNumTopKGroups; ++g) {
    std::printf("%-8s %8lld %16.2f\n",
                core::TopKGroupToString(static_cast<core::TopKGroup>(g)),
                static_cast<long long>(result.groups[g].users),
                result.groups[g].avg_tweet_locations);
  }
  std::printf("overall (user-weighted): %.2f   (paper: ~3)\n\n",
              result.overall_avg_locations);

  const core::GroupStats* groups = result.groups;
  bool ok = true;
  std::printf("shape checks:\n");
  ok &= bench::Check(groups[0].avg_tweet_locations > 2.4 &&
                         groups[0].avg_tweet_locations < 4.2,
                     "Top-1 average near the paper's ~3.4");
  ok &= bench::Check(groups[0].avg_tweet_locations <
                             groups[2].avg_tweet_locations &&
                         groups[2].avg_tweet_locations <
                             groups[5].avg_tweet_locations,
                     "averages rise with k (Top-1 < Top-3 < Top-6+)");
  int none = static_cast<int>(core::TopKGroup::kNone);
  ok &= bench::Check(groups[none].avg_tweet_locations > 1.6 &&
                         groups[none].avg_tweet_locations < 3.0,
                     "None group near the paper's ~2.5 (low mobility)");
  ok &= bench::Check(groups[none].avg_tweet_locations <
                         groups[0].avg_tweet_locations,
                     "None group below Top-1 (stays-in-one-place story)");
  ok &= bench::Check(result.overall_avg_locations > 2.5 &&
                         result.overall_avg_locations < 3.6,
                     "overall average ~3 tweet locations per user");
  return ok ? 0 : 1;
}
