// Resilience overhead: what the fault-injection layer costs when idle,
// and what retries + degraded mode cost (and recover) when the simulated
// geocoding service misbehaves. Not a paper figure — this prices the
// failure model DESIGN.md §7 describes.

#include <chrono>
#include <filesystem>

#include "bench_util.h"

namespace {

double MeasureConfigMs(const stir::twitter::Dataset& dataset,
                       const stir::geo::AdminDb& db,
                       const stir::StudyConfig& config,
                       stir::core::StudyResult* result) {
  stir::core::CorrelationStudy study(&db, config);
  auto start = std::chrono::steady_clock::now();
  *result = study.Run(dataset);
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stir;
  double scale = bench::ScaleFromArgs(argc, argv, 0.2);
  bench::PrintHeader("Resilience — fault injection, retry, degraded mode",
                     "study cost and recovery under injected service faults");

  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  twitter::DatasetGenerator generator(
      &db, twitter::DatasetGenerator::KoreanConfig(scale));
  twitter::GeneratedData data = generator.Generate();

  StudyConfig base;
  core::StudyResult clean;
  double clean_ms = MeasureConfigMs(data.dataset, db, base, &clean);

  std::printf("%-26s %9s %9s %9s %9s %9s %8s\n", "configuration", "ms",
              "faulted", "retried", "degraded", "failures", "users");
  std::printf("%-26s %9.1f %9s %9s %9s %9lld %8lld\n", "no faults", clean_ms,
              "-", "-", "-",
              static_cast<long long>(clean.funnel.geocode_failures),
              static_cast<long long>(clean.final_users));

  core::StudyResult faulty;
  double faulty_ms = 0.0;
  for (double rate : {0.05, 0.20}) {
    StudyConfig options;
    options.fault.error_rate = rate;
    options.fault.seed = 20120401;
    options.retry.max_attempts = 3;
    faulty_ms = MeasureConfigMs(data.dataset, db, options, &faulty);
    std::printf("fault-rate %.2f, retry 3    %9.1f %9lld %9lld %9lld %9lld "
                "%8lld\n",
                rate, faulty_ms,
                static_cast<long long>(faulty.funnel.geocode_faulted),
                static_cast<long long>(faulty.funnel.geocode_retried),
                static_cast<long long>(faulty.funnel.geocode_degraded),
                static_cast<long long>(faulty.funnel.geocode_failures),
                static_cast<long long>(faulty.final_users));
  }

  double overhead = clean_ms > 0.0 ? (faulty_ms / clean_ms - 1.0) * 100.0
                                   : 0.0;
  std::printf("\nretry/fault overhead at rate 0.20: %+.1f%% wall time, "
              "%lld ms simulated backoff\n\n",
              overhead, static_cast<long long>(faulty.funnel.backoff_ms));

  // --- Durability overhead: geocode journal + checkpoints on vs off. ---
  std::filesystem::path ckpt_dir =
      std::filesystem::temp_directory_path() / "stir_bench_resilience_ckpt";
  std::filesystem::remove_all(ckpt_dir);

  StudyConfig durable;
  durable.durability.checkpoint_dir = ckpt_dir.string();
  // Per-record fsync on the journal is the paper-faithful write-ahead
  // setting; the bench prices it as the worst case.
  durable.durability.fsync = true;
  core::StudyResult journaled;
  double journaled_ms = MeasureConfigMs(data.dataset, db, durable, &journaled);

  StudyConfig resumed_config = durable;
  resumed_config.durability.resume = true;
  core::StudyResult resumed;
  double resumed_ms =
      MeasureConfigMs(data.dataset, db, resumed_config, &resumed);

  double durability_overhead =
      clean_ms > 0.0 ? (journaled_ms / clean_ms - 1.0) * 100.0 : 0.0;
  std::printf("durability (journal + checkpoints, fsync each append):\n");
  std::printf("  off %9.1f ms   on %9.1f ms  (%+.1f%%)   resume %9.1f ms\n\n",
              clean_ms, journaled_ms, durability_overhead, resumed_ms);

  bool ok = true;
  std::printf("shape checks:\n");
  ok &= bench::Check(faulty.final_users > 0,
                     "study completes under a 20% fault rate");
  ok &= bench::Check(faulty.funnel.geocode_retried > 0,
                     "retries engage under faults");
  ok &= bench::Check(faulty.funnel.geocode_degraded > 0,
                     "degraded text-fallback salvages some lookups");
  ok &= bench::Check(
      faulty.final_users >= clean.final_users * 8 / 10,
      "retry + degradation retain >= 80% of the fault-free sample");
  ok &= bench::Check(journaled.final_users == clean.final_users,
                     "journaled run matches the plain run's final users");
  ok &= bench::Check(resumed.final_users == clean.final_users,
                     "resumed run matches the plain run's final users");
  std::filesystem::remove_all(ckpt_dir);
  return ok ? 0 : 1;
}
