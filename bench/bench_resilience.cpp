// Resilience overhead: what the fault-injection layer costs when idle,
// what retries + degraded mode cost (and recover) when the simulated
// geocoding service misbehaves, and what the storage fault layer
// (io::FaultFs, DESIGN.md §15) costs when the journaled study absorbs
// short writes and EINTR on every durable append. Not a paper figure —
// this prices the failure model DESIGN.md §7/§15 describe.
//
// Usage: bench_resilience [scale] [--json <path>]
//
// --json writes the machine-readable shape shared with bench_perf /
// bench_stream, one entry per configuration, with the fault-accounting
// counters (injected / recovered / surfaced / quarantined) as extras.

#include <chrono>
#include <filesystem>
#include <string_view>

#include "bench_util.h"
#include "io/fault_fs.h"

namespace stir::bench {
namespace {

struct Args {
  double scale = 0.2;
  std::string json_path;
};

bool ParseBenchArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) return false;
      args->json_path = argv[++i];
    } else {
      double scale = std::atof(argv[i]);
      if (scale <= 0.0) {
        std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
        return false;
      }
      args->scale = scale;
    }
  }
  return true;
}

double MeasureConfigMs(const twitter::Dataset& dataset,
                       const geo::AdminDb& db, const StudyConfig& config,
                       core::StudyResult* result) {
  core::CorrelationStudy study(&db, config);
  auto start = std::chrono::steady_clock::now();
  *result = study.Run(dataset);
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

BenchJsonEntry Entry(const std::string& name, double ms,
                     const core::StudyResult& result) {
  BenchJsonEntry entry;
  entry.name = name;
  entry.iterations = 1;
  entry.ns_per_op = ms * 1e6;
  entry.extra.emplace_back("final_users",
                           static_cast<double>(result.final_users));
  entry.extra.emplace_back(
      "geocode_failures",
      static_cast<double>(result.funnel.geocode_failures));
  return entry;
}

int Main(int argc, char** argv) {
  Args args;
  if (!ParseBenchArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: bench_resilience [scale] [--json <path>]\n");
    return 1;
  }
  PrintHeader("Resilience — fault injection, retry, degraded mode",
              "study cost and recovery under injected service faults");

  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  twitter::DatasetGenerator generator(
      &db, twitter::DatasetGenerator::KoreanConfig(args.scale));
  twitter::GeneratedData data = generator.Generate();

  std::vector<BenchJsonEntry> json_entries;

  StudyConfig base;
  core::StudyResult clean;
  double clean_ms = MeasureConfigMs(data.dataset, db, base, &clean);
  json_entries.push_back(Entry("resilience/no_faults", clean_ms, clean));

  std::printf("%-26s %9s %9s %9s %9s %9s %8s\n", "configuration", "ms",
              "faulted", "retried", "degraded", "failures", "users");
  std::printf("%-26s %9.1f %9s %9s %9s %9lld %8lld\n", "no faults", clean_ms,
              "-", "-", "-",
              static_cast<long long>(clean.funnel.geocode_failures),
              static_cast<long long>(clean.final_users));

  core::StudyResult faulty;
  double faulty_ms = 0.0;
  for (double rate : {0.05, 0.20}) {
    StudyConfig options;
    options.fault.error_rate = rate;
    options.fault.seed = 20120401;
    options.retry.max_attempts = 3;
    faulty_ms = MeasureConfigMs(data.dataset, db, options, &faulty);
    std::printf("fault-rate %.2f, retry 3    %9.1f %9lld %9lld %9lld %9lld "
                "%8lld\n",
                rate, faulty_ms,
                static_cast<long long>(faulty.funnel.geocode_faulted),
                static_cast<long long>(faulty.funnel.geocode_retried),
                static_cast<long long>(faulty.funnel.geocode_degraded),
                static_cast<long long>(faulty.funnel.geocode_failures),
                static_cast<long long>(faulty.final_users));
    char name[64];
    std::snprintf(name, sizeof(name), "resilience/fault_rate_%.2f", rate);
    BenchJsonEntry entry = Entry(name, faulty_ms, faulty);
    entry.extra.emplace_back(
        "geocode_faulted",
        static_cast<double>(faulty.funnel.geocode_faulted));
    entry.extra.emplace_back(
        "geocode_retried",
        static_cast<double>(faulty.funnel.geocode_retried));
    json_entries.push_back(std::move(entry));
  }

  double overhead = clean_ms > 0.0 ? (faulty_ms / clean_ms - 1.0) * 100.0
                                   : 0.0;
  std::printf("\nretry/fault overhead at rate 0.20: %+.1f%% wall time, "
              "%lld ms simulated backoff\n\n",
              overhead, static_cast<long long>(faulty.funnel.backoff_ms));

  // --- Durability overhead: geocode journal + checkpoints on vs off. ---
  std::filesystem::path ckpt_dir =
      std::filesystem::temp_directory_path() / "stir_bench_resilience_ckpt";
  std::filesystem::remove_all(ckpt_dir);

  StudyConfig durable;
  durable.durability.checkpoint_dir = ckpt_dir.string();
  // Per-record fsync on the journal is the paper-faithful write-ahead
  // setting; the bench prices it as the worst case.
  durable.durability.fsync = true;
  core::StudyResult journaled;
  double journaled_ms = MeasureConfigMs(data.dataset, db, durable, &journaled);
  json_entries.push_back(
      Entry("resilience/durability_on", journaled_ms, journaled));

  StudyConfig resumed_config = durable;
  resumed_config.durability.resume = true;
  core::StudyResult resumed;
  double resumed_ms =
      MeasureConfigMs(data.dataset, db, resumed_config, &resumed);

  double durability_overhead =
      clean_ms > 0.0 ? (journaled_ms / clean_ms - 1.0) * 100.0 : 0.0;
  std::printf("durability (journal + checkpoints, fsync each append):\n");
  std::printf("  off %9.1f ms   on %9.1f ms  (%+.1f%%)   resume %9.1f ms\n\n",
              clean_ms, journaled_ms, durability_overhead, resumed_ms);

  // --- Storage faults: the journaled run under recovered-class io
  // faults. Short writes and EINTR on every durable append are absorbed
  // by the write-all retry loops; the run must finish with the same
  // sample and a balanced fault ledger (DESIGN.md §15). ---
  std::filesystem::remove_all(ckpt_dir);
  io::FaultFsOptions fs_options;
  fs_options.seed = 20120401;
  fs_options.short_write_rate = 0.05;
  fs_options.eintr_rate = 0.05;
  io::FaultFs::Instance().Configure(fs_options);
  core::StudyResult storm;
  double storm_ms = MeasureConfigMs(data.dataset, db, durable, &storm);
  const io::FaultFsStats fs_stats = io::FaultFs::Instance().stats();
  io::FaultFs::Instance().Reset();

  double storm_overhead = journaled_ms > 0.0
                              ? (storm_ms / journaled_ms - 1.0) * 100.0
                              : 0.0;
  std::printf("storage faults (short-write 0.05, eintr 0.05, journaled):\n");
  std::printf("  %9.1f ms (%+.1f%% vs fault-free journaled)   injected %lld"
              "   recovered %lld   surfaced %lld\n\n",
              storm_ms, storm_overhead,
              static_cast<long long>(fs_stats.injected),
              static_cast<long long>(fs_stats.recovered),
              static_cast<long long>(fs_stats.surfaced));
  {
    BenchJsonEntry entry = Entry("resilience/storage_faults", storm_ms, storm);
    entry.extra.emplace_back("io_injected",
                             static_cast<double>(fs_stats.injected));
    entry.extra.emplace_back("io_recovered",
                             static_cast<double>(fs_stats.recovered));
    entry.extra.emplace_back("io_surfaced",
                             static_cast<double>(fs_stats.surfaced));
    entry.extra.emplace_back("io_quarantined",
                             static_cast<double>(fs_stats.quarantined));
    entry.extra.emplace_back("io_short_writes",
                             static_cast<double>(fs_stats.short_writes));
    entry.extra.emplace_back("io_eintr",
                             static_cast<double>(fs_stats.eintr));
    json_entries.push_back(std::move(entry));
  }

  bool ok = true;
  std::printf("shape checks:\n");
  ok &= Check(faulty.final_users > 0,
              "study completes under a 20% fault rate");
  ok &= Check(faulty.funnel.geocode_retried > 0,
              "retries engage under faults");
  ok &= Check(faulty.funnel.geocode_degraded > 0,
              "degraded text-fallback salvages some lookups");
  ok &= Check(faulty.final_users >= clean.final_users * 8 / 10,
              "retry + degradation retain >= 80% of the fault-free sample");
  ok &= Check(journaled.final_users == clean.final_users,
              "journaled run matches the plain run's final users");
  ok &= Check(resumed.final_users == clean.final_users,
              "resumed run matches the plain run's final users");
  ok &= Check(fs_stats.injected > 0, "storage faults actually fired");
  ok &= Check(fs_stats.recovered == fs_stats.injected &&
                  fs_stats.surfaced == 0,
              "every recovered-class storage fault was absorbed");
  ok &= Check(storm.final_users == clean.final_users,
              "storage-fault run matches the plain run's final users");
  std::filesystem::remove_all(ckpt_dir);

  if (!args.json_path.empty()) {
    if (WriteBenchJson(args.json_path, json_entries)) {
      std::printf("\nwrote %s\n", args.json_path.c_str());
    } else {
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace stir::bench

int main(int argc, char** argv) { return stir::bench::Main(argc, argv); }
