// bench_stream: ingest throughput and index-swap latency for the
// incremental streaming engine (DESIGN.md §12).
//
// Generates a Korean-preset corpus, runs the one-shot batch study as the
// ground truth, then replays the same tweet log through StreamEngine at
// several epoch sizes. For each epoch size it reports sustained ingest
// throughput (tweets/s, seal cost included) and the latency distribution
// of the sealing AddTweet calls — the calls that rebuild and RCU-swap a
// fresh generation — as swap p50/p99. A final equivalence gate checks
// the last sealed generation answers byte-identically to the batch index.
//
// Usage: bench_stream [scale] [--json <path>]
//
// --json writes the machine-readable shape shared with bench_perf and
// bench_serve: {"benchmarks":[{"name","iterations","ns_per_op",...}]}

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "serve/protocol.h"
#include "serve/study_index.h"
#include "stream/engine.h"
#include "twitter/api.h"

namespace stir::bench {
namespace {

struct Args {
  double scale = 1.0;
  std::string json_path;
};

bool ParseBenchArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) return false;
      args->json_path = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      double scale = std::atof(argv[i]);
      if (scale > 0.0) args->scale = scale;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

struct IngestResult {
  double seconds = 0.0;        ///< Whole-log ingest wall time.
  int64_t tweets = 0;
  int64_t seals = 0;
  double swap_p50_us = 0.0;    ///< Latency of sealing AddTweet calls.
  double swap_p99_us = 0.0;
  std::shared_ptr<const serve::StudyIndex> index;
  int64_t generation = 0;
  int64_t epochs_sealed = 0;
};

/// Replays the full log through a fresh engine with `epoch_size`,
/// timing every auto-sealing AddTweet (tweet count hits the epoch
/// boundary) separately from the bulk of the fold-only calls.
IngestResult RunIngest(const geo::AdminDb& db,
                       const twitter::Dataset& dataset, int64_t epoch_size) {
  using Clock = std::chrono::steady_clock;
  stream::StreamOptions options;
  options.epoch_size = epoch_size;
  stream::StreamEngine engine(&db, StudyConfig{}, options);
  Status status = engine.Open();
  IngestResult result;
  if (!status.ok()) {
    std::fprintf(stderr, "engine open failed: %s\n",
                 status.message().c_str());
    return result;
  }
  for (const twitter::User& user : dataset.users()) {
    engine.AddUser(user);
  }
  std::vector<int64_t> swap_us;
  int64_t since_seal = 0;
  const auto start = Clock::now();
  twitter::StreamingApi api(&dataset);
  api.Replay([&](size_t dataset_index, const twitter::Tweet& tweet) {
    ++result.tweets;
    const bool seals = ++since_seal == epoch_size;
    if (seals) {
      const auto t0 = Clock::now();
      engine.AddTweet(tweet, static_cast<int64_t>(dataset_index));
      swap_us.push_back(std::chrono::duration_cast<std::chrono::microseconds>(
                            Clock::now() - t0)
                            .count());
      since_seal = 0;
    } else {
      engine.AddTweet(tweet, static_cast<int64_t>(dataset_index));
    }
  });
  engine.SealEpoch();  // Flush the sub-epoch tail.
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() -
                                                                start)
          .count();
  result.seals = static_cast<int64_t>(swap_us.size());
  std::sort(swap_us.begin(), swap_us.end());
  if (!swap_us.empty()) {
    result.swap_p50_us = static_cast<double>(swap_us[swap_us.size() / 2]);
    result.swap_p99_us =
        static_cast<double>(swap_us[(swap_us.size() * 99) / 100]);
  }
  result.index = engine.CurrentIndex();
  result.generation = engine.generation();
  result.epochs_sealed = engine.epochs_sealed();
  return result;
}

/// Byte-compares the protocol answers the two indexes give to the same
/// requests: the topk summary plus a spread of user lookups.
bool AnswersMatch(const serve::StudyIndex& streamed,
                  const serve::StudyIndex& batch) {
  serve::Request topk;
  topk.id = 1;
  topk.method = serve::Method::kTopkSummary;
  if (serve::ExecuteOnIndex(streamed, topk) !=
      serve::ExecuteOnIndex(batch, topk)) {
    return false;
  }
  const auto& users = batch.users();
  const size_t step = std::max<size_t>(1, users.size() / 64);
  for (size_t i = 0; i < users.size(); i += step) {
    serve::Request lookup;
    lookup.id = 2;
    lookup.method = serve::Method::kLookupUser;
    lookup.user = users[i].user;
    if (serve::ExecuteOnIndex(streamed, lookup) !=
        serve::ExecuteOnIndex(batch, lookup)) {
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  Args args;
  if (!ParseBenchArgs(argc, argv, &args)) {
    std::fprintf(stderr, "usage: bench_stream [scale] [--json <path>]\n");
    return 2;
  }
  PrintHeader("bench_stream — streaming ingest throughput and swap latency",
              "StreamEngine epoch-size sweep vs the batch ground truth "
              "(DESIGN.md section 12).");

  std::printf("generating corpus (Korean preset, scale %.2f)...\n",
              args.scale);
  StudyRun run = RunKoreanStudy(args.scale);
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  serve::StudyIndex batch = serve::StudyIndex::Build(run.result, db);
  const int64_t tweets =
      static_cast<int64_t>(run.data.dataset.tweets().size());
  std::printf("dataset: %zu users, %lld tweets; batch index: %zu users, "
              "%zu districts\n\n",
              run.data.dataset.users().size(), static_cast<long long>(tweets),
              batch.user_count(), batch.district_count());

  const int64_t kEpochSizes[] = {256, 1024, 4096};
  std::vector<BenchJsonEntry> json_entries;
  std::vector<IngestResult> results;
  std::printf("%-12s %10s %8s %12s %12s %12s\n", "epoch_size", "tweets",
              "seals", "tweets/s", "swap_p50_us", "swap_p99_us");
  for (int64_t epoch_size : kEpochSizes) {
    IngestResult result = RunIngest(db, run.data.dataset, epoch_size);
    const double throughput =
        static_cast<double>(result.tweets) / result.seconds;
    std::printf("%-12lld %10lld %8lld %12.0f %12.0f %12.0f\n",
                static_cast<long long>(epoch_size),
                static_cast<long long>(result.tweets),
                static_cast<long long>(result.seals), throughput,
                result.swap_p50_us, result.swap_p99_us);
    BenchJsonEntry entry;
    entry.name = StrFormat("stream/ingest/epoch:%lld",
                           static_cast<long long>(epoch_size));
    entry.iterations = result.tweets;
    entry.ns_per_op =
        result.seconds * 1e9 / static_cast<double>(result.tweets);
    entry.extra = {{"tweets_per_second", throughput},
                   {"seals", static_cast<double>(result.seals)},
                   {"swap_p50_us", result.swap_p50_us},
                   {"swap_p99_us", result.swap_p99_us}};
    json_entries.push_back(std::move(entry));
    results.push_back(std::move(result));
  }
  std::printf("\n");

  bool ok = true;
  for (size_t i = 0; i < results.size(); ++i) {
    const IngestResult& result = results[i];
    ok &= Check(result.index != nullptr && result.tweets == tweets,
                StrFormat("epoch %lld ingested the full log",
                          static_cast<long long>(kEpochSizes[i]))
                    .c_str());
    ok &= Check(result.generation == result.epochs_sealed,
                StrFormat("epoch %lld generation tracks the seal count",
                          static_cast<long long>(kEpochSizes[i]))
                    .c_str());
    ok &= Check(result.index != nullptr &&
                    AnswersMatch(*result.index, batch),
                StrFormat("epoch %lld final generation answers "
                          "byte-identically to batch",
                          static_cast<long long>(kEpochSizes[i]))
                    .c_str());
  }
  // Seal cost amortizes: sealing every 4096 tweets must not be slower
  // than sealing every 256 (the swap itself stays off the fold path).
  ok &= Check(results.back().seconds <= results.front().seconds * 1.5,
              "large epochs are not slower than small ones (amortized "
              "seal cost)");

  if (!args.json_path.empty()) {
    if (WriteBenchJson(args.json_path, json_entries)) {
      std::printf("\nwrote %s\n", args.json_path.c_str());
    } else {
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace stir::bench

int main(int argc, char** argv) { return stir::bench::Main(argc, argv); }
