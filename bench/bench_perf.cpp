// Performance microbenchmarks (google-benchmark): throughput of the hot
// components — reverse geocoding, profile parsing, grouping, and the
// end-to-end study — so regressions in the substrate are visible.
//
// `--json <path>` (consumed before google-benchmark sees the argv)
// additionally writes the machine-readable shape shared with
// bench_serve: {"benchmarks":[{"name","iterations","ns_per_op"}]}.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/study.h"
#include "geo/reverse_geocoder.h"
#include "text/location_parser.h"
#include "twitter/column_store.h"
#include "twitter/generator.h"

namespace {

using namespace stir;

void BM_ReverseGeocode(benchmark::State& state) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  geo::ReverseGeocoderOptions options;
  options.enable_cache = state.range(0) != 0;
  geo::ReverseGeocoder geocoder(&db, options);
  Rng rng(1);
  std::vector<geo::LatLng> points;
  for (int i = 0; i < 4096; ++i) {
    auto id = static_cast<geo::RegionId>(
        rng.UniformInt(0, static_cast<int64_t>(db.size()) - 1));
    points.push_back(db.SamplePointIn(id, rng));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto result = geocoder.Reverse(points[i++ & 4095]);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReverseGeocode)->Arg(0)->Arg(1);

void BM_ReverseGeocodeXmlRoundTrip(benchmark::State& state) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  geo::ReverseGeocoderOptions options;
  options.enable_cache = false;
  geo::ReverseGeocoder geocoder(&db, options);
  geo::LatLng p{37.5170, 126.8666};
  for (auto _ : state) {
    auto xml = geocoder.ReverseToXml(p);
    auto parsed = geo::ReverseGeocoder::ParseResponse(*xml);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReverseGeocodeXmlRoundTrip);

void BM_ProfileLocationParse(benchmark::State& state) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  text::LocationParser parser(&db);
  const std::vector<std::string> samples = {
      "Seoul Yangcheon-gu", "Uiwang-si",     "Jung-gu",
      "37.517000,126.866600", "Earth",        "Seoul",
      "Gold Coast Australia / Jung-gu",       "seoul mapo-gu, korea",
  };
  size_t i = 0;
  for (auto _ : state) {
    auto parsed = parser.Parse(samples[i++ % samples.size()]);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileLocationParse);

void BM_GroupUser(benchmark::State& state) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  Rng rng(2);
  core::RefinedUser user;
  user.user = 1;
  user.profile_region = 0;
  for (int64_t i = 0; i < state.range(0); ++i) {
    user.tweet_regions.push_back(static_cast<geo::RegionId>(
        rng.UniformInt(0, 7)));  // 8 districts, realistic multiplicity
  }
  for (auto _ : state) {
    core::UserGrouping grouping = core::GroupUser(user, db);
    benchmark::DoNotOptimize(grouping);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupUser)->Arg(16)->Arg(64)->Arg(256);

void BM_DatasetGeneration(benchmark::State& state) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  double scale = static_cast<double>(state.range(0)) / 1000.0;
  for (auto _ : state) {
    twitter::DatasetGenerator generator(
        &db, twitter::DatasetGenerator::KoreanConfig(scale));
    auto data = generator.Generate();
    benchmark::DoNotOptimize(data);
    state.counters["users"] =
        static_cast<double>(data.dataset.users().size());
  }
}
BENCHMARK(BM_DatasetGeneration)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_FullStudy(benchmark::State& state) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  double scale = static_cast<double>(state.range(0)) / 1000.0;
  twitter::DatasetGenerator generator(
      &db, twitter::DatasetGenerator::KoreanConfig(scale));
  auto data = generator.Generate();
  core::CorrelationStudy study(&db);
  for (auto _ : state) {
    core::StudyResult result = study.Run(data.dataset);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.dataset.users().size()));
}
BENCHMARK(BM_FullStudy)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

// Serial-vs-parallel comparison on the default benchmark corpus: Arg is
// the thread count (1 = the serial code path). Thread counts beyond the
// machine's cores measure oversubscription, not speedup.
void BM_FullStudyThreads(benchmark::State& state) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  twitter::DatasetGenerator generator(
      &db, twitter::DatasetGenerator::KoreanConfig(0.1));
  auto data = generator.Generate();
  core::CorrelationStudyOptions options;
  options.threads = static_cast<int>(state.range(0));
  core::CorrelationStudy study(&db, options);
  for (auto _ : state) {
    core::StudyResult result = study.Run(data.dataset);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.dataset.users().size()));
  state.counters["threads"] = static_cast<double>(options.threads);
}
BENCHMARK(BM_FullStudyThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

const twitter::Dataset& ScanCorpus() {
  static const twitter::GeneratedData& data = *new twitter::GeneratedData(
      [] {
        const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
        auto config = twitter::DatasetGenerator::KoreanConfig(0.2);
        config.plain_tweet_sample = 0.05;  // ~100k materialized tweets
        return twitter::DatasetGenerator(&db, config).Generate();
      }());
  return data.dataset;
}

void BM_ScanRowStore(benchmark::State& state) {
  const twitter::Dataset& dataset = ScanCorpus();
  for (auto _ : state) {
    int64_t gps = 0;
    SimTime latest = 0;
    for (const twitter::Tweet& tweet : dataset.tweets()) {
      if (tweet.gps.has_value()) {
        ++gps;
        latest = std::max(latest, tweet.time);
      }
    }
    benchmark::DoNotOptimize(gps);
    benchmark::DoNotOptimize(latest);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.tweets().size()));
}
BENCHMARK(BM_ScanRowStore);

void BM_ScanColumnStore(benchmark::State& state) {
  static const twitter::TweetColumnStore& store =
      *new twitter::TweetColumnStore(
          twitter::TweetColumnStore::FromDataset(ScanCorpus()));
  for (auto _ : state) {
    int64_t gps = 0;
    SimTime latest = 0;
    const auto& times = store.times();
    store.ForEachGps([&](size_t i, const geo::LatLng&) {
      ++gps;
      latest = std::max(latest, times[i]);
    });
    benchmark::DoNotOptimize(gps);
    benchmark::DoNotOptimize(latest);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(store.size()));
  state.counters["bytes"] = static_cast<double>(store.MemoryBytes());
}
BENCHMARK(BM_ScanColumnStore);

// Console output plus a side-channel collecting (name, iterations,
// ns/op) per measured run for the --json file. Aggregate rows (mean/
// median/stddev under --benchmark_repetitions) are display-only.
class TeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred ||
          run.iterations <= 0) {
        continue;
      }
      stir::bench::BenchJsonEntry entry;
      entry.name = run.benchmark_name();
      entry.iterations = run.iterations;
      entry.ns_per_op = run.real_accumulated_time * 1e9 /
                        static_cast<double>(run.iterations);
      entries_.push_back(std::move(entry));
    }
  }

  const std::vector<stir::bench::BenchJsonEntry>& entries() const {
    return entries_;
  }

 private:
  std::vector<stir::bench::BenchJsonEntry> entries_;
};

}  // namespace

int main(int argc, char** argv) {
  // Pull out --json <path> before google-benchmark rejects it as an
  // unrecognized flag.
  std::string json_path;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  int passthrough_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&passthrough_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(passthrough_argc,
                                             passthrough.data())) {
    return 1;
  }
  TeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() &&
      !stir::bench::WriteBenchJson(json_path, reporter.entries())) {
    return 1;
  }
  return 0;
}
