// Performance microbenchmarks (google-benchmark): throughput of the hot
// components — reverse geocoding, profile parsing, grouping, and the
// end-to-end study — so regressions in the substrate are visible.
//
// `--json <path>` (consumed before google-benchmark sees the argv)
// additionally writes the machine-readable shape shared with
// bench_serve: {"benchmarks":[{"name","iterations","ns_per_op"}]} plus a
// "process" object with peak RSS and peak mapped corpus bytes.
//
// `--scale S` switches to the out-of-core mode: stream-generate a v3
// arena corpus at Korean-preset scale S (1.0 = 52,200 users) to a temp
// file, run the full columnar study off the mmapped view, and gate peak
// RSS against half the on-disk corpus size (the working set must not be
// resident). S = 20 reproduces the million-user acceptance run.

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>

#include "bench_util.h"
#include "core/study.h"
#include "geo/reverse_geocoder.h"
#include "io/corpus.h"
#include "text/location_parser.h"
#include "twitter/column_store.h"
#include "twitter/generator.h"

namespace {

using namespace stir;

void BM_ReverseGeocode(benchmark::State& state) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  geo::ReverseGeocoderOptions options;
  options.enable_cache = state.range(0) != 0;
  geo::ReverseGeocoder geocoder(&db, options);
  Rng rng(1);
  std::vector<geo::LatLng> points;
  for (int i = 0; i < 4096; ++i) {
    auto id = static_cast<geo::RegionId>(
        rng.UniformInt(0, static_cast<int64_t>(db.size()) - 1));
    points.push_back(db.SamplePointIn(id, rng));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto result = geocoder.Reverse(points[i++ & 4095]);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReverseGeocode)->Arg(0)->Arg(1);

void BM_ReverseGeocodeXmlRoundTrip(benchmark::State& state) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  geo::ReverseGeocoderOptions options;
  options.enable_cache = false;
  geo::ReverseGeocoder geocoder(&db, options);
  geo::LatLng p{37.5170, 126.8666};
  for (auto _ : state) {
    auto xml = geocoder.ReverseToXml(p);
    auto parsed = geo::ReverseGeocoder::ParseResponse(*xml);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReverseGeocodeXmlRoundTrip);

void BM_ProfileLocationParse(benchmark::State& state) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  text::LocationParser parser(&db);
  const std::vector<std::string> samples = {
      "Seoul Yangcheon-gu", "Uiwang-si",     "Jung-gu",
      "37.517000,126.866600", "Earth",        "Seoul",
      "Gold Coast Australia / Jung-gu",       "seoul mapo-gu, korea",
  };
  size_t i = 0;
  for (auto _ : state) {
    auto parsed = parser.Parse(samples[i++ % samples.size()]);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileLocationParse);

void BM_GroupUser(benchmark::State& state) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  Rng rng(2);
  core::RefinedUser user;
  user.user = 1;
  user.profile_region = 0;
  for (int64_t i = 0; i < state.range(0); ++i) {
    user.tweet_regions.push_back(static_cast<geo::RegionId>(
        rng.UniformInt(0, 7)));  // 8 districts, realistic multiplicity
  }
  for (auto _ : state) {
    core::UserGrouping grouping = core::GroupUser(user, db);
    benchmark::DoNotOptimize(grouping);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GroupUser)->Arg(16)->Arg(64)->Arg(256);

void BM_DatasetGeneration(benchmark::State& state) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  double scale = static_cast<double>(state.range(0)) / 1000.0;
  for (auto _ : state) {
    twitter::DatasetGenerator generator(
        &db, twitter::DatasetGenerator::KoreanConfig(scale));
    auto data = generator.Generate();
    benchmark::DoNotOptimize(data);
    state.counters["users"] =
        static_cast<double>(data.dataset.users().size());
  }
}
BENCHMARK(BM_DatasetGeneration)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_FullStudy(benchmark::State& state) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  double scale = static_cast<double>(state.range(0)) / 1000.0;
  twitter::DatasetGenerator generator(
      &db, twitter::DatasetGenerator::KoreanConfig(scale));
  auto data = generator.Generate();
  core::CorrelationStudy study(&db);
  for (auto _ : state) {
    core::StudyResult result = study.Run(data.dataset);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.dataset.users().size()));
}
BENCHMARK(BM_FullStudy)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

// Serial-vs-parallel comparison on the default benchmark corpus: Arg is
// the thread count (1 = the serial code path). Thread counts beyond the
// machine's cores measure oversubscription, not speedup.
void BM_FullStudyThreads(benchmark::State& state) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  twitter::DatasetGenerator generator(
      &db, twitter::DatasetGenerator::KoreanConfig(0.1));
  auto data = generator.Generate();
  StudyConfig options;
  options.threads = static_cast<int>(state.range(0));
  core::CorrelationStudy study(&db, options);
  for (auto _ : state) {
    core::StudyResult result = study.Run(data.dataset);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.dataset.users().size()));
  state.counters["threads"] = static_cast<double>(options.threads);
}
BENCHMARK(BM_FullStudyThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Full study off the mmapped v3 arena view (generated once per Arg into
// a temp file): the zero-copy counterpart of BM_FullStudy, so the two
// rows price the columnar path against the row-store baseline directly.
void BM_FullStudyArena(benchmark::State& state) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  double scale = static_cast<double>(state.range(0)) / 1000.0;
  std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("stir_bench_perf_arena_" + std::to_string(state.range(0)) + ".corpus");
  {
    twitter::DatasetGenerator generator(
        &db, twitter::DatasetGenerator::KoreanConfig(scale));
    io::CorpusWriter writer(path.string());
    auto info = generator.GenerateToCorpus(&writer);
    if (!info.ok()) {
      state.SkipWithError(info.status().ToString().c_str());
      return;
    }
    auto stats = writer.Finish();
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
  }
  {
    auto view = io::CorpusView::Open(path.string());
    if (!view.ok()) {
      state.SkipWithError(view.status().ToString().c_str());
      return;
    }
    core::CorrelationStudy study(&db);
    for (auto _ : state) {
      core::StudyResult result = study.Run(*view);
      benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(view->user_count()));
    state.counters["mapped_bytes"] =
        static_cast<double>(view->bytes_mapped());
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
}
BENCHMARK(BM_FullStudyArena)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

const twitter::Dataset& ScanCorpus() {
  static const twitter::GeneratedData& data = *new twitter::GeneratedData(
      [] {
        const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
        auto config = twitter::DatasetGenerator::KoreanConfig(0.2);
        config.plain_tweet_sample = 0.05;  // ~100k materialized tweets
        return twitter::DatasetGenerator(&db, config).Generate();
      }());
  return data.dataset;
}

void BM_ScanRowStore(benchmark::State& state) {
  const twitter::Dataset& dataset = ScanCorpus();
  for (auto _ : state) {
    int64_t gps = 0;
    SimTime latest = 0;
    for (const twitter::Tweet& tweet : dataset.tweets()) {
      if (tweet.gps.has_value()) {
        ++gps;
        latest = std::max(latest, tweet.time);
      }
    }
    benchmark::DoNotOptimize(gps);
    benchmark::DoNotOptimize(latest);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.tweets().size()));
}
BENCHMARK(BM_ScanRowStore);

void BM_ScanColumnStore(benchmark::State& state) {
  static const twitter::TweetColumnStore& store =
      *new twitter::TweetColumnStore(
          twitter::TweetColumnStore::FromDataset(ScanCorpus()));
  for (auto _ : state) {
    int64_t gps = 0;
    SimTime latest = 0;
    const auto& times = store.times();
    store.ForEachGps([&](size_t i, const geo::LatLng&) {
      ++gps;
      latest = std::max(latest, times[i]);
    });
    benchmark::DoNotOptimize(gps);
    benchmark::DoNotOptimize(latest);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(store.size()));
  state.counters["bytes"] = static_cast<double>(store.MemoryBytes());
}
BENCHMARK(BM_ScanColumnStore);

// Console output plus a side-channel collecting (name, iterations,
// ns/op) per measured run for the --json file. Aggregate rows (mean/
// median/stddev under --benchmark_repetitions) are display-only.
class TeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred ||
          run.iterations <= 0) {
        continue;
      }
      stir::bench::BenchJsonEntry entry;
      entry.name = run.benchmark_name();
      entry.iterations = run.iterations;
      entry.ns_per_op = run.real_accumulated_time * 1e9 /
                        static_cast<double>(run.iterations);
      entries_.push_back(std::move(entry));
    }
  }

  const std::vector<stir::bench::BenchJsonEntry>& entries() const {
    return entries_;
  }

 private:
  std::vector<stir::bench::BenchJsonEntry> entries_;
};

// Out-of-core acceptance mode (--scale S): stream-generate a v3 arena
// corpus at Korean-preset scale S straight to disk, run the full
// columnar study off the mmapped view, and require peak RSS to stay
// under half the on-disk corpus size. Returns a process exit code.
int RunScaleMode(double scale, const std::string& json_path) {
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  std::filesystem::path path =
      std::filesystem::temp_directory_path() / "stir_bench_perf_scale.corpus";
  std::printf("out-of-core arena study, Korean preset at scale %.2f\n",
              scale);

  auto gen_start = std::chrono::steady_clock::now();
  stir::io::CorpusWriteStats stats;
  {
    twitter::DatasetGeneratorOptions options =
        twitter::DatasetGenerator::KoreanConfig(scale);
    // The preset materializes only a 0.05% sample of plain tweets so
    // in-memory runs stay small; the out-of-core mode is about the tweet
    // columns dominating the snapshot, so materialize 10% (at scale 20
    // that is ~22M tweet rows, a multi-GB corpus).
    options.plain_tweet_sample = 0.1;
    twitter::DatasetGenerator generator(&db, options);
    stir::io::CorpusWriter writer(path.string());
    auto info = generator.GenerateToCorpus(&writer);
    if (!info.ok()) {
      std::fprintf(stderr, "generate failed: %s\n",
                   info.status().ToString().c_str());
      return 1;
    }
    auto finished = writer.Finish();
    if (!finished.ok()) {
      std::fprintf(stderr, "corpus write failed: %s\n",
                   finished.status().ToString().c_str());
      return 1;
    }
    stats = *finished;
  }
  double gen_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - gen_start)
                     .count();
  std::printf("  generated %lld users, %lld total tweets "
              "(%lld materialized, %lld GPS) -> %lld bytes in %.1f s\n",
              static_cast<long long>(stats.users),
              static_cast<long long>(stats.total_tweets),
              static_cast<long long>(stats.tweets),
              static_cast<long long>(stats.gps_tweets),
              static_cast<long long>(stats.file_bytes), gen_s);

  auto study_start = std::chrono::steady_clock::now();
  int64_t mapped_bytes = 0;
  int64_t final_users = 0;
  {
    auto view = stir::io::CorpusView::Open(path.string());
    if (!view.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   view.status().ToString().c_str());
      return 1;
    }
    mapped_bytes = view->bytes_mapped();
    core::CorrelationStudy study(&db);
    core::StudyResult result = study.Run(*view);
    final_users = result.final_users;
  }
  double study_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - study_start)
                       .count();
  std::error_code ec;
  std::filesystem::remove(path, ec);

  int64_t peak_rss = stir::bench::CurrentPeakRssBytes();
  std::printf("  full study: %.1f s (%lld final users), "
              "peak RSS %lld bytes, corpus %lld bytes, mapped %lld bytes\n",
              study_s, static_cast<long long>(final_users),
              static_cast<long long>(peak_rss),
              static_cast<long long>(stats.file_bytes),
              static_cast<long long>(mapped_bytes));
  bool ok = stir::bench::Check(
      peak_rss * 2 < stats.file_bytes,
      "peak RSS stays below half the on-disk corpus size");

  if (!json_path.empty()) {
    std::vector<stir::bench::BenchJsonEntry> entries;
    stir::bench::BenchJsonEntry gen;
    gen.name = "ArenaGenerate/scale";
    gen.iterations = 1;
    gen.ns_per_op = gen_s * 1e9;
    gen.extra.emplace_back("users", static_cast<double>(stats.users));
    gen.extra.emplace_back("corpus_bytes",
                           static_cast<double>(stats.file_bytes));
    entries.push_back(std::move(gen));
    stir::bench::BenchJsonEntry run;
    run.name = "ArenaFullStudy/scale";
    run.iterations = 1;
    run.ns_per_op = study_s * 1e9;
    run.extra.emplace_back("final_users", static_cast<double>(final_users));
    entries.push_back(std::move(run));
    if (!stir::bench::WriteBenchJson(json_path, entries, mapped_bytes)) {
      return 1;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Pull out --json <path> and --scale <S> before google-benchmark
  // rejects them as unrecognized flags.
  std::string json_path;
  double scale = 0.0;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::string_view(argv[i]) == "--scale" && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (scale > 0.0) return RunScaleMode(scale, json_path);
  int passthrough_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&passthrough_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(passthrough_argc,
                                             passthrough.data())) {
    return 1;
  }
  TeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() &&
      !stir::bench::WriteBenchJson(json_path, reporter.entries())) {
    return 1;
  }
  return 0;
}
