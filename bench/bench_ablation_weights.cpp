// Ablation (DESIGN.md §5): granularity of the reliability weight used by
// the event detector — per-user smoothed estimate vs the Top-k group
// prior vs a single global prior. Per-user and per-group should both
// beat unweighted; global weighting is a no-op for relative weights and
// must match the unweighted baseline.

#include "bench_util.h"
#include "core/reliability.h"
#include "event/event_sim.h"
#include "event/toretter.h"

int main(int argc, char** argv) {
  using namespace stir;
  double scale = bench::ScaleFromArgs(argc, argv, 0.5);
  bench::PrintHeader("Ablation — reliability weight granularity",
                     "per-user vs per-group vs global, profile-only source");

  bench::StudyRun run = bench::RunKoreanStudy(scale);
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  core::ReliabilityModel reliability =
      core::ReliabilityModel::FromGroupings(run.result.groupings);
  std::unordered_map<twitter::UserId, geo::RegionId> profiles;
  for (const core::RefinedUser& user : run.result.refined) {
    profiles.emplace(user.user, user.profile_region);
  }

  const geo::LatLng epicenters[] = {
      {37.55, 127.00}, {35.20, 129.00}, {36.35, 127.40}, {35.85, 128.60},
      {37.30, 127.00}, {35.15, 126.90}, {36.60, 127.50}, {36.00, 129.35},
  };
  event::EventSimulator simulator(&db, &run.data.truth);

  struct Config {
    const char* label;
    bool weighted;
    core::ReliabilityGranularity granularity;
  };
  const Config configs[] = {
      {"unweighted", false, core::ReliabilityGranularity::kGlobal},
      {"weighted / per-user", true,
       core::ReliabilityGranularity::kPerUser},
      {"weighted / per-group", true,
       core::ReliabilityGranularity::kPerGroup},
      {"weighted / global", true, core::ReliabilityGranularity::kGlobal},
  };
  double mean_error[4] = {};
  int events = 0;
  for (size_t e = 0; e < sizeof(epicenters) / sizeof(epicenters[0]); ++e) {
    event::EventSpec spec;
    spec.epicenter = epicenters[e];
    spec.felt_radius_km = 150.0;
    spec.response_rate = 0.45;
    Rng sim_rng(2000 + e);
    auto reports =
        simulator.Simulate(spec, run.data.dataset.users(), sim_rng);
    if (reports.size() < 25) continue;
    ++events;
    for (size_t c = 0; c < 4; ++c) {
      event::ToretterOptions options;
      options.source = event::LocationSource::kProfileOnly;
      options.estimator = event::LocationEstimator::kWeightedCentroid;
      options.reliability_weighted = configs[c].weighted;
      options.reliability_granularity = configs[c].granularity;
      event::ToretterDetector detector(&db, options);
      detector.set_profile_regions(&profiles);
      detector.set_reliability(&reliability);
      Rng rng(5);
      auto estimate = detector.EstimateLocation(reports, rng);
      mean_error[c] += estimate.ok()
                           ? geo::HaversineKm(estimate->location,
                                              spec.epicenter)
                           : 500.0;
    }
  }
  for (double& e : mean_error) e /= std::max(1, events);

  std::printf("%d events\n\n%-24s %14s\n", events, "weighting",
              "mean error km");
  for (size_t c = 0; c < 4; ++c) {
    std::printf("%-24s %14.1f\n", configs[c].label, mean_error[c]);
  }
  std::printf("\n");

  bool ok = true;
  std::printf("shape checks:\n");
  ok &= bench::Check(events >= 5, "enough events simulated");
  ok &= bench::Check(mean_error[1] < mean_error[0],
                     "per-user weighting beats unweighted");
  ok &= bench::Check(mean_error[2] < mean_error[0],
                     "group-prior weighting beats unweighted");
  ok &= bench::Check(std::fabs(mean_error[3] - mean_error[0]) < 0.5,
                     "global weighting == unweighted (uniform weights "
                     "cancel in the centroid)");
  return ok ? 0 : 1;
}
