// Ablation (paper §V future work, made concrete): does the reliability
// weight the study derives improve event-location estimation when the
// detector must fall back on profile locations? We simulate many
// earthquakes across Korea and compare mean epicenter error across
// source/estimator/weighting configurations (paper Fig. 2 is the
// Toretter analogue of this evaluation).

#include <vector>

#include "bench_util.h"
#include "core/reliability.h"
#include "event/event_sim.h"
#include "event/toretter.h"

int main(int argc, char** argv) {
  using namespace stir;
  double scale = bench::ScaleFromArgs(argc, argv, 0.5);
  bench::PrintHeader(
      "Ablation — reliability-weighted event location estimation",
      "mean epicenter error (km) over simulated earthquakes");

  bench::StudyRun run = bench::RunKoreanStudy(scale);
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  core::ReliabilityModel reliability =
      core::ReliabilityModel::FromGroupings(run.result.groupings);
  std::unordered_map<twitter::UserId, geo::RegionId> profiles;
  for (const core::RefinedUser& user : run.result.refined) {
    profiles.emplace(user.user, user.profile_region);
  }
  std::printf("population %zu users; %zu with studied profiles; global "
              "reliability %.3f\n\n",
              run.data.dataset.users().size(), profiles.size(),
              reliability.global_weight());

  // Epicenters spread across the peninsula.
  const geo::LatLng epicenters[] = {
      {37.55, 127.00}, {35.20, 129.00}, {36.35, 127.40}, {35.85, 128.60},
      {37.30, 127.00}, {35.15, 126.90}, {36.60, 127.50}, {37.75, 128.90},
      {35.55, 129.30}, {36.00, 129.35}, {37.45, 126.70}, {35.80, 127.15},
  };
  event::EventSimulator simulator(&db, &run.data.truth);

  struct Config {
    const char* label;
    event::LocationSource source;
    event::LocationEstimator estimator;
    bool weighted;
  };
  const Config configs[] = {
      {"gps-only / centroid", event::LocationSource::kGpsOnly,
       event::LocationEstimator::kWeightedCentroid, false},
      {"gps-only / kalman", event::LocationSource::kGpsOnly,
       event::LocationEstimator::kKalman, false},
      {"gps-only / particle", event::LocationSource::kGpsOnly,
       event::LocationEstimator::kParticle, false},
      {"profile / centroid / unweighted",
       event::LocationSource::kProfileOnly,
       event::LocationEstimator::kWeightedCentroid, false},
      {"profile / centroid / weighted", event::LocationSource::kProfileOnly,
       event::LocationEstimator::kWeightedCentroid, true},
      {"profile / particle / unweighted",
       event::LocationSource::kProfileOnly,
       event::LocationEstimator::kParticle, false},
      {"profile / particle / weighted", event::LocationSource::kProfileOnly,
       event::LocationEstimator::kParticle, true},
      {"gps+profile / particle / unweighted",
       event::LocationSource::kGpsWithProfileFallback,
       event::LocationEstimator::kParticle, false},
      {"gps+profile / particle / weighted",
       event::LocationSource::kGpsWithProfileFallback,
       event::LocationEstimator::kParticle, true},
  };

  double mean_error[sizeof(configs) / sizeof(configs[0])] = {};
  int events_used = 0;
  int64_t total_reports = 0, total_gps = 0;
  for (size_t e = 0; e < sizeof(epicenters) / sizeof(epicenters[0]); ++e) {
    event::EventSpec spec;
    spec.epicenter = epicenters[e];
    spec.felt_radius_km = 150.0;
    spec.response_rate = 0.45;
    Rng sim_rng(1000 + e);
    auto reports = simulator.Simulate(spec, run.data.dataset.users(),
                                      sim_rng);
    if (reports.size() < 25) continue;
    ++events_used;
    total_reports += static_cast<int64_t>(reports.size());
    for (const auto& r : reports) total_gps += r.gps.has_value();

    for (size_t c = 0; c < sizeof(configs) / sizeof(configs[0]); ++c) {
      event::ToretterOptions options;
      options.source = configs[c].source;
      options.estimator = configs[c].estimator;
      options.reliability_weighted = configs[c].weighted;
      event::ToretterDetector detector(&db, options);
      detector.set_profile_regions(&profiles);
      detector.set_reliability(&reliability);
      Rng est_rng(7);
      auto estimate = detector.EstimateLocation(reports, est_rng);
      double error = estimate.ok()
                         ? geo::HaversineKm(estimate->location,
                                            spec.epicenter)
                         : 500.0;  // penalty for no estimate
      mean_error[c] += error;
    }
  }
  for (double& error : mean_error) {
    error /= std::max(1, events_used);
  }
  std::printf("%d events used; %.0f reports/event avg, %.0f%% with GPS\n\n",
              events_used,
              static_cast<double>(total_reports) / std::max(1, events_used),
              100.0 * static_cast<double>(total_gps) /
                  std::max<int64_t>(1, total_reports));
  std::printf("%-38s %14s\n", "configuration", "mean error km");
  for (size_t c = 0; c < sizeof(configs) / sizeof(configs[0]); ++c) {
    std::printf("%-38s %14.1f\n", configs[c].label, mean_error[c]);
  }
  std::printf("\n");

  bool ok = true;
  std::printf("shape checks:\n");
  ok &= bench::Check(events_used >= 8, "enough events simulated");
  // GPS (the credible attribute) beats raw profile locations.
  ok &= bench::Check(mean_error[2] < mean_error[5],
                     "GPS particle beats unweighted-profile particle");
  // The paper's thesis: weighting profile locations by measured
  // reliability improves the profile-based estimate.
  ok &= bench::Check(mean_error[4] <= mean_error[3] * 1.02,
                     "weighted profile centroid <= unweighted (+2% slack)");
  ok &= bench::Check(mean_error[6] <= mean_error[5] * 1.02,
                     "weighted profile particle <= unweighted (+2% slack)");
  ok &= bench::Check(mean_error[8] <= mean_error[7] * 1.05,
                     "weighting never hurts the gps+fallback mix (5% slack)");
  return ok ? 0 : 1;
}
