// Extension bench — continuous concentration view of the Top-k groups:
// Shannon entropy / Gini / matched share per group, and the rank-vs-
// entropy correlation. This is the paper's Fig. 6 story ("more places ->
// weaker correlation") restated with scale-free statistics.

#include "bench_util.h"
#include "core/concentration.h"

int main(int argc, char** argv) {
  using namespace stir;
  double scale = bench::ScaleFromArgs(argc, argv, 1.0);
  bench::PrintHeader("Extension — location concentration per group",
                     "entropy / matched share per Top-k group + Spearman");
  bench::StudyRun run = bench::RunKoreanStudy(scale);
  auto analysis = core::AnalyzeConcentration(run.result.groupings);
  if (!analysis.ok()) {
    std::printf("analysis failed: %s\n",
                analysis.status().ToString().c_str());
    return 1;
  }

  std::printf("%-8s %14s %16s\n", "group", "mean entropy", "matched share");
  for (int g = 0; g < core::kNumTopKGroups; ++g) {
    if (run.result.groups[g].users == 0) continue;
    std::printf("%-8s %14.3f %15.1f%%\n",
                core::TopKGroupToString(static_cast<core::TopKGroup>(g)),
                analysis->mean_entropy[g],
                analysis->mean_matched_share[g] * 100.0);
  }
  std::printf("\nSpearman(rank, entropy)        = %+.3f\n",
              analysis->rank_entropy_spearman);
  std::printf("Spearman(matched share, -rank) = %+.3f\n\n",
              analysis->share_rank_spearman);

  bool ok = true;
  std::printf("shape checks:\n");
  ok &= bench::Check(analysis->mean_entropy[0] < analysis->mean_entropy[2],
                     "Top-1 users concentrate more than Top-3 users");
  ok &= bench::Check(
      analysis->mean_matched_share[0] > 0.5,
      "Top-1 users post most tweets from the profile district "
      "(paper: 'nearly 50% of users post the most of their tweets in "
      "the profile locations')");
  ok &= bench::Check(
      analysis->mean_matched_share[static_cast<int>(
          core::TopKGroup::kNone)] == 0.0,
      "None users have exactly zero matched share");
  ok &= bench::Check(analysis->rank_entropy_spearman > 0.3,
                     "deeper ranks correlate with dispersed tweeting");
  ok &= bench::Check(analysis->share_rank_spearman > 0.5,
                     "matched share anti-correlates with rank");
  return ok ? 0 : 1;
}
