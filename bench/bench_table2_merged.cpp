// Table II (paper §III.B): merged and ordered strings with multiplicity
// "(n)", the matched-string rank, and the induced Top-k classification of
// the paper's two example users.

#include "bench_util.h"
#include "core/grouping.h"
#include "core/location_string.h"

int main(int argc, char** argv) {
  using namespace stir;
  bench::PrintHeader("Table II — merged and ordered strings",
                     "the paper's user 123/71 examples + live corpus rows");

  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  auto region = [&](const char* state, const char* county) {
    auto id = db.FindCounty(state, county);
    if (!id.ok()) {
      std::printf("gazetteer miss: %s %s\n", state, county);
      std::exit(1);
    }
    return *id;
  };

  // Paper user "123...": profile Yangcheon-gu, tweets 3x Yangcheon-gu,
  // 2x Jung-gu, 1x Seodaemun-gu -> matched string first -> Top-1.
  core::RefinedUser user123;
  user123.user = 123;
  user123.profile_region = region("Seoul", "Yangcheon-gu");
  user123.tweet_regions = {
      region("Seoul", "Yangcheon-gu"), region("Seoul", "Jung-gu"),
      region("Seoul", "Yangcheon-gu"), region("Seoul", "Seodaemun-gu"),
      region("Seoul", "Jung-gu"),      region("Seoul", "Yangcheon-gu"),
  };
  // Paper user "71...": profile Uiwang-si, tweets 3x Seongnam-si,
  // 2x Uiwang-si -> matched string second -> Top-2.
  core::RefinedUser user71;
  user71.user = 71;
  user71.profile_region = region("Gyeonggi-do", "Uiwang-si");
  user71.tweet_regions = {
      region("Gyeonggi-do", "Seongnam-si"), region("Gyeonggi-do", "Uiwang-si"),
      region("Gyeonggi-do", "Seongnam-si"), region("Gyeonggi-do", "Uiwang-si"),
      region("Gyeonggi-do", "Seongnam-si"),
  };

  bool ok = true;
  for (const core::RefinedUser& user : {user123, user71}) {
    core::UserGrouping grouping = core::GroupUser(user, db);
    std::printf("user %lld => rank %d => %s\n",
                static_cast<long long>(user.user), grouping.match_rank,
                core::TopKGroupToString(grouping.group));
    for (const auto& merged : grouping.ordered) {
      std::printf("  %s\n", merged.ToString().c_str());
    }
  }
  {
    core::UserGrouping g123 = core::GroupUser(user123, db);
    core::UserGrouping g71 = core::GroupUser(user71, db);
    std::printf("\nshape checks (paper: user 123 -> Top-1, user 71 -> "
                "Top-2):\n");
    ok &= bench::Check(g123.group == core::TopKGroup::kTop1,
                       "paper example user 123 classified Top-1");
    ok &= bench::Check(g123.ordered.front().count == 3,
                       "user 123 matched string carries count (3)");
    ok &= bench::Check(g71.group == core::TopKGroup::kTop2,
                       "paper example user 71 classified Top-2");
    ok &= bench::Check(g71.ordered.front().record.tweet_county ==
                           "Seongnam-si",
                       "user 71 top string is the non-matched district");
  }

  // A live Table II from the synthetic corpus.
  double scale = bench::ScaleFromArgs(argc, argv, 0.2);
  bench::StudyRun run = bench::RunKoreanStudy(scale);
  std::printf("\nlive merged lists (scale %.2f), first Top-2 user:\n",
              scale);
  for (const auto& grouping : run.result.groupings) {
    if (grouping.group != core::TopKGroup::kTop2) continue;
    for (const auto& merged : grouping.ordered) {
      std::printf("  %s\n", merged.ToString().c_str());
    }
    break;
  }
  return ok ? 0 : 1;
}
