// Extension bench — Toretter's second scenario (typhoon trajectory):
// track a moving event from citizen GPS fixes with the constant-velocity
// Kalman filter, and compare against (a) raw fixes and (b) the static
// (constant-position) filter. The paper's related-work section credits
// Toretter with both earthquake centers and typhoon trajectories; this
// regenerates the trajectory half on the synthetic population.

#include "bench_util.h"
#include "event/kalman.h"
#include "event/trajectory.h"

int main(int argc, char** argv) {
  using namespace stir;
  double scale = bench::ScaleFromArgs(argc, argv, 0.5);
  bench::PrintHeader("Extension — typhoon trajectory tracking",
                     "constant-velocity Kalman vs raw fixes vs static "
                     "filter; mean distance to the true eye (km)");

  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  twitter::DatasetGenerator generator(
      &db, twitter::DatasetGenerator::KoreanConfig(scale));
  twitter::GeneratedData data = generator.Generate();

  // Three historical-shaped tracks crossing the peninsula.
  struct Track {
    geo::LatLng start;
    double bearing;
  };
  const Track tracks[] = {
      {{33.8, 127.2}, 25.0},   // up the west coast
      {{34.2, 129.2}, 350.0},  // east coast, curving north
      {{33.5, 126.0}, 45.0},   // across Jeju to the mainland
  };
  double raw_error = 0.0, cv_error = 0.0, static_error = 0.0;
  int64_t total_fixes = 0;
  int tracks_used = 0;
  for (size_t i = 0; i < sizeof(tracks) / sizeof(tracks[0]); ++i) {
    event::MovingEventSpec spec;
    spec.start = tracks[i].start;
    spec.bearing_deg = tracks[i].bearing;
    spec.speed_kmh = 30.0;
    spec.duration_seconds = 18 * kSecondsPerHour;
    spec.response_rate = 0.10;
    spec.felt_radius_km = 130.0;
    // Eyewitness posts during a named storm geotag far above baseline.
    event::MovingEventSimulator simulator(&db, &data.truth,
                                          /*event_geotag_boost=*/10.0);
    Rng rng(3000 + i);
    auto reports = simulator.Simulate(spec, data.dataset.users(), rng);

    event::TrajectoryKalman cv;
    event::KalmanFilter2D fixed(/*process_noise_deg2=*/0.0);
    constexpr double kSigmaKm = 45.0;
    constexpr double kDegPerKm = 1.0 / 111.32;
    double r = (kSigmaKm * kDegPerKm) * (kSigmaKm * kDegPerKm);
    int64_t fixes = 0;
    double raw = 0.0, cv_e = 0.0, fixed_e = 0.0;
    for (const event::WitnessReport& report : reports) {
      if (!report.gps.has_value()) continue;
      cv.Update(report.time, *report.gps, r);
      fixed.Update(*report.gps, r);
      geo::LatLng truth = event::MovingEventPosition(spec, report.time);
      raw += geo::HaversineKm(*report.gps, truth);
      cv_e += geo::HaversineKm(cv.position(), truth);
      fixed_e += geo::HaversineKm(fixed.state(), truth);
      ++fixes;
    }
    if (fixes < 25) continue;
    ++tracks_used;
    total_fixes += fixes;
    raw_error += raw / static_cast<double>(fixes);
    cv_error += cv_e / static_cast<double>(fixes);
    static_error += fixed_e / static_cast<double>(fixes);
  }
  raw_error /= std::max(1, tracks_used);
  cv_error /= std::max(1, tracks_used);
  static_error /= std::max(1, tracks_used);

  std::printf("%d tracks, %lld GPS fixes total\n\n", tracks_used,
              static_cast<long long>(total_fixes));
  std::printf("%-34s %10.1f\n", "raw fixes (witness positions)", raw_error);
  std::printf("%-34s %10.1f\n", "constant-velocity Kalman", cv_error);
  std::printf("%-34s %10.1f\n", "static Kalman (wrong model)",
              static_error);
  std::printf("\n");

  bool ok = true;
  std::printf("shape checks:\n");
  ok &= bench::Check(tracks_used >= 2, "enough tracks simulated");
  ok &= bench::Check(cv_error < raw_error,
                     "CV Kalman beats raw witness fixes");
  ok &= bench::Check(cv_error < static_error,
                     "CV Kalman beats the static-target filter on a "
                     "moving event");
  return ok ? 0 : 1;
}
