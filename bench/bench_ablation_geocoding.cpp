// Ablation (DESIGN.md §5): nearest-centroid (Voronoi) district
// assignment — what the library's reverse geocoder uses — versus
// explicit polygon footprints. The real Yahoo API had true admin
// polygons; if the study's numbers depended on the assignment model the
// reproduction would be fragile. Measures agreement on realistic GPS
// points and the Fig. 7 deltas when the whole study is re-run under
// polygon assignment.

#include "bench_util.h"
#include "geo/polygon_locator.h"

int main(int argc, char** argv) {
  using namespace stir;
  double scale = bench::ScaleFromArgs(argc, argv, 0.5);
  bench::PrintHeader("Ablation — Voronoi vs polygon district assignment",
                     "agreement on GPS points; Fig. 7 sensitivity");

  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  geo::PolygonLocator polygons(&db);

  // Agreement on the GPS points of a generated corpus.
  bench::StudyRun run = bench::RunKoreanStudy(scale);
  int64_t total = 0, agree = 0, voronoi_only = 0, polygon_only = 0;
  for (const twitter::Tweet& tweet : run.data.dataset.tweets()) {
    if (!tweet.gps.has_value()) continue;
    auto a = db.Locate(*tweet.gps);
    auto b = polygons.Locate(*tweet.gps);
    ++total;
    if (a.ok() && b.ok()) {
      agree += (*a == *b);
    } else if (a.ok()) {
      ++voronoi_only;
    } else if (b.ok()) {
      ++polygon_only;
    }
  }
  double agreement = static_cast<double>(agree) /
                     static_cast<double>(std::max<int64_t>(1, total));
  std::printf("corpus GPS points: %lld; assignment agreement: %.2f%%; "
              "voronoi-only %lld, polygon-only %lld\n",
              static_cast<long long>(total), agreement * 100.0,
              static_cast<long long>(voronoi_only),
              static_cast<long long>(polygon_only));

  // Border stress: uniform points over the coverage box, where the two
  // models genuinely disagree (the generated corpus stays inside the
  // Voronoi-safe radius by construction).
  Rng rng(42);
  geo::BoundingBox box = db.Coverage();
  int64_t stress_total = 0, stress_agree = 0;
  while (stress_total < 20000) {
    geo::LatLng p{rng.Uniform(box.min_lat, box.max_lat),
                  rng.Uniform(box.min_lng, box.max_lng)};
    auto a = db.Locate(p);
    auto b = polygons.Locate(p);
    if (!a.ok() || !b.ok()) continue;  // both reject the sea the same way
    ++stress_total;
    stress_agree += (*a == *b);
  }
  double stress_agreement = static_cast<double>(stress_agree) /
                            static_cast<double>(stress_total);
  std::printf("uniform border-stress points: %lld; agreement: %.2f%%\n\n",
              static_cast<long long>(stress_total),
              stress_agreement * 100.0);

  // Re-run the grouping under polygon assignment and compare Fig. 7.
  // The profile region comes from text, not geometry; only the tweet
  // regions are reassigned, straight from the raw GPS points.
  std::vector<core::RefinedUser> refined_polygon = run.result.refined;
  int64_t reassigned = 0;
  std::unordered_map<twitter::UserId, size_t> index;
  for (size_t i = 0; i < refined_polygon.size(); ++i) {
    index[refined_polygon[i].user] = i;
    refined_polygon[i].tweet_regions.clear();
  }
  for (const twitter::Tweet& tweet : run.data.dataset.tweets()) {
    if (!tweet.gps.has_value()) continue;
    auto it = index.find(tweet.user);
    if (it == index.end()) continue;
    auto located = polygons.Locate(*tweet.gps);
    if (!located.ok()) continue;
    refined_polygon[it->second].tweet_regions.push_back(*located);
    ++reassigned;
  }
  std::vector<core::UserGrouping> groupings =
      core::GroupUsers(refined_polygon, db);

  int64_t users_by_group[core::kNumTopKGroups] = {};
  int64_t classified = 0;
  for (const core::UserGrouping& grouping : groupings) {
    if (grouping.gps_tweet_count == 0) continue;
    ++users_by_group[static_cast<int>(grouping.group)];
    ++classified;
  }
  std::printf("reassigned %lld GPS tweets under polygon footprints\n",
              static_cast<long long>(reassigned));
  std::printf("%-8s %12s %12s %8s\n", "group", "voronoi%", "polygon%",
              "delta");
  double max_delta = 0.0;
  for (int g = 0; g < core::kNumTopKGroups; ++g) {
    double voronoi_share = run.result.groups[g].user_share * 100.0;
    double polygon_share =
        100.0 * static_cast<double>(users_by_group[g]) /
        static_cast<double>(std::max<int64_t>(1, classified));
    double delta = polygon_share - voronoi_share;
    max_delta = std::max(max_delta, std::fabs(delta));
    std::printf("%-8s %11.2f%% %11.2f%% %+7.2f\n",
                core::TopKGroupToString(static_cast<core::TopKGroup>(g)),
                voronoi_share, polygon_share, delta);
  }
  std::printf("\n");

  bool ok = true;
  std::printf("shape checks:\n");
  ok &= bench::Check(agreement > 0.95,
                     "assignment models agree on >95% of corpus GPS points");
  ok &= bench::Check(stress_agreement > 0.75,
                     "even uniform border-stress points mostly agree");
  ok &= bench::Check(max_delta < 3.0,
                     "Fig. 7 group shares move <3 points under polygon "
                     "assignment (conclusions are model-robust)");
  return ok ? 0 : 1;
}
