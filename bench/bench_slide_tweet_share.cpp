// Slide figure (STIR talk deck): number of *tweets* in each group (%).
// Because Top-k users by construction post many tweets from their
// matched district, the Top-1 group's tweet share exceeds its user share
// while the None group's falls below it.

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace stir;
  double scale = bench::ScaleFromArgs(argc, argv, 1.0);
  bench::PrintHeader("Slide — number of tweets in each group (%)",
                     "GPS-tweet share vs user share per group");
  bench::StudyRun run = bench::RunKoreanStudy(scale);
  const core::StudyResult& result = run.result;

  std::printf("%-8s %12s %10s %10s\n", "group", "gps_tweets", "tweet%",
              "user%");
  for (int g = 0; g < core::kNumTopKGroups; ++g) {
    std::printf("%-8s %12lld %9.2f%% %9.2f%%\n",
                core::TopKGroupToString(static_cast<core::TopKGroup>(g)),
                static_cast<long long>(result.groups[g].gps_tweets),
                result.groups[g].tweet_share * 100.0,
                result.groups[g].user_share * 100.0);
  }
  std::printf("\n");

  const core::GroupStats* groups = result.groups;
  int none = static_cast<int>(core::TopKGroup::kNone);
  bool ok = true;
  std::printf("shape checks:\n");
  ok &= bench::Check(groups[0].tweet_share > groups[0].user_share,
                     "Top-1 over-represented in tweets vs users");
  ok &= bench::Check(groups[none].tweet_share < groups[none].user_share,
                     "None under-represented in tweets vs users");
  ok &= bench::Check(groups[0].tweet_share > 0.35,
                     "Top-1 carries the plurality of GPS tweets");
  double total = 0.0;
  for (int g = 0; g < core::kNumTopKGroups; ++g) {
    total += result.groups[g].tweet_share;
  }
  ok &= bench::Check(total > 0.999 && total < 1.001,
                     "tweet shares sum to 100%");
  return ok ? 0 : 1;
}
