// bench_serve: load generator for the stir::serve query subsystem.
//
// Builds a StudyIndex from a Korean-preset corpus (default scale 2.0,
// about 104k generated users — twice the paper's crawl), then drives the
// in-process Server front-end with pipelined clients and reports
// throughput plus p50/p99 latency for micro-batch sizes 1, 4 and 16.
// A final scenario shrinks the admission queue to force overload and
// verifies the contract: explicit `overloaded` rejections, never a hang.
//
// The --net-json section drives the net::EpollServer TCP front end
// (DESIGN.md §13) with a single-threaded epoll client fleet (default
// 500 connections): a baseline pass, then a 2x-overload pass whose
// offered concurrency doubles past the admission queue, verifying that
// tiered shedding keeps p99 flat instead of letting latency collapse.
//
// A deadline sweep drives the same load with per-request "deadline_ms"
// budgets (tight -> 10x -> none) and verifies the contract from
// DESIGN.md §15: expired requests get the typed retryable
// `deadline_exceeded` envelope instead of a late answer, the counts
// reconcile exactly with the scheduler, and the p99 of the *surviving*
// requests stays flat instead of inheriting the queueing delay the
// expired ones would have eaten.
//
// Usage: bench_serve [scale] [--json <path>] [--clients N] [--requests N]
//                    [--conns N] [--net-requests N] [--net-json <path>]
//                    [--deadline-ms N]
//
// --json / --net-json write the machine-readable shape shared with
// bench_perf:  {"benchmarks":[{"name","iterations","ns_per_op",...}]}
// --deadline-ms sets the tightest budget of the sweep (default 1).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "net/epoll_server.h"
#include "obs/json.h"
#include "serve/server.h"
#include "serve/study_index.h"

namespace stir::bench {
namespace {

struct Args {
  double scale = 2.0;
  std::string json_path;
  int clients = 8;
  int requests_per_client = 4000;
  std::string net_json_path;
  int conns = 500;
  int requests_per_conn = 40;
  int64_t deadline_ms = 1;  ///< Tightest budget of the deadline sweep.
};

bool ParseBenchArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--json") {
      const char* value = next();
      if (value == nullptr) return false;
      args->json_path = value;
    } else if (arg == "--clients") {
      const char* value = next();
      if (value == nullptr) return false;
      args->clients = std::max(1, std::atoi(value));
    } else if (arg == "--requests") {
      const char* value = next();
      if (value == nullptr) return false;
      args->requests_per_client = std::max(1, std::atoi(value));
    } else if (arg == "--net-json") {
      const char* value = next();
      if (value == nullptr) return false;
      args->net_json_path = value;
    } else if (arg == "--conns") {
      const char* value = next();
      if (value == nullptr) return false;
      args->conns = std::max(1, std::atoi(value));
    } else if (arg == "--net-requests") {
      const char* value = next();
      if (value == nullptr) return false;
      args->requests_per_conn = std::max(1, std::atoi(value));
    } else if (arg == "--deadline-ms") {
      const char* value = next();
      if (value == nullptr) return false;
      args->deadline_ms = std::max<int64_t>(1, std::atoll(value));
    } else if (!arg.empty() && arg[0] != '-') {
      double scale = std::atof(argv[i]);
      if (scale > 0.0) args->scale = scale;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

/// A deterministic per-client request script. Ids are disjoint across
/// clients so lost or duplicated responses would be detectable; the mix
/// leans on lookup_user (the hot path) with district scans and summaries
/// sprinkled in.
std::vector<std::string> BuildScript(const serve::StudyIndex& index,
                                     int client, int count) {
  std::vector<std::string> script;
  script.reserve(static_cast<size_t>(count));
  Rng rng(1000 + client);
  const auto& users = index.users();
  const auto& districts = index.districts();
  const int64_t id_base = static_cast<int64_t>(client) * 1'000'000;
  for (int i = 0; i < count; ++i) {
    const int64_t id = id_base + i;
    const int64_t roll = rng.UniformInt(0, 99);
    if (roll < 70 && !users.empty()) {
      const auto& entry = users[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(users.size()) - 1))];
      script.push_back(StrFormat(
          "{\"v\":1,\"id\":%lld,\"method\":\"lookup_user\","
          "\"params\":{\"user\":%lld}}",
          static_cast<long long>(id), static_cast<long long>(entry.user)));
    } else if (roll < 90 && !districts.empty()) {
      const auto& entry = districts[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(districts.size()) - 1))];
      // Korean-preset names are "State County" with single-token halves.
      const std::string& name = index.name(entry.name);
      size_t space = name.find(' ');
      std::string state = name.substr(0, space);
      std::string county =
          space == std::string::npos ? "" : name.substr(space + 1);
      script.push_back(StrFormat(
          "{\"v\":1,\"id\":%lld,\"method\":\"lookup_district\","
          "\"params\":{\"state\":\"%s\",\"county\":\"%s\",\"limit\":10}}",
          static_cast<long long>(id), obs::JsonEscape(state).c_str(),
          obs::JsonEscape(county).c_str()));
    } else {
      script.push_back(
          StrFormat("{\"v\":1,\"id\":%lld,\"method\":\"topk_summary\"}",
                    static_cast<long long>(id)));
    }
  }
  return script;
}

struct LoadResult {
  double seconds = 0.0;
  int64_t requests = 0;
  int64_t errors = 0;  ///< Responses with "ok":false (should be zero).
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// Drives `scripts.size()` client threads against `server`, each
/// pipelining up to `window` requests, and measures wall time plus exact
/// per-request latency (submit to future-ready) across all clients.
LoadResult RunLoad(serve::Server& server,
                   const std::vector<std::vector<std::string>>& scripts,
                   size_t window) {
  using Clock = std::chrono::steady_clock;
  struct Inflight {
    std::future<std::string> future;
    Clock::time_point submitted;
  };
  const size_t clients = scripts.size();
  std::vector<std::vector<int64_t>> latencies(clients);
  std::vector<int64_t> errors(clients, 0);
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      auto& mine = latencies[c];
      mine.reserve(scripts[c].size());
      std::deque<Inflight> inflight;
      auto drain_one = [&] {
        std::string response = inflight.front().future.get();
        mine.push_back(std::chrono::duration_cast<std::chrono::microseconds>(
                           Clock::now() - inflight.front().submitted)
                           .count());
        if (response.find("\"ok\":true") == std::string::npos) ++errors[c];
        inflight.pop_front();
      };
      for (const std::string& line : scripts[c]) {
        if (inflight.size() >= window) drain_one();
        inflight.push_back({server.SubmitLine(line), Clock::now()});
      }
      while (!inflight.empty()) drain_one();
    });
  }
  while (ready.load() < static_cast<int>(clients)) {
    std::this_thread::yield();
  }
  const auto start = Clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  const auto stop = Clock::now();

  LoadResult result;
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(stop - start)
          .count();
  std::vector<int64_t> all;
  for (size_t c = 0; c < clients; ++c) {
    result.requests += static_cast<int64_t>(scripts[c].size());
    result.errors += errors[c];
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
  }
  std::sort(all.begin(), all.end());
  if (!all.empty()) {
    result.p50_us = static_cast<double>(all[all.size() / 2]);
    result.p99_us = static_cast<double>(all[(all.size() * 99) / 100]);
  }
  return result;
}

/// Floods a deliberately tiny server (one worker parked in a long linger,
/// queue of 16) and verifies the backpressure contract: the overflow is
/// rejected explicitly and Drain() still answers every admitted request.
bool RunOverloadScenario(const serve::StudyIndex& index) {
  serve::ServeOptions options;
  options.workers = 1;
  options.max_batch_size = 1024;     // Unreachable: the worker lingers.
  options.batch_linger_us = 30'000'000;
  options.queue_capacity = 16;
  serve::Server server(&index, options);
  std::vector<std::future<std::string>> futures;
  const int kFlood = 500;
  for (int i = 0; i < kFlood; ++i) {
    futures.push_back(server.SubmitLine(StrFormat(
        "{\"v\":1,\"id\":%d,\"method\":\"topk_summary\"}", i)));
  }
  server.Drain();  // Wakes the lingering worker; must not hang.
  int64_t overloaded = 0;
  int64_t answered = 0;
  for (auto& future : futures) {
    std::string response = future.get();
    if (response.find("\"code\":\"overloaded\"") != std::string::npos) {
      ++overloaded;
    } else if (response.find("\"ok\":true") != std::string::npos) {
      ++answered;
    }
  }
  serve::SchedulerStats stats = server.stats();
  std::printf("  flood=%d answered=%lld overloaded=%lld (queue_capacity=%d)\n",
              kFlood, static_cast<long long>(answered),
              static_cast<long long>(overloaded), options.queue_capacity);
  bool ok = true;
  ok &= Check(answered + overloaded == kFlood,
              "every flooded request got exactly one response (no hang)");
  ok &= Check(overloaded > 0 && overloaded == stats.rejected_overload,
              "overflow rejected explicitly with `overloaded`");
  ok &= Check(answered == stats.admitted,
              "every admitted request was answered through Drain()");
  return ok;
}

// --- Deadline sweep (DESIGN.md §15) ------------------------------------

struct DeadlineLoadResult {
  double seconds = 0.0;
  int64_t requests = 0;
  int64_t served = 0;   ///< "ok":true responses.
  int64_t expired = 0;  ///< Typed `deadline_exceeded` envelopes.
  int64_t errors = 0;   ///< Anything else (should be zero).
  double survivor_p50_us = 0.0;
  double survivor_p99_us = 0.0;  ///< Latency of served requests only.
};

/// RunLoad with response classification: expired requests are counted
/// separately and excluded from the latency sample, which is the point —
/// the sweep's claim is about what the *survivors* pay.
DeadlineLoadResult RunDeadlineLoad(
    serve::Server& server, const std::vector<std::vector<std::string>>& scripts,
    size_t window) {
  using Clock = std::chrono::steady_clock;
  struct Inflight {
    std::future<std::string> future;
    Clock::time_point submitted;
  };
  const size_t clients = scripts.size();
  std::vector<std::vector<int64_t>> latencies(clients);
  std::vector<int64_t> served(clients, 0);
  std::vector<int64_t> expired(clients, 0);
  std::vector<int64_t> errors(clients, 0);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto start = Clock::now();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto& mine = latencies[c];
      mine.reserve(scripts[c].size());
      std::deque<Inflight> inflight;
      auto drain_one = [&] {
        std::string response = inflight.front().future.get();
        if (response.find("\"code\":\"deadline_exceeded\"") !=
            std::string::npos) {
          ++expired[c];
        } else if (response.find("\"ok\":true") != std::string::npos) {
          ++served[c];
          mine.push_back(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - inflight.front().submitted)
                  .count());
        } else {
          ++errors[c];
        }
        inflight.pop_front();
      };
      for (const std::string& line : scripts[c]) {
        if (inflight.size() >= window) drain_one();
        inflight.push_back({server.SubmitLine(line), Clock::now()});
      }
      while (!inflight.empty()) drain_one();
    });
  }
  for (std::thread& t : threads) t.join();

  DeadlineLoadResult result;
  result.seconds = std::chrono::duration_cast<std::chrono::duration<double>>(
                       Clock::now() - start)
                       .count();
  std::vector<int64_t> all;
  for (size_t c = 0; c < clients; ++c) {
    result.requests += static_cast<int64_t>(scripts[c].size());
    result.served += served[c];
    result.expired += expired[c];
    result.errors += errors[c];
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
  }
  std::sort(all.begin(), all.end());
  if (!all.empty()) {
    result.survivor_p50_us = static_cast<double>(all[all.size() / 2]);
    result.survivor_p99_us =
        static_cast<double>(all[(all.size() * 99) / 100]);
  }
  return result;
}

/// Sweeps per-request budgets tight -> 10x -> none over the same scripts
/// against a lingering batcher (so queueing delay is real and a tight
/// budget actually expires). Fresh server per phase: the scheduler's
/// deadline_exceeded counter must reconcile exactly with the envelopes
/// this side observed.
bool RunDeadlineSweep(const serve::StudyIndex& index, const Args& args,
                      std::vector<BenchJsonEntry>* json_entries) {
  std::vector<std::vector<std::string>> base_scripts;
  for (int c = 0; c < args.clients; ++c) {
    base_scripts.push_back(
        BuildScript(index, c, std::min(args.requests_per_client, 1000)));
  }
  const int64_t budgets[] = {args.deadline_ms, args.deadline_ms * 10, 0};
  DeadlineLoadResult results[3];
  std::printf("%-14s %10s %10s %10s %14s %14s\n", "deadline_ms", "requests",
              "served", "expired", "survivor_p50", "survivor_p99");
  bool ok = true;
  for (int p = 0; p < 3; ++p) {
    std::vector<std::vector<std::string>> scripts = base_scripts;
    if (budgets[p] > 0) {
      // "deadline_ms" is a top-level request key: splice it in after '{'.
      const std::string field =
          StrFormat("\"deadline_ms\":%lld,",
                    static_cast<long long>(budgets[p]));
      for (auto& script : scripts) {
        for (std::string& line : script) line.insert(1, field);
      }
    }
    serve::ServeOptions options;
    options.workers = 2;
    options.max_batch_size = 16;
    // A 2 ms linger makes queueing delay real: a 1 ms budget expires in
    // the queue while a generous one rides it out.
    options.batch_linger_us = 2'000;
    options.queue_capacity = 4096;
    serve::Server server(&index, options);
    results[p] = RunDeadlineLoad(server, scripts, /*window=*/64);
    server.Drain();
    const DeadlineLoadResult& r = results[p];
    std::printf("%-14s %10lld %10lld %10lld %14.0f %14.0f\n",
                budgets[p] > 0
                    ? StrFormat("%lld", static_cast<long long>(budgets[p]))
                          .c_str()
                    : "none",
                static_cast<long long>(r.requests),
                static_cast<long long>(r.served),
                static_cast<long long>(r.expired), r.survivor_p50_us,
                r.survivor_p99_us);
    const char* label = p == 0 ? "tight" : (p == 1 ? "10x" : "none");
    ok &= Check(r.served + r.expired == r.requests && r.errors == 0,
                StrFormat("deadline %s: every response is ok or the typed "
                          "deadline_exceeded envelope",
                          label)
                    .c_str());
    const serve::SchedulerStats stats = server.stats();
    ok &= Check(stats.deadline_exceeded == r.expired,
                StrFormat("deadline %s: client-observed expiries reconcile "
                          "with the scheduler",
                          label)
                    .c_str());
    BenchJsonEntry entry;
    entry.name = StrFormat("serve/deadline/ms:%lld",
                           static_cast<long long>(budgets[p]));
    entry.iterations = r.requests;
    entry.ns_per_op = r.seconds * 1e9 / static_cast<double>(r.requests);
    entry.extra = {
        {"expired", static_cast<double>(r.expired)},
        {"expired_fraction",
         static_cast<double>(r.expired) / static_cast<double>(r.requests)},
        {"survivor_p50_us", r.survivor_p50_us},
        {"survivor_p99_us", r.survivor_p99_us}};
    json_entries->push_back(std::move(entry));
  }
  ok &= Check(results[0].expired > 0,
              "the tight budget actually sheds load as deadline_exceeded");
  ok &= Check(results[2].expired == 0,
              "no budget, no expiry (the deadline path stays inert)");
  // Flatness: survivors never pay for the queueing the expired requests
  // escaped — their p99 stays within 10x of the no-deadline baseline.
  const double floor_us = 1'000.0;
  ok &= Check(results[0].survivor_p99_us <=
                  10.0 * std::max(results[2].survivor_p99_us, floor_us),
              "survivor p99 under the tight budget stays flat");
  return ok;
}

// --- TCP front-end load (DESIGN.md §13) --------------------------------

struct NetLoadResult {
  double seconds = 0.0;
  int64_t requests = 0;   ///< Lines sent.
  int64_t responses = 0;  ///< Lines received (must equal requests).
  int64_t shed = 0;       ///< `overloaded` envelopes (expected under 2x).
  int64_t errors = 0;     ///< Anything that is neither ok nor overloaded.
  double p50_us = 0.0;
  double p99_us = 0.0;
};

/// One nonblocking loopback connection of the client fleet.
struct NetConn {
  int fd = -1;
  const std::vector<std::string>* script = nullptr;
  size_t next = 0;  ///< Next script line to send.
  std::deque<std::chrono::steady_clock::time_point> inflight;
  std::string in_buf;
  std::string out_buf;
  size_t out_off = 0;
  bool want_write = true;  ///< Current epoll interest includes EPOLLOUT.
  bool dead = false;
};

/// Drives all `scripts` connections from a single epoll loop, each
/// keeping up to `window` requests in flight, and measures per-request
/// latency from enqueue to response line. Closed-loop: offered
/// concurrency is conns * window.
NetLoadResult RunNetLoad(uint16_t port,
                         const std::vector<std::vector<std::string>>& scripts,
                         size_t window) {
  using Clock = std::chrono::steady_clock;
  NetLoadResult result;
  const size_t n = scripts.size();
  std::vector<NetConn> conns(n);
  std::vector<int64_t> latencies;
  latencies.reserve(n * (scripts.empty() ? 0 : scripts[0].size()));

  const int ep = ::epoll_create1(0);
  if (ep < 0) {
    result.errors = static_cast<int64_t>(n);
    return result;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);

  size_t live = 0;
  const auto start = Clock::now();
  for (size_t i = 0; i < n; ++i) {
    NetConn& conn = conns[i];
    conn.script = &scripts[i];
    conn.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (conn.fd < 0 ||
        (::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)) < 0 &&
         errno != EINPROGRESS)) {
      ++result.errors;
      conn.dead = true;
      if (conn.fd >= 0) ::close(conn.fd);
      continue;
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.u64 = i;
    ::epoll_ctl(ep, EPOLL_CTL_ADD, conn.fd, &ev);
    ++live;
  }

  auto top_up = [&](NetConn& conn) {
    while (conn.inflight.size() < window &&
           conn.next < conn.script->size()) {
      conn.out_buf += (*conn.script)[conn.next++];
      conn.out_buf += '\n';
      conn.inflight.push_back(Clock::now());
      ++result.requests;
    }
  };
  auto flush = [&](NetConn& conn) {
    while (conn.out_off < conn.out_buf.size()) {
      ssize_t written =
          ::send(conn.fd, conn.out_buf.data() + conn.out_off,
                 conn.out_buf.size() - conn.out_off, MSG_NOSIGNAL);
      if (written > 0) {
        conn.out_off += static_cast<size_t>(written);
      } else if (written < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      } else {
        conn.dead = true;
        return;
      }
    }
    if (conn.out_off == conn.out_buf.size()) {
      conn.out_buf.clear();
      conn.out_off = 0;
    }
  };
  auto update_interest = [&](size_t i, NetConn& conn) {
    const bool wants = conn.out_off < conn.out_buf.size();
    if (wants == conn.want_write) return;
    conn.want_write = wants;
    epoll_event ev{};
    ev.events = EPOLLIN | (wants ? EPOLLOUT : 0u);
    ev.data.u64 = i;
    ::epoll_ctl(ep, EPOLL_CTL_MOD, conn.fd, &ev);
  };
  auto retire = [&](NetConn& conn) {
    ::epoll_ctl(ep, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conn.fd = -1;
    --live;
  };

  std::vector<epoll_event> events(256);
  while (live > 0) {
    const int ready =
        ::epoll_wait(ep, events.data(), static_cast<int>(events.size()),
                     /*timeout_ms=*/10'000);
    if (ready <= 0) break;  // A stall here fails the response-count check.
    for (int e = 0; e < ready; ++e) {
      NetConn& conn = conns[events[e].data.u64];
      if (conn.fd < 0) continue;
      if (events[e].events & EPOLLIN) {
        char buf[16 * 1024];
        for (;;) {
          ssize_t got = ::recv(conn.fd, buf, sizeof(buf), 0);
          if (got > 0) {
            conn.in_buf.append(buf, static_cast<size_t>(got));
          } else if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          } else {
            conn.dead = true;  // EOF before all responses: counted below.
            break;
          }
        }
        size_t line_start = 0;
        for (size_t pos;
             (pos = conn.in_buf.find('\n', line_start)) != std::string::npos;
             line_start = pos + 1) {
          std::string_view line(conn.in_buf.data() + line_start,
                                pos - line_start);
          if (!conn.inflight.empty()) {
            latencies.push_back(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now() - conn.inflight.front())
                    .count());
            conn.inflight.pop_front();
          }
          ++result.responses;
          if (line.find("\"code\":\"overloaded\"") != std::string_view::npos) {
            ++result.shed;
          } else if (line.find("\"ok\":true") == std::string_view::npos) {
            ++result.errors;
          }
        }
        conn.in_buf.erase(0, line_start);
      }
      if (conn.dead) {
        ++result.errors;
        retire(conn);
        continue;
      }
      top_up(conn);
      flush(conn);
      if (conn.dead) {
        ++result.errors;
        retire(conn);
        continue;
      }
      if (conn.next == conn.script->size() && conn.inflight.empty() &&
          conn.out_buf.empty()) {
        retire(conn);  // Script done, every response in: clean close.
        continue;
      }
      update_interest(events[e].data.u64, conn);
    }
  }
  result.seconds = std::chrono::duration_cast<std::chrono::duration<double>>(
                       Clock::now() - start)
                       .count();
  for (NetConn& conn : conns) {
    if (conn.fd >= 0) retire(conn);
  }
  ::close(ep);
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    result.p50_us = static_cast<double>(latencies[latencies.size() / 2]);
    result.p99_us =
        static_cast<double>(latencies[(latencies.size() * 99) / 100]);
  }
  return result;
}

/// The flat-p99-under-overload scenario: one EpollServer, a baseline
/// pass at window 1 (offered concurrency = conns, inside the admission
/// queue) and an overload pass at window 4 (offered concurrency = 2x
/// the queue), expecting explicit shedding and a p99 that stays within
/// an order of magnitude of the baseline instead of growing with the
/// offered load.
bool RunNetScenario(const serve::StudyIndex& index, const Args& args,
                    std::vector<BenchJsonEntry>* net_entries) {
  std::signal(SIGPIPE, SIG_IGN);
  serve::ServeOptions options;
  options.workers = 4;
  options.max_batch_size = 16;
  options.batch_linger_us = 200;
  options.queue_capacity = 1024;
  options.tier1_fill_limit = 0.9;
  options.tier2_fill_limit = 0.5;
  serve::Server server(&index, options);
  net::NetOptions net_options;
  net_options.max_pipeline = 64;
  net_options.max_connections = args.conns + 16;
  net::EpollServer net(&server, net_options);
  if (!net.Listen(0).ok() || !net.Start().ok()) {
    std::printf("  FAILED to start the TCP front end\n");
    return false;
  }

  std::vector<std::vector<std::string>> scripts;
  for (int c = 0; c < args.conns; ++c) {
    scripts.push_back(BuildScript(index, c, args.requests_per_conn));
  }
  const int64_t expected = static_cast<int64_t>(args.conns) *
                           static_cast<int64_t>(args.requests_per_conn);

  std::printf("%-14s %10s %12s %8s %12s %12s\n", "load", "responses",
              "req/s", "shed", "p50_us", "p99_us");
  struct Phase {
    const char* label;
    size_t window;
  };
  const Phase kPhases[] = {{"1x", 1}, {"2x(overload)", 4}};
  NetLoadResult results[2];
  bool ok = true;
  for (int p = 0; p < 2; ++p) {
    results[p] = RunNetLoad(net.port(), scripts, kPhases[p].window);
    const NetLoadResult& r = results[p];
    std::printf("%-14s %10lld %12.0f %8lld %12.0f %12.0f\n",
                kPhases[p].label, static_cast<long long>(r.responses),
                static_cast<double>(r.responses) / r.seconds,
                static_cast<long long>(r.shed), r.p50_us, r.p99_us);
    ok &= Check(r.responses == expected && r.requests == expected,
                StrFormat("%s: every request got exactly one response",
                          kPhases[p].label)
                    .c_str());
    ok &= Check(r.errors == 0,
                StrFormat("%s: no malformed or failed responses",
                          kPhases[p].label)
                    .c_str());
    BenchJsonEntry entry;
    entry.name = StrFormat("net/qps/conns:%d/load:%s", args.conns,
                           p == 0 ? "1x" : "2x");
    entry.iterations = r.responses;
    entry.ns_per_op = r.seconds * 1e9 / static_cast<double>(r.responses);
    entry.extra = {{"requests_per_second",
                    static_cast<double>(r.responses) / r.seconds},
                   {"p50_us", r.p50_us},
                   {"p99_us", r.p99_us},
                   {"shed", static_cast<double>(r.shed)}};
    net_entries->push_back(std::move(entry));
  }
  net.Stop();

  ok &= Check(results[1].shed > 0,
              "2x overload engaged the admission control (shed > 0)");
  // "Flat" allows for noise but not for queueing collapse: unbounded
  // admission would let p99 scale with the offered load.
  const double floor_us = 1'000.0;
  ok &= Check(results[1].p99_us <=
                  10.0 * std::max(results[0].p99_us, floor_us),
              "p99 under 2x overload stays within 10x of baseline");
  const serve::SchedulerStats sched = server.stats();
  const net::NetStats netstats = net.stats();
  int64_t shed_by_tier_total = 0;
  for (int t = 0; t < serve::kNumShedTiers; ++t) {
    shed_by_tier_total += sched.rejected_by_tier[t];
    ok &= Check(netstats.shed_by_tier[t] == sched.rejected_by_tier[t],
                StrFormat("net.shed.tier%d reconciles with the scheduler", t)
                    .c_str());
  }
  ok &= Check(results[0].shed + results[1].shed == shed_by_tier_total &&
                  shed_by_tier_total == sched.rejected_overload,
              "client-observed sheds reconcile exactly with serve counters");
  ok &= Check(netstats.accepted == 2 * args.conns &&
                  netstats.live == 0,
              "every connection was accepted and cleanly closed");
  return ok;
}

int Main(int argc, char** argv) {
  Args args;
  if (!ParseBenchArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: bench_serve [scale] [--json <path>] "
                 "[--clients N] [--requests N] [--conns N] "
                 "[--net-requests N] [--net-json <path>] "
                 "[--deadline-ms N]\n");
    return 2;
  }
  PrintHeader("bench_serve — query-serving throughput vs micro-batch size",
              "Pipelined clients against stir::serve; p50/p99 latency and "
              "overload backpressure (DESIGN.md section 10).");

  std::printf("generating corpus (Korean preset, scale %.2f)...\n",
              args.scale);
  StudyRun run = RunKoreanStudy(args.scale);
  const geo::AdminDb& db = geo::AdminDb::KoreanDistricts();
  serve::StudyIndex index = serve::StudyIndex::Build(run.result, db);
  const int64_t dataset_users =
      static_cast<int64_t>(run.data.dataset.users().size());
  std::printf("dataset users=%lld  index: %zu users, %zu districts, "
              "%lld bytes\n\n",
              static_cast<long long>(dataset_users), index.user_count(),
              index.district_count(),
              static_cast<long long>(index.MemoryBytes()));

  std::vector<std::vector<std::string>> scripts;
  for (int c = 0; c < args.clients; ++c) {
    scripts.push_back(BuildScript(index, c, args.requests_per_client));
  }

  const int kBatchSizes[] = {1, 4, 16};
  std::vector<BenchJsonEntry> json_entries;
  double throughput_by_batch[3] = {0, 0, 0};
  std::printf("%-10s %12s %12s %12s %12s\n", "batch", "requests", "req/s",
              "p50_us", "p99_us");
  int64_t total_errors = 0;
  for (size_t bi = 0; bi < 3; ++bi) {
    serve::ServeOptions options;
    options.workers = 4;
    options.max_batch_size = kBatchSizes[bi];
    // A short linger lets partial batches fill while clients are mid-
    // submit; at batch size 1 it never engages (the queue is always
    // "full enough"), so the comparison isolates the batching win.
    options.batch_linger_us = 200;
    options.queue_capacity = 4096;
    serve::Server server(&index, options);
    LoadResult result = RunLoad(server, scripts, /*window=*/128);
    server.Drain();
    const double throughput =
        static_cast<double>(result.requests) / result.seconds;
    throughput_by_batch[bi] = throughput;
    total_errors += result.errors;
    std::printf("%-10d %12lld %12.0f %12.0f %12.0f\n", kBatchSizes[bi],
                static_cast<long long>(result.requests), throughput,
                result.p50_us, result.p99_us);
    BenchJsonEntry entry;
    entry.name = StrFormat("serve/throughput/batch:%d", kBatchSizes[bi]);
    entry.iterations = result.requests;
    entry.ns_per_op = result.seconds * 1e9 /
                      static_cast<double>(result.requests);
    entry.extra = {{"requests_per_second", throughput},
                   {"p50_us", result.p50_us},
                   {"p99_us", result.p99_us}};
    json_entries.push_back(std::move(entry));
  }
  std::printf("\n");

  bool ok = true;
  // The 100k-user floor is the acceptance bar for the default scale;
  // a smaller explicit override is a quick smoke run, not a failure.
  ok &= Check(args.scale < 2.0 || dataset_users >= 100'000,
              "dataset is at least 100k users at default scale");
  ok &= Check(total_errors == 0, "every scripted request succeeded");
  ok &= Check(throughput_by_batch[2] > throughput_by_batch[0],
              "batch-16 throughput exceeds batch-1");

  std::printf("\noverload scenario:\n");
  ok &= RunOverloadScenario(index);

  std::printf("\ndeadline sweep (tightest budget %lld ms):\n",
              static_cast<long long>(args.deadline_ms));
  ok &= RunDeadlineSweep(index, args, &json_entries);

  std::printf("\nTCP front end (%d connections, %d requests each):\n",
              args.conns, args.requests_per_conn);
  std::vector<BenchJsonEntry> net_entries;
  ok &= RunNetScenario(index, args, &net_entries);

  if (!args.json_path.empty()) {
    if (WriteBenchJson(args.json_path, json_entries)) {
      std::printf("\nwrote %s\n", args.json_path.c_str());
    } else {
      ok = false;
    }
  }
  if (!args.net_json_path.empty()) {
    if (WriteBenchJson(args.net_json_path, net_entries)) {
      std::printf("wrote %s\n", args.net_json_path.c_str());
    } else {
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace stir::bench

int main(int argc, char** argv) { return stir::bench::Main(argc, argv); }
